"""Shared fixtures for the benchmark harness.

Benchmarks default to ``REPRO_SCALE=0.05`` (each paper example shrunk
to ~5 % of its task count, structure preserved); export ``REPRO_SCALE``
to change it -- 1.0 reproduces the full 1126-7416-task examples at
Sparcstation-like runtimes.  Rendered paper-style tables are written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    return float(os.environ.get("REPRO_SCALE", "0.05"))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name: str, text: str) -> None:
    """Persist a rendered table for EXPERIMENTS.md."""
    (results_dir / name).write_text(text + "\n")
