"""Inner-loop benchmark: pruning + incremental engine vs. from-scratch.

Times the end-to-end :func:`repro.core.crusade.crusade` run on paper
examples in three configurations, verifies all results are
byte-identical, and records the timings in ``BENCH_inner_loop.json``
at the repository root:

* ``seconds_from_scratch`` -- engine off, pruning off: every candidate
  is rescheduled from scratch by the legacy scheduler;
* ``seconds_incremental`` -- engine on, pruning off: per-component
  fragment caching, planned scheduling, copy-on-write application;
* ``seconds_pruned`` -- engine on, pruning on, bound aborts *off*:
  admissible candidate pruning layered over the engine (directly
  comparable to records from before the bound-abort layer existed).
  The headline ``speedup`` is from-scratch over pruned;
* ``seconds_bound_abort`` -- engine + pruning + incumbent-driven
  bound aborts: the full optimized stack.  The record carries the
  abort counters and ``abort_rate`` (``sched.abort / sched.runs``).

``--pool-workers N`` adds a ``seconds_pooled`` column (engine +
pruning + an N-worker process pool); it is opt-in because on a
single-CPU host the pool only adds IPC overhead.  ``--skip-scratch``
records large workloads (e.g. ``NGXM`` at scale 0.25) without the
slow baselines: the record carries the optimized legs and
``feasible`` with ``speedup: null``.  The regression check falls back
to comparing ``seconds_pruned`` against the baseline's
``seconds_pruned`` for such records (pruned-vs-previous-pruned), so
skip-scratch rows are still guarded rather than silently skipped.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_inner_loop.py \
        --example A1TR --scale 0.1

Records merge by (example, scale) so repeated runs update in place.
``--check-against`` compares the measured speedups to a committed
baseline file and exits non-zero on a regression beyond
``--max-regression`` (CI's guard).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.examples import EXAMPLE_NAMES, build_example  # noqa: E402
from repro.core.config import CrusadeConfig  # noqa: E402
from repro.core.crusade import crusade  # noqa: E402
from repro.io.result_json import result_to_dict  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_inner_loop.json"


def _canonical(result) -> str:
    """Result JSON with the run-dependent fields removed."""
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def _timed_run(spec, incremental: bool, prune: bool, parallel_eval: int = 0,
               timeline: str = "auto", bound_abort: bool = False):
    config = CrusadeConfig(
        incremental=incremental, prune=prune, parallel_eval=parallel_eval,
        timeline=timeline, bound_abort=bound_abort,
    )
    tracer = Tracer()
    started = time.perf_counter()
    result = crusade(spec, config=config, tracer=tracer)
    return time.perf_counter() - started, result, tracer.counters.as_dict()


def bench_example(name: str, scale: float, pool_workers: int = 0,
                  skip_scratch: bool = False, timeline: str = "auto") -> dict:
    """One record: the mode timings plus the identity checks."""
    spec = build_example(name, scale=scale)
    seconds_pruned, pruned, counters = _timed_run(
        spec, incremental=True, prune=True, timeline=timeline
    )
    prune_cut = counters.get("prune.cut", 0)
    print("  pruned:       %.2fs (cost $%.0f, %s, prune.cut %d)" % (
        seconds_pruned, pruned.cost,
        "feasible" if pruned.feasible else "INFEASIBLE", prune_cut))
    seconds_bound, bounded, bound_counters = _timed_run(
        spec, incremental=True, prune=True, timeline=timeline,
        bound_abort=True,
    )
    sched_abort = bound_counters.get("sched.abort", 0)
    sched_runs = bound_counters.get("sched.runs", 0)
    abort_rate = (
        round(sched_abort / sched_runs, 4) if sched_runs else None
    )
    print("  bound-abort:  %.2fs (sched.abort %d / sched.runs %d)" % (
        seconds_bound, sched_abort, sched_runs))
    canonical_pruned = _canonical(pruned)
    record = {
        "example": name,
        "scale": scale,
        "timeline": timeline,
        "tasks": spec.total_tasks,
        "seconds_from_scratch": None,
        "seconds_incremental": None,
        "seconds_pruned": round(seconds_pruned, 3),
        "seconds_bound_abort": round(seconds_bound, 3),
        "speedup": None,
        "speedup_incremental": None,
        "prune_cut": prune_cut,
        "sched_abort": sched_abort,
        "sched_runs": sched_runs,
        "abort_rate": abort_rate,
        "cost": round(pruned.cost, 2),
        "feasible": pruned.feasible,
        "identical": canonical_pruned == _canonical(bounded),
    }
    if skip_scratch:
        print("  baselines skipped (--skip-scratch)")
        return record

    seconds_scratch, scratch, _ = _timed_run(
        spec, incremental=False, prune=False
    )
    print("  from-scratch: %.2fs" % (seconds_scratch,))
    seconds_incr, incr, _ = _timed_run(
        spec, incremental=True, prune=False, timeline=timeline
    )
    print("  incremental:  %.2fs" % (seconds_incr,))
    canonical_scratch = _canonical(scratch)
    identical = (
        record["identical"]
        and canonical_scratch == _canonical(incr)
        and canonical_scratch == canonical_pruned
    )
    record.update({
        "seconds_from_scratch": round(seconds_scratch, 3),
        "seconds_incremental": round(seconds_incr, 3),
        "speedup": round(seconds_scratch / max(seconds_pruned, 1e-9), 3),
        "speedup_incremental": round(
            seconds_scratch / max(seconds_incr, 1e-9), 3
        ),
        "speedup_bound_abort": round(
            seconds_scratch / max(seconds_bound, 1e-9), 3
        ),
        "identical": identical,
    })
    if pool_workers >= 2:
        seconds_pooled, pooled, _ = _timed_run(
            spec, incremental=True, prune=True, parallel_eval=pool_workers,
            timeline=timeline,
        )
        print("  pooled (%d):   %.2fs" % (pool_workers, seconds_pooled))
        record["seconds_pooled"] = round(seconds_pooled, 3)
        record["pool_workers"] = pool_workers
        record["identical"] = (
            record["identical"] and canonical_scratch == _canonical(pooled)
        )
    return record


def merge_records(path: pathlib.Path, fresh: list) -> list:
    """Update ``path``'s records in place, keyed by (example, scale)."""
    existing = []
    if path.exists():
        existing = json.loads(path.read_text()).get("records", [])
    by_key = {(r["example"], r["scale"]): r for r in existing}
    for record in fresh:
        by_key[(record["example"], record["scale"])] = record
    return [by_key[k] for k in sorted(by_key)]


def check_regression(records: list, baseline_path: pathlib.Path,
                     max_regression: float) -> list:
    """Speedup regressions beyond tolerance vs. a committed baseline.

    Records with a measured ``speedup`` compare it against the
    baseline's.  Records without one (``--skip-scratch`` rows, where
    the from-scratch leg is too slow to run) are *not* skipped: their
    ``seconds_pruned`` wall time is compared against the previous
    pruned wall time instead, failing when the new run is more than
    ``max_regression`` slower.  A record is only ever skipped when the
    baseline has no comparable leg at all.
    """
    baseline = json.loads(baseline_path.read_text()).get("records", [])
    reference = {(r["example"], r["scale"]): r for r in baseline}
    failures = []
    for record in records:
        ref = reference.get((record["example"], record["scale"]))
        if ref is None:
            continue
        if record.get("speedup") is not None and ref.get("speedup") is not None:
            floor = ref["speedup"] * (1.0 - max_regression)
            if record["speedup"] < floor:
                failures.append(
                    "%s@%s: speedup %.2fx below %.2fx (baseline %.2fx - %d%%)"
                    % (record["example"], record["scale"], record["speedup"],
                       floor, ref["speedup"], round(max_regression * 100))
                )
            continue
        # Pruned-vs-previous-pruned fallback for skip-scratch rows.
        seconds = record.get("seconds_pruned")
        ref_seconds = ref.get("seconds_pruned")
        if seconds is None or ref_seconds is None:
            continue
        ceiling = ref_seconds * (1.0 + max_regression)
        if seconds > ceiling:
            failures.append(
                "%s@%s: pruned %.2fs above %.2fs (baseline %.2fs + %d%%)"
                % (record["example"], record["scale"], seconds,
                   ceiling, ref_seconds, round(max_regression * 100))
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--example", action="append", dest="examples",
                        choices=EXAMPLE_NAMES, metavar="NAME",
                        help="example to benchmark (repeatable; default A1TR)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="example scale factor (default 0.1)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON (default BENCH_inner_loop.json)")
    parser.add_argument("--pool-workers", type=int, default=0, metavar="N",
                        help="also time an N-worker process pool (N >= 2)")
    parser.add_argument("--skip-scratch", action="store_true",
                        help="record only the pruned run (no baselines, "
                             "no speedup) -- for large workloads")
    parser.add_argument("--timeline", choices=("auto", "list", "tree"),
                        default="auto",
                        help="timeline implementation for the engine legs "
                             "(default auto; results are identical either "
                             "way -- this is a timing axis)")
    parser.add_argument("--check-against", type=pathlib.Path, default=None,
                        metavar="BASELINE.json",
                        help="fail when speedup regresses vs this file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated fractional speedup loss (default .25)")
    args = parser.parse_args(argv)

    fresh = []
    for name in args.examples or ["A1TR"]:
        print("%s @ scale %g" % (name, args.scale))
        record = bench_example(name, args.scale,
                               pool_workers=args.pool_workers,
                               skip_scratch=args.skip_scratch,
                               timeline=args.timeline)
        if record["speedup"] is not None:
            print("  speedup: %.2fx (engine only %.2fx), identical: %s" % (
                record["speedup"], record["speedup_incremental"],
                record["identical"]))
        fresh.append(record)

    records = merge_records(args.out, fresh)
    args.out.write_text(json.dumps(
        {"benchmark": "inner_loop", "records": records},
        indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    status = 0
    broken = [r for r in fresh if not r["identical"]]
    if broken:
        print("ERROR: optimized results differ from from-scratch for: %s"
              % ", ".join(r["example"] for r in broken))
        status = 1
    if args.check_against is not None:
        failures = check_regression(fresh, args.check_against,
                                    args.max_regression)
        for line in failures:
            print("REGRESSION: %s" % line)
        if failures:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
