"""Inner-loop benchmark: incremental evaluation engine on vs. off.

Times the end-to-end :func:`repro.core.crusade.crusade` run on paper
examples with the incremental engine disabled (from-scratch scheduling
every candidate) and enabled (per-component fragment caching,
copy-on-write candidate application, incremental priorities), verifies
the two results are byte-identical, and records both timings in
``BENCH_inner_loop.json`` at the repository root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_inner_loop.py \
        --example A1TR --scale 0.1

Records merge by (example, scale) so repeated runs update in place.
``--check-against`` compares the measured speedups to a committed
baseline file and exits non-zero on a regression beyond
``--max-regression`` (CI's guard).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.examples import EXAMPLE_NAMES, build_example  # noqa: E402
from repro.core.config import CrusadeConfig  # noqa: E402
from repro.core.crusade import crusade  # noqa: E402
from repro.io.result_json import result_to_dict  # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_inner_loop.json"


def _canonical(result) -> str:
    """Result JSON with the run-dependent fields removed."""
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def _timed_run(spec, incremental: bool):
    config = CrusadeConfig(incremental=incremental)
    started = time.perf_counter()
    result = crusade(spec, config=config)
    return time.perf_counter() - started, result


def bench_example(name: str, scale: float) -> dict:
    """One record: both timings plus the identity check."""
    spec = build_example(name, scale=scale)
    seconds_scratch, scratch = _timed_run(spec, incremental=False)
    print("  from-scratch: %.2fs (cost $%.0f, %s)" % (
        seconds_scratch, scratch.cost,
        "feasible" if scratch.feasible else "INFEASIBLE"))
    seconds_incr, incr = _timed_run(spec, incremental=True)
    print("  incremental:  %.2fs" % (seconds_incr,))
    identical = _canonical(scratch) == _canonical(incr)
    return {
        "example": name,
        "scale": scale,
        "tasks": spec.total_tasks,
        "seconds_from_scratch": round(seconds_scratch, 3),
        "seconds_incremental": round(seconds_incr, 3),
        "speedup": round(seconds_scratch / max(seconds_incr, 1e-9), 3),
        "cost": round(scratch.cost, 2),
        "feasible": scratch.feasible,
        "identical": identical,
    }


def merge_records(path: pathlib.Path, fresh: list) -> list:
    """Update ``path``'s records in place, keyed by (example, scale)."""
    existing = []
    if path.exists():
        existing = json.loads(path.read_text()).get("records", [])
    by_key = {(r["example"], r["scale"]): r for r in existing}
    for record in fresh:
        by_key[(record["example"], record["scale"])] = record
    return [by_key[k] for k in sorted(by_key)]


def check_regression(records: list, baseline_path: pathlib.Path,
                     max_regression: float) -> list:
    """Speedup regressions beyond tolerance vs. a committed baseline."""
    baseline = json.loads(baseline_path.read_text()).get("records", [])
    reference = {(r["example"], r["scale"]): r for r in baseline}
    failures = []
    for record in records:
        ref = reference.get((record["example"], record["scale"]))
        if ref is None:
            continue
        floor = ref["speedup"] * (1.0 - max_regression)
        if record["speedup"] < floor:
            failures.append(
                "%s@%s: speedup %.2fx below %.2fx (baseline %.2fx - %d%%)"
                % (record["example"], record["scale"], record["speedup"],
                   floor, ref["speedup"], round(max_regression * 100))
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--example", action="append", dest="examples",
                        choices=EXAMPLE_NAMES, metavar="NAME",
                        help="example to benchmark (repeatable; default A1TR)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="example scale factor (default 0.1)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON (default BENCH_inner_loop.json)")
    parser.add_argument("--check-against", type=pathlib.Path, default=None,
                        metavar="BASELINE.json",
                        help="fail when speedup regresses vs this file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated fractional speedup loss (default .25)")
    args = parser.parse_args(argv)

    fresh = []
    for name in args.examples or ["A1TR"]:
        print("%s @ scale %g" % (name, args.scale))
        record = bench_example(name, args.scale)
        print("  speedup: %.2fx, identical: %s" % (
            record["speedup"], record["identical"]))
        fresh.append(record)

    records = merge_records(args.out, fresh)
    args.out.write_text(json.dumps(
        {"benchmark": "inner_loop", "records": records},
        indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    status = 0
    broken = [r for r in fresh if not r["identical"]]
    if broken:
        print("ERROR: incremental result differs from from-scratch for: %s"
              % ", ".join(r["example"] for r in broken))
        status = 1
    if args.check_against is not None:
        failures = check_regression(fresh, args.check_against,
                                    args.max_regression)
        for line in failures:
            print("REGRESSION: %s" % line)
        if failures:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
