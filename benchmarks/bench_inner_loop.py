"""Inner-loop benchmark: pruning + incremental engine vs. from-scratch.

Times the end-to-end :func:`repro.core.crusade.crusade` run on paper
examples in three configurations, verifies all results are
byte-identical, and records the timings in ``BENCH_inner_loop.json``
at the repository root:

* ``seconds_from_scratch`` -- engine off, pruning off: every candidate
  is rescheduled from scratch by the legacy scheduler;
* ``seconds_incremental`` -- engine on, pruning off: per-component
  fragment caching, planned scheduling, copy-on-write application;
* ``seconds_pruned`` -- engine on, pruning on, bound aborts *off*:
  admissible candidate pruning layered over the engine (directly
  comparable to records from before the bound-abort layer existed).
  The headline ``speedup`` is from-scratch over pruned;
* ``seconds_bound_abort`` -- engine + pruning + incumbent-driven
  bound aborts: the full optimized stack.  The record carries the
  abort counters and ``abort_rate`` (``sched.abort / sched.runs``).

* ``seconds_warm_start`` / ``seconds_exact_hit`` -- the cross-run
  warm-start legs (:mod:`repro.perf.store`): a bound-abort run
  populates a fresh store, one deadline is loosened via
  :func:`repro.perf.warmstart.tweak_deadline`, and the tweaked spec is
  synthesized cold (the denominator), then warm against the populated
  store (``speedup_warm_start``), then resubmitted unchanged for the
  full-result-tier hit latency.  Both warm results are checked
  byte-identical to the cold tweaked run.  ``--skip-warm`` drops these
  legs.

``--pool-workers N`` adds a ``seconds_pooled`` column (engine +
pruning + an N-worker process pool); it is opt-in because on a
single-CPU host the pool only adds IPC overhead.  ``--transport``
adds a ``transport_sweep`` table: parallel-eval scaling at 1/2/4/8
workers over both execution transports (``pipe`` fork+pipe workers
vs ``socket`` framed-TCP-on-localhost workers), so the socket
framing/heartbeat overhead is measured rather than assumed.  Every
sweep cell is checked byte-identical to the serial result.  ``--skip-scratch``
records large workloads (e.g. ``NGXM`` at scale 0.25) without the
slow baselines: the record carries the optimized legs and
``feasible`` with ``speedup: null``.  The regression check falls back
to comparing ``seconds_pruned`` against the baseline's
``seconds_pruned`` for such records (pruned-vs-previous-pruned), so
skip-scratch rows are still guarded rather than silently skipped.

Every record carries the same key set (:data:`RECORD_SCHEMA`): legs a
run skipped are ``null``, never absent, and ``merge_records``
back-fills records written by older revisions of this script so the
committed JSON stays schema-uniform.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_inner_loop.py \
        --example A1TR --scale 0.1

Records merge by (example, scale) so repeated runs update in place.
``--check-against`` compares the measured speedups to a committed
baseline file and exits non-zero on a regression beyond
``--max-regression`` (CI's guard).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.examples import EXAMPLE_NAMES, build_example  # noqa: E402
from repro.core.config import CrusadeConfig  # noqa: E402
from repro.core.crusade import crusade  # noqa: E402
from repro.io.result_json import result_to_dict  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402
from repro.perf.warmstart import tweak_deadline  # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_inner_loop.json"

#: The uniform record shape.  Every record written by this script
#: carries exactly these keys (plus nothing else); ``None`` means the
#: leg was skipped or predates the key.  ``merge_records`` normalizes
#: previously committed records against this schema.
RECORD_SCHEMA = {
    "example": None,
    "scale": None,
    "timeline": None,
    "tasks": None,
    "seconds_from_scratch": None,
    "seconds_incremental": None,
    "seconds_pruned": None,
    "seconds_bound_abort": None,
    "seconds_pooled": None,
    "seconds_warm_start": None,
    "seconds_exact_hit": None,
    "speedup": None,
    "speedup_incremental": None,
    "speedup_bound_abort": None,
    "speedup_warm_start": None,
    "pool_workers": None,
    "prune_cut": None,
    "sched_abort": None,
    "sched_runs": None,
    "abort_rate": None,
    "fragments_preloaded": None,
    "transport_sweep": None,
    "cost": None,
    "feasible": None,
    "identical": None,
}


def normalize_record(record: dict) -> dict:
    """``record`` back-filled to the full uniform key set."""
    full = dict(RECORD_SCHEMA)
    full.update(record)
    return full


def _canonical(result) -> str:
    """Result JSON with the run-dependent fields removed."""
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, sort_keys=True)


def _timed_run(spec, incremental: bool, prune: bool, parallel_eval: int = 0,
               timeline: str = "auto", bound_abort: bool = False,
               cache_dir=None, exec_transport: str = "pipe"):
    config = CrusadeConfig(
        incremental=incremental, prune=prune, parallel_eval=parallel_eval,
        timeline=timeline, bound_abort=bound_abort, cache_dir=cache_dir,
        exec_transport=exec_transport,
    )
    tracer = Tracer()
    started = time.perf_counter()
    result = crusade(spec, config=config, tracer=tracer)
    return time.perf_counter() - started, result, tracer.counters.as_dict()


def warm_start_legs(spec, timeline: str, store_parent=None) -> dict:
    """The cross-run legs: populate, tweak one deadline, resubmit.

    The denominator is a *cold* bound-abort run of the tweaked spec
    (the store-less behavior a resubmitting user would otherwise get);
    the warm run sees a store populated by the original spec and must
    be byte-identical to the cold run.  A second, unchanged
    resubmission measures the full-result-tier exact-hit latency.

    The throwaway store lives under ``store_parent`` (default: next to
    this script's output, i.e. the repository checkout) rather than the
    system temp dir: on hosts where ``/tmp`` is a slow mount, placing a
    write-heavy cache there would benchmark the wrong filesystem.
    """
    with tempfile.TemporaryDirectory(
        prefix="crusade-store-",
        dir=str(store_parent) if store_parent else None,
    ) as cache_dir:
        _, _, _ = _timed_run(
            spec, incremental=True, prune=True, timeline=timeline,
            bound_abort=True, cache_dir=cache_dir,
        )
        tweaked = tweak_deadline(spec)
        seconds_cold, cold, _ = _timed_run(
            tweaked, incremental=True, prune=True, timeline=timeline,
            bound_abort=True,
        )
        print("  cold tweaked: %.2fs" % (seconds_cold,))
        seconds_warm, warm, counters = _timed_run(
            tweaked, incremental=True, prune=True, timeline=timeline,
            bound_abort=True, cache_dir=cache_dir,
        )
        preloaded = counters.get("perf.store.fragments_preloaded", 0)
        print("  warm-start:   %.2fs (%d fragments preloaded)" % (
            seconds_warm, preloaded))
        seconds_hit, hit, hit_counters = _timed_run(
            tweaked, incremental=True, prune=True, timeline=timeline,
            bound_abort=True, cache_dir=cache_dir,
        )
        print("  exact hit:    %.4fs (perf.store.hit %d)" % (
            seconds_hit, hit_counters.get("perf.store.hit", 0)))
        canonical_cold = _canonical(cold)
        return {
            "seconds_warm_start": round(seconds_warm, 3),
            "seconds_exact_hit": round(seconds_hit, 4),
            "speedup_warm_start": round(
                seconds_cold / max(seconds_warm, 1e-9), 3
            ),
            "fragments_preloaded": preloaded,
            "identical_warm": (
                canonical_cold == _canonical(warm)
                and canonical_cold == _canonical(hit)
            ),
        }


#: Worker counts for the ``--transport`` scaling sweep.  1 worker is
#: the serial path (parallel_eval <= 1 never builds a pool, so the
#: transport axis collapses to a single reference row); 2/4/8 run
#: both transports.
TRANSPORT_SWEEP_WORKERS = (1, 2, 4, 8)


def transport_sweep(spec, timeline: str, reference: str) -> dict:
    """The pipe-vs-socket parallel-eval scaling table.

    One row per (workers, transport) cell: ``workers`` counts worker
    processes (1 is the serial path, recorded once as transport
    ``serial``), ``seconds`` is the end-to-end synthesis wall time.
    Every cell's canonical result is compared against ``reference``
    (the serial pruned run) -- the transports are a wire detail and
    may never move a placement.
    """
    rows = []
    identical = True
    for workers in TRANSPORT_SWEEP_WORKERS:
        transports = ("serial",) if workers < 2 else ("pipe", "socket")
        for transport in transports:
            seconds, result, _ = _timed_run(
                spec, incremental=True, prune=True,
                parallel_eval=0 if workers < 2 else workers,
                timeline=timeline,
                exec_transport="pipe" if transport == "serial"
                else transport,
            )
            same = _canonical(result) == reference
            identical = identical and same
            rows.append({
                "workers": workers,
                "transport": transport,
                "seconds": round(seconds, 3),
            })
            print("  transport %-6s x%d: %.2fs%s" % (
                transport, workers, seconds,
                "" if same else "  RESULT DIVERGED"))
    return {"transport_sweep": rows, "identical_transport": identical}


def bench_example(name: str, scale: float, pool_workers: int = 0,
                  skip_scratch: bool = False, timeline: str = "auto",
                  skip_warm: bool = False, store_parent=None,
                  transports: bool = False) -> dict:
    """One record: the mode timings plus the identity checks."""
    spec = build_example(name, scale=scale)
    seconds_pruned, pruned, counters = _timed_run(
        spec, incremental=True, prune=True, timeline=timeline
    )
    prune_cut = counters.get("prune.cut", 0)
    print("  pruned:       %.2fs (cost $%.0f, %s, prune.cut %d)" % (
        seconds_pruned, pruned.cost,
        "feasible" if pruned.feasible else "INFEASIBLE", prune_cut))
    seconds_bound, bounded, bound_counters = _timed_run(
        spec, incremental=True, prune=True, timeline=timeline,
        bound_abort=True,
    )
    sched_abort = bound_counters.get("sched.abort", 0)
    sched_runs = bound_counters.get("sched.runs", 0)
    abort_rate = (
        round(sched_abort / sched_runs, 4) if sched_runs else None
    )
    print("  bound-abort:  %.2fs (sched.abort %d / sched.runs %d)" % (
        seconds_bound, sched_abort, sched_runs))
    canonical_pruned = _canonical(pruned)
    record = {
        "example": name,
        "scale": scale,
        "timeline": timeline,
        "tasks": spec.total_tasks,
        "seconds_from_scratch": None,
        "seconds_incremental": None,
        "seconds_pruned": round(seconds_pruned, 3),
        "seconds_bound_abort": round(seconds_bound, 3),
        "speedup": None,
        "speedup_incremental": None,
        "prune_cut": prune_cut,
        "sched_abort": sched_abort,
        "sched_runs": sched_runs,
        "abort_rate": abort_rate,
        "cost": round(pruned.cost, 2),
        "feasible": pruned.feasible,
        "identical": canonical_pruned == _canonical(bounded),
    }
    if not skip_warm:
        warm = warm_start_legs(spec, timeline, store_parent=store_parent)
        record["identical"] = (
            record["identical"] and warm.pop("identical_warm")
        )
        record.update(warm)
    if transports:
        sweep = transport_sweep(spec, timeline, canonical_pruned)
        record["identical"] = (
            record["identical"] and sweep.pop("identical_transport")
        )
        record.update(sweep)
    if skip_scratch:
        print("  baselines skipped (--skip-scratch)")
        return normalize_record(record)

    seconds_scratch, scratch, _ = _timed_run(
        spec, incremental=False, prune=False
    )
    print("  from-scratch: %.2fs" % (seconds_scratch,))
    seconds_incr, incr, _ = _timed_run(
        spec, incremental=True, prune=False, timeline=timeline
    )
    print("  incremental:  %.2fs" % (seconds_incr,))
    canonical_scratch = _canonical(scratch)
    identical = (
        record["identical"]
        and canonical_scratch == _canonical(incr)
        and canonical_scratch == canonical_pruned
    )
    record.update({
        "seconds_from_scratch": round(seconds_scratch, 3),
        "seconds_incremental": round(seconds_incr, 3),
        "speedup": round(seconds_scratch / max(seconds_pruned, 1e-9), 3),
        "speedup_incremental": round(
            seconds_scratch / max(seconds_incr, 1e-9), 3
        ),
        "speedup_bound_abort": round(
            seconds_scratch / max(seconds_bound, 1e-9), 3
        ),
        "identical": identical,
    })
    if pool_workers >= 2:
        seconds_pooled, pooled, _ = _timed_run(
            spec, incremental=True, prune=True, parallel_eval=pool_workers,
            timeline=timeline,
        )
        print("  pooled (%d):   %.2fs" % (pool_workers, seconds_pooled))
        record["seconds_pooled"] = round(seconds_pooled, 3)
        record["pool_workers"] = pool_workers
        record["identical"] = (
            record["identical"] and canonical_scratch == _canonical(pooled)
        )
    return normalize_record(record)


def merge_records(path: pathlib.Path, fresh: list) -> list:
    """Update ``path``'s records in place, keyed by (example, scale).

    Every surviving record -- freshly measured or previously committed
    -- is normalized against :data:`RECORD_SCHEMA`, so records written
    before a leg existed gain its keys (as ``null``) instead of
    leaving the file with drifting per-record shapes.
    """
    existing = []
    if path.exists():
        existing = json.loads(path.read_text()).get("records", [])
    by_key = {(r["example"], r["scale"]): normalize_record(r)
              for r in existing}
    for record in fresh:
        by_key[(record["example"], record["scale"])] = normalize_record(record)
    return [by_key[k] for k in sorted(by_key)]


def check_regression(records: list, baseline_path: pathlib.Path,
                     max_regression: float) -> list:
    """Speedup regressions beyond tolerance vs. a committed baseline.

    Records with a measured ``speedup`` compare it against the
    baseline's.  Records without one (``--skip-scratch`` rows, where
    the from-scratch leg is too slow to run) are *not* skipped: their
    ``seconds_pruned`` wall time is compared against the previous
    pruned wall time instead, failing when the new run is more than
    ``max_regression`` slower.  A record is only ever skipped when the
    baseline has no comparable leg at all.
    """
    baseline = json.loads(baseline_path.read_text()).get("records", [])
    reference = {(r["example"], r["scale"]): r for r in baseline}
    failures = []
    for record in records:
        ref = reference.get((record["example"], record["scale"]))
        if ref is None:
            continue
        if record.get("speedup") is not None and ref.get("speedup") is not None:
            floor = ref["speedup"] * (1.0 - max_regression)
            if record["speedup"] < floor:
                failures.append(
                    "%s@%s: speedup %.2fx below %.2fx (baseline %.2fx - %d%%)"
                    % (record["example"], record["scale"], record["speedup"],
                       floor, ref["speedup"], round(max_regression * 100))
                )
            continue
        # Pruned-vs-previous-pruned fallback for skip-scratch rows.
        seconds = record.get("seconds_pruned")
        ref_seconds = ref.get("seconds_pruned")
        if seconds is None or ref_seconds is None:
            continue
        ceiling = ref_seconds * (1.0 + max_regression)
        if seconds > ceiling:
            failures.append(
                "%s@%s: pruned %.2fs above %.2fs (baseline %.2fs + %d%%)"
                % (record["example"], record["scale"], seconds,
                   ceiling, ref_seconds, round(max_regression * 100))
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--example", action="append", dest="examples",
                        choices=EXAMPLE_NAMES, metavar="NAME",
                        help="example to benchmark (repeatable; default A1TR)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="example scale factor (default 0.1)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON (default BENCH_inner_loop.json)")
    parser.add_argument("--pool-workers", type=int, default=0, metavar="N",
                        help="also time an N-worker process pool (N >= 2)")
    parser.add_argument("--skip-scratch", action="store_true",
                        help="record only the pruned run (no baselines, "
                             "no speedup) -- for large workloads")
    parser.add_argument("--skip-warm", action="store_true",
                        help="drop the warm-start / exact-hit legs")
    parser.add_argument("--transport", action="store_true",
                        help="also sweep parallel-eval scaling at "
                             "1/2/4/8 workers over the pipe and socket "
                             "execution transports")
    parser.add_argument("--timeline", choices=("auto", "list", "tree"),
                        default="auto",
                        help="timeline implementation for the engine legs "
                             "(default auto; results are identical either "
                             "way -- this is a timing axis)")
    parser.add_argument("--check-against", type=pathlib.Path, default=None,
                        metavar="BASELINE.json",
                        help="fail when speedup regresses vs this file")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated fractional speedup loss (default .25)")
    args = parser.parse_args(argv)

    fresh = []
    for name in args.examples or ["A1TR"]:
        print("%s @ scale %g" % (name, args.scale))
        record = bench_example(name, args.scale,
                               pool_workers=args.pool_workers,
                               skip_scratch=args.skip_scratch,
                               timeline=args.timeline,
                               skip_warm=args.skip_warm,
                               store_parent=args.out.resolve().parent,
                               transports=args.transport)
        if record["speedup"] is not None:
            print("  speedup: %.2fx (engine only %.2fx), identical: %s" % (
                record["speedup"], record["speedup_incremental"],
                record["identical"]))
        if record["speedup_warm_start"] is not None:
            print("  warm-start speedup: %.2fx, exact hit: %.4fs" % (
                record["speedup_warm_start"], record["seconds_exact_hit"]))
        fresh.append(record)

    records = merge_records(args.out, fresh)
    args.out.write_text(json.dumps(
        {"benchmark": "inner_loop", "records": records},
        indent=2, sort_keys=True) + "\n")
    print("wrote %s" % args.out)

    status = 0
    broken = [r for r in fresh if not r["identical"]]
    if broken:
        print("ERROR: optimized results differ from from-scratch for: %s"
              % ", ".join(r["example"] for r in broken))
        status = 1
    if args.check_against is not None:
        failures = check_regression(fresh, args.check_against,
                                    args.max_regression)
        for line in failures:
            print("REGRESSION: %s" % line)
        if failures:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
