"""Ablation: the ERUF/EPUF caps (Section 4.5).

The 70 %/80 % caps trade device count for post-route delay safety.
Raising ERUF packs more logic per device (cheaper architectures) but
Table 1 shows the delay constraints then break after routing -- this
ablation quantifies the cost side of that trade on a real example.
"""

import pytest

from repro import CrusadeConfig, DelayPolicy, crusade
from repro.bench.examples import build_example

from conftest import write_result

_COSTS = {}


@pytest.mark.parametrize("eruf", [0.5, 0.7, 0.9])
def test_architecture_cost_vs_eruf(benchmark, eruf, bench_scale, results_dir):
    spec = build_example("A1TR", scale=bench_scale)
    config = CrusadeConfig(delay_policy=DelayPolicy(eruf=eruf))

    result = benchmark.pedantic(
        crusade, args=(spec,), kwargs={"config": config}, rounds=1, iterations=1
    )
    _COSTS[eruf] = result.cost
    benchmark.extra_info["cost"] = round(result.cost)
    benchmark.extra_info["n_pes"] = result.n_pes
    assert result.feasible


def test_eruf_tradeoff_shape(benchmark, results_dir):
    if len(_COSTS) < 3:
        pytest.skip("sweep incomplete")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_eruf.txt",
        "\n".join("ERUF=%.2f  cost $%.0f" % (e, c) for e, c in sorted(_COSTS.items())),
    )
    # Tighter caps can only need more (or equal) silicon.
    assert _COSTS[0.5] >= _COSTS[0.7] >= _COSTS[0.9] - 1e-9
