"""Service-path latency benchmark: cold vs. exact-hit vs. coalesced.

Starts one real :class:`~repro.service.server.SynthesisServer` on an
ephemeral port with a fresh store directory, then measures the three
ways an identical request can be answered (EXPERIMENTS.md, "Serving
latency"):

* ``cold_s`` -- the first submission: admission + dispatch to a shard
  worker + one full synthesis + store write-through;
* ``coalesced_s`` -- N duplicate submissions racing the cold one from
  concurrent client threads: each attaches to the in-flight job's
  future (``coalesced: true``) and resolves when the leader does, so
  the whole batch costs ONE synthesis (wall time ~= the leader's);
* ``exact_hit_s`` -- a resubmission after the store has the result:
  admission + digest probe + full-result-tier read, no job queued.

Every response's ``result`` payload is checked byte-identical
(:func:`repro.io.service_json.result_bytes`) before any timing is
recorded -- a latency number for a wrong answer is worse than no
number.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --example A1TR --scale 0.1 --duplicates 4

Writes ``BENCH_service.json`` (``--out``) at the repository root;
records merge by (example, scale, duplicates) so repeated runs update
in place.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench.examples import build_example  # noqa: E402
from repro.io.service_json import build_request, result_bytes  # noqa: E402
from repro.service.client import submit  # noqa: E402
from repro.service.server import SynthesisServer  # noqa: E402


def run_benchmark(example: str, scale: float, duplicates: int, workers: int):
    """One full cold/coalesced/exact-hit measurement; returns a record."""
    spec = build_example(example, scale=scale)
    request = build_request(spec)
    store = tempfile.mkdtemp(prefix="bench-service-store-")

    async def measure():
        server = SynthesisServer(port=0, workers=workers, cache_dir=store)
        await server.start()
        loop = asyncio.get_running_loop()
        port = server.port

        def client_submit():
            return submit("127.0.0.1", port, request, timeout_s=3600.0)

        # -- cold + coalesced: duplicates race the leader ------------
        timings = {}
        documents = {}

        def timed(slot):
            started = time.perf_counter()
            _, document = client_submit()
            timings[slot] = time.perf_counter() - started
            documents[slot] = document

        threads = [
            threading.Thread(target=timed, args=("dup%d" % i,))
            for i in range(duplicates)
        ]
        cold_started = time.perf_counter()
        leader = threading.Thread(target=timed, args=("cold",))
        leader.start()
        # Give admission a moment so the duplicates coalesce instead
        # of racing the store probe before the leader registers.
        await asyncio.sleep(0.2)
        for thread in threads:
            thread.start()
        while leader.is_alive() or any(t.is_alive() for t in threads):
            await asyncio.sleep(0.05)
        cold_s = timings["cold"]
        del cold_started  # the per-slot timers carry the measurements

        # -- exact hit -----------------------------------------------
        hit_started = time.perf_counter()
        _, hit_document = await loop.run_in_executor(None, client_submit)
        exact_hit_s = time.perf_counter() - hit_started
        documents["hit"] = hit_document
        await server.close()
        return cold_s, exact_hit_s, timings, documents

    cold_s, exact_hit_s, timings, documents = asyncio.run(measure())

    cold_document = documents["cold"]
    assert cold_document["status"] == "done", cold_document
    assert cold_document["cache_hit"] is False
    reference = result_bytes(cold_document)
    coalesced = [documents["dup%d" % i] for i in range(duplicates)]
    for document in coalesced:
        assert document["coalesced"] is True, (
            "a duplicate was not coalesced; raise the race margin"
        )
        assert result_bytes(document) == reference, "coalesced leg diverged"
    assert documents["hit"]["cache_hit"] is True
    assert result_bytes(documents["hit"]) == reference, "hit leg diverged"

    coalesced_s = [timings["dup%d" % i] for i in range(duplicates)]
    return {
        "example": example,
        "scale": scale,
        "duplicates": duplicates,
        "workers": workers,
        "cold_s": round(cold_s, 4),
        "coalesced_mean_s": round(sum(coalesced_s) / len(coalesced_s), 4),
        "coalesced_max_s": round(max(coalesced_s), 4),
        "exact_hit_s": round(exact_hit_s, 4),
        "speedup_exact_hit": round(cold_s / exact_hit_s, 1),
        "result_bytes": len(reference),
    }


def merge_records(path: pathlib.Path, record: dict) -> list:
    """Insert ``record`` into ``path`` keyed by (example, scale, dups)."""
    records = []
    if path.exists():
        records = json.loads(path.read_text())
    key = (record["example"], record["scale"], record["duplicates"])
    records = [
        r for r in records
        if (r["example"], r["scale"], r["duplicates"]) != key
    ]
    records.append(record)
    records.sort(key=lambda r: (r["example"], r["scale"], r["duplicates"]))
    return records


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--example", default="A1TR")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--duplicates", type=int, default=4,
                        help="concurrent duplicate submissions (default 4)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server shard workers (default 2)")
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        args.example, args.scale, args.duplicates, args.workers
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(merge_records(out, record), indent=2) + "\n")
    print("%s@%g: cold %.2fs; %d coalesced mean %.2fs; "
          "exact hit %.3fs (x%.0f); wrote %s"
          % (record["example"], record["scale"], record["cold_s"],
             record["duplicates"], record["coalesced_mean_s"],
             record["exact_hit_s"], record["speedup_exact_hit"], out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
