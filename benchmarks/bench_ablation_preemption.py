"""Ablation: restricted preemptive scheduling (Section 5).

The paper combines preemptive and non-preemptive scheduling,
preempting only "in restricted scenarios" and charging an
experimentally determined overhead.  This ablation measures what the
preemption path buys: with it off, delayed tasks must wait for
contiguous processor gaps, which can cost deadlines or force costlier
architectures.
"""

import pytest

from repro import CrusadeConfig, crusade
from repro.bench.examples import build_example

from conftest import write_result

_RESULTS = {}


@pytest.mark.parametrize("preemption", [True, False], ids=["preemptive", "non-preemptive"])
def test_synthesis_with_and_without_preemption(
    benchmark, preemption, bench_scale, results_dir
):
    spec = build_example("VDRTX", scale=bench_scale)
    config = CrusadeConfig(preemption=preemption, reconfiguration=False)
    result = benchmark.pedantic(
        crusade, args=(spec,), kwargs={"config": config}, rounds=1, iterations=1
    )
    _RESULTS[preemption] = result
    benchmark.extra_info["cost"] = round(result.cost)
    benchmark.extra_info["preemptions"] = result.schedule.preemptions
    assert result.feasible


def test_preemption_tradeoff_shape(benchmark, results_dir):
    if len(_RESULTS) < 2:
        pytest.skip("sweep incomplete")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_p, without_p = _RESULTS[True], _RESULTS[False]
    write_result(
        results_dir,
        "ablation_preemption.txt",
        "preemptive:     $%.0f, %d preemptions\nnon-preemptive: $%.0f, %d preemptions"
        % (with_p.cost, with_p.schedule.preemptions,
           without_p.cost, without_p.schedule.preemptions),
    )
    # The preemption path is exercised and never used when disabled.
    assert without_p.schedule.preemptions == 0
    # Preemption can only help the cost-driven search (same or better).
    assert with_p.cost <= without_p.cost * 1.05
