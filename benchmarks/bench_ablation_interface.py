"""Ablation: reconfiguration-interface chaining and programming modes
(Section 4.4).

Chaining shares one PROM/programming port across single-mode devices;
serial versus parallel and clock rate trade boot time against dollars.
"""

import pytest

from repro import CrusadeConfig, crusade
from repro.bench.examples import build_example
from repro.reconfig.interface import (
    InterfaceKind,
    ProgrammingOption,
    default_option_array,
    synthesize_interface,
)
from repro.units import KB

from conftest import write_result


@pytest.fixture(scope="module")
def example_arch(bench_scale):
    spec = build_example("A1TR", scale=bench_scale)
    result = crusade(spec, config=CrusadeConfig())
    assert result.feasible
    return spec, result.arch


def test_chaining_saves_interface_cost(benchmark, example_arch, results_dir):
    spec, arch = example_arch

    def chained_cost():
        candidate = arch.clone()
        plan = synthesize_interface(candidate, spec.boot_time_requirement)
        return plan

    plan = benchmark.pedantic(chained_cost, rounds=3, iterations=1)
    # Unchained alternative: every single-mode device pays for its own
    # cheapest master interface.
    masters = [o for o in default_option_array() if o.kind.is_master]
    cheapest = masters[0]
    unchained = 0.0
    chained = 0.0
    chain_members = 0
    for device in plan.devices.values():
        if len(device.chained_with) > 1:
            chain_members += 1
            chained += device.cost_share
            unchained += cheapest.cost(device.storage_bytes)
    write_result(
        results_dir,
        "ablation_interface.txt",
        "chain members: %d\nchained cost: $%.2f\nunchained cost: $%.2f"
        % (chain_members, chained, unchained),
    )
    assert chain_members >= 2, "example should produce a shared chain"
    assert chained < unchained


def test_serial_vs_parallel_boot_tradeoff(benchmark):
    bits = 400_000  # a mid-90s FPGA image

    def measure():
        serial = ProgrammingOption(InterfaceKind.SERIAL_MASTER, 4e6)
        parallel = ProgrammingOption(InterfaceKind.PARALLEL_MASTER, 4e6)
        return serial, parallel

    serial, parallel = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert parallel.boot_time(bits) == pytest.approx(serial.boot_time(bits) / 8)
    assert parallel.cost(64 * KB) > serial.cost(64 * KB)
