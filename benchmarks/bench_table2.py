"""Table 2: efficacy of CRUSADE.

Synthesizes every example with and without dynamic reconfiguration at
the benchmark scale and regenerates the paper's table.  The shape that
must hold: both runs feasible, reconfiguration never costs more, its
PE count never grows, and its synthesis CPU time is the same order.
"""

import pytest

from repro.bench.examples import EXAMPLE_NAMES
from repro.bench.table2 import render_table2, run_table2_row

from conftest import write_result

_ROWS = {}


@pytest.mark.parametrize("example", EXAMPLE_NAMES)
def test_table2_row(benchmark, example, bench_scale):
    row = benchmark.pedantic(
        run_table2_row, args=(example,), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    _ROWS[example] = row
    benchmark.extra_info["tasks"] = row.tasks
    benchmark.extra_info["cost_without"] = round(row.without.cost)
    benchmark.extra_info["cost_with"] = round(row.with_reconfig.cost)
    benchmark.extra_info["savings_pct"] = round(row.savings_pct, 1)

    assert row.without.feasible, "baseline must meet every deadline"
    assert row.with_reconfig.feasible, "reconfig run must meet every deadline"
    # Dynamic reconfiguration never loses (Figure 3 accepts only
    # cost-decreasing merges).
    assert row.with_reconfig.cost <= row.without.cost + 1e-6
    assert row.with_reconfig.n_pes <= row.without.n_pes


def test_table2_render(benchmark, results_dir):
    """Aggregate the rows gathered above into the paper's layout."""
    if len(_ROWS) < len(EXAMPLE_NAMES):
        pytest.skip("row benchmarks did not all run")
    rows = [_ROWS[name] for name in EXAMPLE_NAMES]
    text = benchmark.pedantic(render_table2, args=(rows,), rounds=1, iterations=1)
    write_result(results_dir, "table2.txt", text)
    savings = [row.savings_pct for row in rows]
    # Reconfiguration must pay off somewhere substantially, as in the
    # paper's 25.9-56.7 % column.
    assert max(savings) > 15.0
    assert min(savings) >= 0.0
