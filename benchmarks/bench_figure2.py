"""Figure 2: the motivating example.

One reconfigured F1 (mode 1 = {T1, T2}, mode 2 = {T1, T3}) must beat
both no-reconfiguration options (two F1s or one F2).
"""

from repro.bench.figure2 import run_figure2
from repro.core.report import render_architecture

from conftest import write_result


def test_figure2(benchmark, results_dir):
    outcome = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    write_result(
        results_dir,
        "figure2.txt",
        "savings: %.1f%%\n\n%s"
        % (outcome.savings_pct, render_architecture(outcome.with_reconfig)),
    )
    assert outcome.with_reconfig.feasible
    assert outcome.without.feasible
    assert outcome.reconfiguration_wins
    # One F1 instead of two (or one costlier F2): ~50 % cheaper silicon.
    assert outcome.savings_pct > 30.0
    ppes = outcome.with_reconfig.arch.programmable_pes()
    assert len(ppes) == 1 and ppes[0].pe_type.name == "F1"
    assert ppes[0].n_modes == 2
    # T1 is present in both configurations (the paper's mode table).
    assert ppes[0].modes_of_cluster("T1/c000") == (0, 1)
    # The reboot task T_rc fires between the windows.
    assert outcome.with_reconfig.reconfigurations >= 1
    baseline_ppes = outcome.without.arch.programmable_pes()
    assert len(baseline_ppes) == 2 or any(
        p.pe_type.name == "F2" for p in baseline_ppes
    )
