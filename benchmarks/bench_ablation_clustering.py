"""Ablation: task clustering (Section 5).

COSYN's claim, inherited by CRUSADE: clustering yields up to a
three-fold co-synthesis CPU-time reduction at under 1 % cost increase.
We compare clustering on vs off (one cluster per task) on a mid-size
example and check the direction of both effects.
"""

import pytest

from repro import CrusadeConfig, crusade
from repro.bench.examples import build_example

from conftest import write_result

_RESULTS = {}


@pytest.mark.parametrize("clustering", [True, False], ids=["clustered", "per-task"])
def test_synthesis_with_and_without_clustering(
    benchmark, clustering, bench_scale, results_dir
):
    spec = build_example("A1TR", scale=bench_scale)
    config = CrusadeConfig(clustering=clustering, reconfiguration=False)
    result = benchmark.pedantic(
        crusade, args=(spec,), kwargs={"config": config}, rounds=1, iterations=1
    )
    _RESULTS[clustering] = result
    benchmark.extra_info["cost"] = round(result.cost)
    benchmark.extra_info["clusters"] = result.clustering.n_clusters
    assert result.feasible


def test_clustering_tradeoff_shape(benchmark, results_dir):
    if len(_RESULTS) < 2:
        pytest.skip("sweep incomplete")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    clustered, per_task = _RESULTS[True], _RESULTS[False]
    write_result(
        results_dir,
        "ablation_clustering.txt",
        "clustered: %d clusters, $%.0f, %.1fs\nper-task: %d clusters, $%.0f, %.1fs"
        % (
            clustered.clustering.n_clusters, clustered.cost, clustered.cpu_seconds,
            per_task.clustering.n_clusters, per_task.cost, per_task.cpu_seconds,
        ),
    )
    # Clustering shrinks the allocation problem...
    assert clustered.clustering.n_clusters < per_task.clustering.n_clusters
    # ...and saves CPU time (the paper's headline motivation).
    assert clustered.cpu_seconds < per_task.cpu_seconds
