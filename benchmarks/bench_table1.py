"""Table 1: delay management through FPGAs/CPLDs.

Regenerates the full (circuit x ERUF) sweep at EPUF = 0.80 and checks
the published shape: zero delay increase at the 70 % cap, monotone
growth above it, and exactly r2d2p/cv46/wamxp unroutable at 100 %.
"""

from repro.bench.table1 import ERUF_SWEEP, render_table1, run_table1
from repro.delay.circuits import TABLE1_CIRCUITS, UNROUTABLE_AT_FULL

from conftest import write_result


def test_table1_sweep(benchmark, results_dir):
    results = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    text = render_table1(results)
    write_result(results_dir, "table1.txt", text)

    assert set(results) == set(TABLE1_CIRCUITS)
    unroutable = []
    for name, cells in results.items():
        assert cells[0].eruf == 0.70
        assert cells[0].increase_pct == 0.0
        routable_values = [c.increase_pct for c in cells if c.routable]
        assert routable_values == sorted(routable_values)
        if not cells[-1].routable:
            unroutable.append(name)
        else:
            # Routable circuits blow up substantially at 100 %.
            assert cells[-1].increase_pct > 40.0
    assert tuple(unroutable) == UNROUTABLE_AT_FULL


def test_table1_epuf_column(benchmark, results_dir):
    """The paper's experiments also varied EPUF; verify pin pressure
    raises delay at fixed ERUF."""

    def sweep():
        relaxed = run_table1(epuf=0.70, erufs=(0.90,))
        pressed = run_table1(epuf=1.00, erufs=(0.90,))
        return relaxed, pressed

    relaxed, pressed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    worse = 0
    for name in TABLE1_CIRCUITS:
        low = relaxed[name][0]
        high = pressed[name][0]
        if not high.routable:
            worse += 1
        elif low.routable and high.increase_pct >= low.increase_pct:
            worse += 1
    assert worse >= 8  # pin crowding hurts essentially everywhere
