"""Scaling series: CPU time vs task count; savings vs group size.

These reproduce the *implied* shapes of the evaluation: Table 2's CPU
columns grow with example size, and Figure 2's argument predicts that
savings grow with how many compatible functions can share a device.
"""

import pytest

from repro.bench.sweeps import (
    cpu_time_series,
    render_sweep,
    savings_vs_group_size,
)

from conftest import write_result


def test_cpu_time_grows_with_tasks(benchmark, results_dir):
    points = benchmark.pedantic(
        cpu_time_series,
        kwargs={"example": "A1TR", "scales": (0.1, 0.3, 0.45)},
        rounds=1, iterations=1,
    )
    write_result(
        results_dir,
        "sweep_cpu_time.txt",
        render_sweep("CPU time vs scale (A1TR)", "scale", points),
    )
    assert all(p.feasible for p in points)
    tasks = [p.tasks for p in points]
    assert tasks == sorted(tasks)
    assert tasks[-1] > tasks[0]  # scales genuinely grow the system
    # CPU time grows with task count (allow the smallest pair to tie).
    assert points[-1].cpu_seconds > points[0].cpu_seconds


def test_savings_grow_with_group_size(benchmark, results_dir):
    points = benchmark.pedantic(
        savings_vs_group_size, kwargs={"group_sizes": (1, 2, 3)},
        rounds=1, iterations=1,
    )
    write_result(
        results_dir,
        "sweep_group_size.txt",
        render_sweep("Savings vs compatibility-group size", "group", points),
    )
    assert all(p.feasible for p in points)
    by_size = {p.x: p.savings_pct for p in points}
    # No compatibility -> nothing to time-share; more compatible
    # functions per window -> more to share.
    assert by_size[1.0] <= by_size[2.0] <= by_size[3.0] + 1e-9
    # Some group structure must pay off substantially.
    assert max(by_size.values()) > 10.0
    # Reconfiguration never loses anywhere on the sweep.
    assert min(by_size.values()) >= 0.0
