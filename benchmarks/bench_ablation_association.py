"""Ablation: the association array (Section 5).

"In traditional real-time computing theory hyperperiod/period copies
are obtained for each graph ... this is impractical from both CPU time
and memory points of view."  We quantify the claim: synthesis with the
association cap versus fully materialized copies.
"""

import pytest

from repro import CrusadeConfig, GeneratorConfig, crusade, generate_spec
from repro.graph.association import AssociationArray

from conftest import write_result

#: Mixes a fast singleton into a slow compat group so the hyperperiod
#: carries many copies of the fast graph.
def _multirate_spec():
    return generate_spec(GeneratorConfig(
        seed=41, n_graphs=5, tasks_per_graph=10, compat_group_size=2,
        utilization=0.18, hw_only_fraction=0.3, mixed_fraction=0.2,
        periods=(0.0512, 0.1024), compat_periods=(0.8192,),
    ))


_RESULTS = {}


@pytest.mark.parametrize("cap", [2, 8, 32], ids=["cap2", "cap8", "cap32"])
def test_synthesis_vs_copy_cap(benchmark, cap):
    spec = _multirate_spec()
    config = CrusadeConfig(max_explicit_copies=cap, reconfiguration=False)
    result = benchmark.pedantic(
        crusade, args=(spec,), kwargs={"config": config}, rounds=1, iterations=1
    )
    _RESULTS[cap] = result
    benchmark.extra_info["cost"] = round(result.cost)
    assert result.feasible


def test_association_compression_and_fidelity(benchmark, results_dir):
    if len(_RESULTS) < 3:
        pytest.skip("sweep incomplete")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec = _multirate_spec()
    assoc = AssociationArray(spec, max_explicit_copies=2)
    lines = ["compression at cap 2: %.1fx" % assoc.compression_ratio()]
    for cap, result in sorted(_RESULTS.items()):
        lines.append(
            "cap %-3d  cost $%-6.0f  cpu %.2fs" % (cap, result.cost, result.cpu_seconds)
        )
    write_result(results_dir, "ablation_association.txt", "\n".join(lines))
    # The association array genuinely compresses this workload...
    assert assoc.compression_ratio() >= 2.0
    # ...and the capped runs agree with the near-exact one on cost
    # within a small factor (the COSYN fidelity claim).
    costs = [r.cost for r in _RESULTS.values()]
    assert max(costs) <= 1.25 * min(costs)
