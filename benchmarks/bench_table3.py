"""Table 3: efficacy of CRUSADE-FT.

Fault-tolerant co-synthesis with and without dynamic reconfiguration.
Shape: FT architectures cost more than Table 2's plain ones, and
reconfiguration still saves (30.7-53.2 % in the paper).
"""

import pytest

from repro.bench.examples import EXAMPLE_NAMES
from repro.bench.table2 import run_table2_row
from repro.bench.table3 import render_table3, run_table3_row

from conftest import write_result

#: FT synthesis is ~4x the plain runtime (the transformed specs nearly
#: double), so the default benchmark covers a representative subset;
#: set REPRO_TABLE3=all to run every example.
import os

if os.environ.get("REPRO_TABLE3") == "all":
    TABLE3_EXAMPLES = tuple(EXAMPLE_NAMES)
else:
    TABLE3_EXAMPLES = ("A1TR", "VDRTX", "HROST", "ADMR")

_ROWS = {}


@pytest.mark.parametrize("example", TABLE3_EXAMPLES)
def test_table3_row(benchmark, example, bench_scale):
    row = benchmark.pedantic(
        run_table3_row, args=(example,), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    _ROWS[example] = row
    benchmark.extra_info["tasks"] = row.tasks
    benchmark.extra_info["savings_pct"] = round(row.savings_pct, 1)

    assert row.without.feasible
    assert row.with_reconfig.feasible
    assert row.with_reconfig.cost <= row.without.cost + 1e-6
    # Availability requirements hold in both columns.
    assert row.without.spares.met
    assert row.with_reconfig.spares.met


def test_table3_render_and_ft_overhead(benchmark, results_dir, bench_scale):
    if len(_ROWS) < len(TABLE3_EXAMPLES):
        pytest.skip("row benchmarks did not all run")
    rows = [_ROWS[name] for name in TABLE3_EXAMPLES]
    write_result(results_dir, "table3.txt", render_table3(rows))
    # Fault tolerance costs more than the plain architecture (compare
    # against Table 2 on one example).
    plain = benchmark.pedantic(
        run_table2_row, args=("A1TR",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    assert _ROWS["A1TR"].without.cost > plain.without.cost
    assert _ROWS["A1TR"].with_reconfig.cost > plain.with_reconfig.cost
