"""Copy-on-write application of allocation options.

The allocation inner loop used to deep-clone the whole architecture
for every candidate (one clone per option x link strategy x cluster).
Instead, an option can be applied directly to the working architecture
while recording an *undo journal*; rejecting the candidate replays the
journal in reverse, restoring the architecture exactly -- all the
mutated quantities (gate/pin counters, memory bytes, port sets,
instance counters) are integers or sets, so reversal is bit-exact.

Journal entries are tuples; the first element names the operation:

``("new_pe", pe_id, type_name, had_counter)``
    A PE instance was created (and the type's id counter bumped).
``("new_mode", pe_id)``
    A fresh (empty, last) mode was appended to a programmable PE.
``("alloc", cluster_name, gates, pins, memory)``
    The cluster was allocated; the resource figures are kept so the
    mode counters roll back exactly.
``("replica", pe_id, cluster_name, mode_index, gates, pins)``
    A resident cluster's circuit was replicated into a mode.
``("attach", link_id, pe_id)``
    An existing link gained a port.
``("new_link", link_id, type_name, had_counter)``
    A link instance was created (attachments die with it).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance

#: One recorded mutation (see module docstring for shapes).
JournalEntry = tuple
Journal = List[JournalEntry]


def undo_journal(arch: Architecture, journal: Journal) -> None:
    """Replay ``journal`` in reverse, restoring ``arch`` exactly."""
    for entry in reversed(journal):
        op = entry[0]
        if op == "attach":
            _, link_id, pe_id = entry
            arch.links[link_id].detach(pe_id)
            arch.topo_version += 1
        elif op == "new_link":
            _, link_id, type_name, had_counter = entry
            del arch.links[link_id]
            _rollback_counter(arch, "link:" + type_name, had_counter)
            arch.topo_version += 1
        elif op == "replica":
            _, pe_id, cluster_name, mode_index, gates, pins = entry
            pe = arch.pes[pe_id]
            pe.mode(mode_index).remove_cluster(cluster_name, gates, pins)
            modes = pe.replica_modes[cluster_name]
            modes.discard(mode_index)
            if not modes:
                del pe.replica_modes[cluster_name]
        elif op == "alloc":
            _, cluster_name, gates, pins, memory = entry
            arch.deallocate_cluster(
                cluster_name, gates=gates, pins=pins, memory=memory
            )
        elif op == "new_mode":
            _, pe_id = entry
            arch.pes[pe_id].modes.pop()
        elif op == "new_pe":
            _, pe_id, type_name, had_counter = entry
            del arch.pes[pe_id]
            _rollback_counter(arch, type_name, had_counter)
        else:  # pragma: no cover - journal writers control the shapes
            raise AssertionError("unknown journal op %r" % (op,))


def _rollback_counter(arch: Architecture, key: str, had_counter: bool) -> None:
    """Reverse one instance-counter bump, deleting keys we created so
    the counter table matches the pre-apply state exactly."""
    if had_counter:
        arch._counters[key] -= 1
    else:
        del arch._counters[key]


class AppliedOption:
    """Handle to an allocation option applied in place.

    ``revert()`` restores the architecture to its pre-apply state;
    committing is simply *not* reverting.  ``touched_pes`` is the set
    of PE instances whose placement or connectivity the option changed
    -- the dirty set for incremental priority recomputation: a graph
    none of whose clusters sit on a touched PE keeps identical
    allocation-aware priority estimates.
    """

    def __init__(
        self, arch: Architecture, journal: Journal, pe: PEInstance
    ) -> None:
        """Bind the applied option to its journal and target PE."""
        self.arch = arch
        self.journal = journal
        self.pe = pe
        self.reverted = False
        self._touched: Optional[Set[str]] = None

    @property
    def touched_pes(self) -> Set[str]:
        """PEs affected by the option: the hosting PE plus every port
        of every link the option created or extended (a port-count
        change alters communication times for all attached PEs)."""
        if self._touched is None:
            touched = {self.pe.id}
            for entry in self.journal:
                if entry[0] in ("attach", "new_link"):
                    link = self.arch.links.get(entry[1])
                    if link is not None:
                        touched.update(link.attached)
            self._touched = touched
        return self._touched

    def revert(self) -> None:
        """Undo the applied option (idempotent)."""
        if not self.reverted:
            # Snapshot the dirty set first: it reads the applied state.
            _ = self.touched_pes
            undo_journal(self.arch, self.journal)
            self.reverted = True
