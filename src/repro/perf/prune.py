"""Admissible candidate pruning for the synthesis inner loop.

Most allocation candidates never win: they provably miss a deadline
or provably overload a resource, and the scheduler run that proves it
is the inner loop's dominant cost.  This module computes per-candidate
*lower bounds* (via :mod:`repro.sched.bounds`) and discards candidates
the bounds already condemn -- **pure dominance pruning**: a pruned
candidate is one the full evaluation would necessarily have rejected,
so the chosen candidate, the fallback, and the final architecture are
byte-identical to the exhaustive run (property-tested in
``tests/perf/test_prune.py``).

Three bounds are used:

* **Finish-time floor** -- the copy-0 critical path over the
  best-case execution vector plus the PPE mode-switch reboot bound
  (:func:`repro.sched.bounds.finish_time_floor`).  Bit-exactly
  dominated by any real schedule, so ``floor - deadline > TIME_EPS``
  proves a deadline miss with no margin at all.
* **Demand floor** -- per-resource busy time over the hyperperiod
  (:func:`repro.sched.bounds.demand_floor`).  Summation order differs
  from the evaluator's, so a relative :data:`DEMAND_MARGIN` guards the
  cut.
* **Dollar-cost floor** -- an applied candidate's cost is exact, and
  the interface-synthesis surcharge is non-negative, which lets the
  merge loop skip trials that cannot beat the incumbent and lets the
  fallback search skip pruned candidates that cannot beat the
  incumbent least-infeasible choice.

Kill switches: ``CrusadeConfig(prune=False)`` or the
``REPRO_NO_PRUNE=1`` environment variable restore exhaustive
evaluation.  Counter traffic: ``prune.cut`` / ``prune.kept`` plus
per-reason ``prune.cut.deadline`` / ``prune.cut.overload`` /
``prune.cut.repair`` / ``prune.cut.merge``, and
``prune.fallback_evals`` / ``prune.fallback_skipped`` for the
deferred least-infeasible reconstruction.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resources.pe import PEKind
from repro.sched.bounds import demand_floor, finish_time_floor
from repro.sched.finish_time import _OVERLOAD_TOLERANCE
from repro.units import TIME_EPS

#: Environment kill switch: disable pruning, evaluate every candidate.
KILL_SWITCH_ENV = "REPRO_NO_PRUNE"

#: Relative margin applied to demand floors before calling a resource
#: overloaded: the evaluator sums per-task busy times in schedule
#: insertion order, the floor in cluster order, and float addition is
#: not associative.
DEMAND_MARGIN = 1e-6

#: Deflation applied to summed lateness/excess floors (lower-bound
#: components that aggregate many float terms in a different order
#: than the evaluator).
_SUM_DEFLATE = 1.0 - 1e-6


def prune_disabled_by_env() -> bool:
    """True when the environment kill switch is set (non-empty, not 0)."""
    value = os.environ.get(KILL_SWITCH_ENV, "")
    return value not in ("", "0")


def pruning_active(config) -> bool:
    """Whether the driver should prune under ``config``."""
    return bool(getattr(config, "prune", True)) and not prune_disabled_by_env()


class PruneVerdict:
    """Why a candidate was cut, with its admissible badness floor.

    ``floor`` is a valid lexicographic lower bound on the candidate's
    :meth:`~repro.alloc.evaluate.EvalResult.badness` tuple; the
    fallback reconstruction uses it to order and skip pruned
    candidates against the incumbent.
    """

    __slots__ = ("reason", "floor")

    def __init__(self, reason: str, floor: tuple) -> None:
        """Record why a candidate was cut and its badness floor."""
        self.reason = reason
        self.floor = floor


class CandidatePruner:
    """Admissible pruning for one cluster's allocation candidates.

    Built once per cluster iteration (the placements of every *other*
    cluster are fixed for its lifetime); ``bound`` is called with the
    architecture *after* the candidate option was applied and with the
    same ``graphs`` scope the evaluation would use, and memoizes per
    option identity -- the same option re-tried under another link
    strategy lands on the same placement, and link choices affect
    neither bound (communication floors are zero and demand ignores
    links).
    """

    def __init__(
        self,
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        cluster: Cluster,
        boot_time_fn=None,
    ) -> None:
        """Precompute this cluster iteration's bound inputs."""
        self.spec = spec
        self.assoc = assoc
        self.clustering = clustering
        self.cluster = cluster
        self.boot_time_fn = boot_time_fn
        self.graph = spec.graph(cluster.graph)
        self._memo: Dict[tuple, Optional[PruneVerdict]] = {}

    @staticmethod
    def _option_key(option) -> tuple:
        return (
            option.kind,
            option.pe_id,
            option.pe_type_name,
            option.mode_index,
            option.replicate,
        )

    def bound(
        self,
        arch: Architecture,
        option,
        graphs: Optional[List[str]],
        tracer: Tracer = NULL_TRACER,
    ) -> Optional[PruneVerdict]:
        """A :class:`PruneVerdict` when the applied candidate is
        provably infeasible, else None (evaluate it)."""
        key = self._option_key(option)
        if key in self._memo:
            return self._memo[key]
        verdict = self._compute(arch, graphs, tracer)
        self._memo[key] = verdict
        return verdict

    def _compute(
        self, arch: Architecture, graphs: Optional[List[str]], tracer: Tracer
    ) -> Optional[PruneVerdict]:
        if graphs is None:
            scoped_spec, scoped_assoc = self.spec, self.assoc
        else:
            from repro.alloc.evaluate import _scope

            scoped_spec, scoped_assoc = _scope(
                self.spec, self.assoc, graphs, tracer
            )
        pe_id, _ = arch.placement_of(self.cluster.name)
        pe = arch.pe(pe_id)

        overloads = 0
        excess = 0.0
        # Overload floor, restricted to the candidate's target PE: the
        # only resource whose demand the option increased.  (Checking
        # every PE would also be admissible but would condemn *all*
        # candidates whenever an unrelated PE is already overloaded,
        # sending the whole frontier to the fallback reconstruction.)
        if pe.pe_type.kind is not PEKind.ASIC:
            demand = demand_floor(
                arch,
                self.clustering,
                scoped_spec,
                scoped_assoc,
                graph_names=scoped_spec.graph_names(),
            ).get(pe_id, 0.0)
            capacity = scoped_assoc.hyperperiod
            if demand > capacity * _OVERLOAD_TOLERANCE * (1.0 + DEMAND_MARGIN):
                overloads = 1
                excess = (demand / capacity - 1.0) * _SUM_DEFLATE

        misses = 0
        lateness = 0.0
        floor = finish_time_floor(
            self.graph, arch, self.clustering, self.boot_time_fn
        )
        est = self.graph.est
        for task_name in self.graph.deadline_tasks():
            deadline = self.graph.effective_deadline(task_name)
            late = floor[task_name] - (est + deadline)
            if late > TIME_EPS:
                misses += 1
                lateness += late

        if not misses and not overloads:
            return None
        reason = "deadline" if misses else "overload"
        badness_floor = (
            misses + overloads,
            (lateness * _SUM_DEFLATE) + excess,
            arch.cost,
        )
        return PruneVerdict(reason, badness_floor)


class RepairBound:
    """Full-scope lexicographic badness floor for repair re-homings.

    Repair keeps a candidate only when it meets every deadline or
    strictly improves the incumbent's badness; a candidate whose floor
    is already >= the incumbent's badness can do neither (its first
    floor component is then necessarily positive, ruling out
    feasibility too), so it is skipped without scheduling.

    Repair moves one cluster at a time, so between two trials the
    deadline DP of almost every graph is computed from identical
    inputs.  The per-graph (misses, lateness) pair is therefore
    memoized under a placement signature capturing exactly what
    :func:`~repro.sched.bounds.finish_time_floor` reads: each
    cluster's hosting PE, its type, and -- for mode-windowed devices
    -- the cluster's permitted mode set with its boot times.  The
    per-graph partial sums are folded in a different float order than
    the single running sum, which the existing :data:`_SUM_DEFLATE`
    margin already covers.
    """

    #: Memo ceiling; repair sweeps revisit a few hundred placement
    #: signatures per graph at most, this is a runaway guard.
    _DP_MEMO_MAX = 8192

    def __init__(
        self,
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        boot_time_fn=None,
    ) -> None:
        """Index clusters per graph and reset the DP/demand memos."""
        from repro.reconfig.reboot import default_boot_time

        self.spec = spec
        self.assoc = assoc
        self.clustering = clustering
        self.boot_time_fn = boot_time_fn
        self._boot_fn = boot_time_fn or default_boot_time
        self._graph_clusters: Dict[str, List[str]] = {}
        for name, cluster in clustering.clusters.items():
            self._graph_clusters.setdefault(cluster.graph, []).append(name)
        for names in self._graph_clusters.values():
            names.sort()
        self._dp_memo: Dict[tuple, Tuple[int, float]] = {}
        self._demand_memo: Dict[tuple, Tuple[int, float]] = {}

    def _graph_signature(self, graph_name: str, arch: Architecture) -> tuple:
        """Everything the deadline DP of ``graph_name`` depends on."""
        cluster_alloc = arch.cluster_alloc
        boot_fn = self._boot_fn
        parts = []
        for cname in self._graph_clusters.get(graph_name, ()):
            placement = cluster_alloc.get(cname)
            if placement is None:
                parts.append(None)
                continue
            pe_id, _ = placement
            pe = arch.pe(pe_id)
            kind = pe.pe_type.kind
            if kind is PEKind.PROCESSOR or kind is PEKind.ASIC:
                parts.append((pe_id, pe.pe_type.name))
            else:
                own = tuple(sorted(pe.modes_of_cluster(cname)))
                parts.append((
                    pe_id,
                    pe.pe_type.name,
                    own,
                    tuple(boot_fn(pe, m) for m in own),
                ))
        return tuple(parts)

    def _dp_stats(self, graph_name: str, arch: Architecture) -> Tuple[int, float]:
        graph = self.spec.graph(graph_name)
        floor = finish_time_floor(
            graph, arch, self.clustering, self.boot_time_fn
        )
        est = graph.est
        misses = 0
        lateness = 0.0
        for task_name in graph.deadline_tasks():
            deadline = graph.effective_deadline(task_name)
            late = floor[task_name] - (est + deadline)
            if late > TIME_EPS:
                misses += 1
                lateness += late
        return misses, lateness

    def _overload_stats(self, arch: Architecture) -> Tuple[int, float]:
        """(overload count, excess) of the full demand floor; memoized
        under the exact (cluster -> PE, PE type) map the floor reads
        (copy counts, context-switch times, and WCETs are fixed for
        the bound's lifetime; the type name determines the rest)."""
        cluster_alloc = arch.cluster_alloc
        key = tuple(sorted(
            (cname, placement[0], arch.pe(placement[0]).pe_type.name)
            for cname, placement in cluster_alloc.items()
        ))
        stats = self._demand_memo.get(key)
        if stats is not None:
            return stats
        overloads = 0
        excess = 0.0
        demand = demand_floor(arch, self.clustering, self.spec, self.assoc)
        capacity = self.assoc.hyperperiod
        threshold = capacity * _OVERLOAD_TOLERANCE * (1.0 + DEMAND_MARGIN)
        for pe_id in sorted(demand):
            if demand[pe_id] > threshold:
                overloads += 1
                excess += demand[pe_id] / capacity - 1.0
        if len(self._demand_memo) >= self._DP_MEMO_MAX:
            self._demand_memo.clear()
        self._demand_memo[key] = (overloads, excess)
        return overloads, excess

    def badness_floor(self, arch: Architecture) -> Tuple[float, float, float]:
        """A valid lower bound of ``EvalResult.badness()`` for any
        full-scope evaluation of ``arch``."""
        overloads, excess = self._overload_stats(arch)

        misses = 0
        lateness = 0.0
        memo = self._dp_memo
        for name in self.spec.graph_names():
            key = (name, self._graph_signature(name, arch))
            stats = memo.get(key)
            if stats is None:
                if len(memo) >= self._DP_MEMO_MAX:
                    memo.clear()
                stats = memo[key] = self._dp_stats(name, arch)
            misses += stats[0]
            lateness += stats[1]
        return (
            misses + overloads,
            (lateness + excess) * _SUM_DEFLATE,
            arch.cost,
        )
