"""Admissible candidate pruning for the synthesis inner loop.

Most allocation candidates never win: they provably miss a deadline
or provably overload a resource, and the scheduler run that proves it
is the inner loop's dominant cost.  This module computes per-candidate
*lower bounds* (via :mod:`repro.sched.bounds`) and discards candidates
the bounds already condemn -- **pure dominance pruning**: a pruned
candidate is one the full evaluation would necessarily have rejected,
so the chosen candidate, the fallback, and the final architecture are
byte-identical to the exhaustive run (property-tested in
``tests/perf/test_prune.py``).

Four bounds are used:

* **Finish-time floor** -- the copy-0 critical path over the
  best-case execution vector plus the PPE mode-switch reboot bound
  (:func:`repro.sched.bounds.deadline_floor_stats`, which runs the
  same DP as a vectorized numpy kernel on large graphs).  Bit-exactly
  dominated by any real schedule, so ``floor - deadline > TIME_EPS``
  proves a deadline miss with no margin at all.
* **Demand floor** -- per-resource busy time over the hyperperiod
  (:func:`repro.sched.bounds.demand_floor`), checked on the
  candidate's target PE and -- by pigeonhole -- on its whole PE
  class: if the class total exceeds the combined capacity, perfect
  balancing still overloads someone.  Summation order differs from
  the evaluator's, so a relative :data:`DEMAND_MARGIN` guards the cut.
* **Link-contention floor** -- per-link busy time from the cluster
  graph's cross-PE payload edges around the target PE, catching the
  span-driven overloads (full-scale NGXM) the exec-time demand floor
  cannot see.
* **Dollar-cost floor** -- an applied candidate's cost is exact, and
  the interface-synthesis surcharge is non-negative, which lets the
  merge loop skip trials that cannot beat the incumbent and lets the
  fallback search skip pruned candidates that cannot beat the
  incumbent least-infeasible choice.

Kill switches: ``CrusadeConfig(prune=False)`` or the
``REPRO_NO_PRUNE=1`` environment variable restore exhaustive
evaluation; ``REPRO_NO_NUMPY=1`` (or an absent numpy) drops the
vectorized DP kernel for the bit-identical pure-python loop.  This
module also hosts the activation predicate for incumbent-driven bound
aborts (``CrusadeConfig(bound_abort=False)`` /
``REPRO_NO_BOUND_ABORT=1``), which mirror the prune switch matrix.
Counter traffic: ``prune.cut`` / ``prune.kept`` plus per-reason
``prune.cut.deadline`` / ``prune.cut.overload`` /
``prune.cut.repair`` / ``prune.cut.merge``, and
``prune.fallback_evals`` / ``prune.fallback_skipped`` for the
deferred least-infeasible reconstruction.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resources.pe import PEKind
from repro.sched.bounds import (
    deadline_floor_stats,
    demand_floor,
    numpy_disabled_by_env,  # noqa: F401  (re-exported kill-switch probe)
)
from repro.sched.finish_time import _OVERLOAD_TOLERANCE

#: Environment kill switch: disable pruning, evaluate every candidate.
KILL_SWITCH_ENV = "REPRO_NO_PRUNE"

#: Environment kill switch: disable incumbent-driven bound aborts.
ABORT_KILL_SWITCH_ENV = "REPRO_NO_BOUND_ABORT"

#: Relative margin applied to demand floors before calling a resource
#: overloaded: the evaluator sums per-task busy times in schedule
#: insertion order, the floor in cluster order, and float addition is
#: not associative.
DEMAND_MARGIN = 1e-6

#: Deflation applied to summed lateness/excess floors (lower-bound
#: components that aggregate many float terms in a different order
#: than the evaluator).
_SUM_DEFLATE = 1.0 - 1e-6


def prune_disabled_by_env() -> bool:
    """True when the environment kill switch is set (non-empty, not 0)."""
    value = os.environ.get(KILL_SWITCH_ENV, "")
    return value not in ("", "0")


def pruning_active(config) -> bool:
    """Whether the driver should prune under ``config``."""
    return bool(getattr(config, "prune", True)) and not prune_disabled_by_env()


def bound_abort_disabled_by_env() -> bool:
    """True when the bound-abort kill switch is set (non-empty, not 0)."""
    value = os.environ.get(ABORT_KILL_SWITCH_ENV, "")
    return value not in ("", "0")


def bound_abort_active(config) -> bool:
    """Whether evaluations should carry incumbent bounds under
    ``config`` (see :class:`repro.sched.scheduler.ScheduleAbort`)."""
    return (
        bool(getattr(config, "bound_abort", True))
        and not bound_abort_disabled_by_env()
    )


class PruneVerdict:
    """Why a candidate was cut, with its admissible badness floor.

    ``floor`` is a valid lexicographic lower bound on the candidate's
    :meth:`~repro.alloc.evaluate.EvalResult.badness` tuple; the
    fallback reconstruction uses it to order and skip pruned
    candidates against the incumbent.
    """

    __slots__ = ("reason", "floor")

    def __init__(self, reason: str, floor: tuple) -> None:
        """Record why a candidate was cut and its badness floor."""
        self.reason = reason
        self.floor = floor


class CandidatePruner:
    """Admissible pruning for one cluster's allocation candidates.

    Built once per cluster iteration (the placements of every *other*
    cluster are fixed for its lifetime); ``bound`` is called with the
    architecture *after* the candidate option was applied and with the
    same ``graphs`` scope the evaluation would use, and memoizes per
    option identity -- the same option re-tried under another link
    strategy lands on the same placement, and link choices affect
    neither bound (communication floors are zero and demand ignores
    links).
    """

    def __init__(
        self,
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        cluster: Cluster,
        boot_time_fn=None,
    ) -> None:
        """Precompute this cluster iteration's bound inputs."""
        self.spec = spec
        self.assoc = assoc
        self.clustering = clustering
        self.cluster = cluster
        self.boot_time_fn = boot_time_fn
        self.graph = spec.graph(cluster.graph)
        self._memo: Dict[tuple, Optional[PruneVerdict]] = {}

    @staticmethod
    def _option_key(option) -> tuple:
        return (
            option.kind,
            option.pe_id,
            option.pe_type_name,
            option.mode_index,
            option.replicate,
        )

    def bound(
        self,
        arch: Architecture,
        option,
        graphs: Optional[List[str]],
        tracer: Tracer = NULL_TRACER,
    ) -> Optional[PruneVerdict]:
        """A :class:`PruneVerdict` when the applied candidate is
        provably infeasible, else None (evaluate it)."""
        key = self._option_key(option)
        if key in self._memo:
            return self._memo[key]
        verdict = self._compute(arch, graphs, tracer)
        self._memo[key] = verdict
        return verdict

    def _compute(
        self, arch: Architecture, graphs: Optional[List[str]], tracer: Tracer
    ) -> Optional[PruneVerdict]:
        if graphs is None:
            scoped_spec, scoped_assoc = self.spec, self.assoc
        else:
            from repro.alloc.evaluate import _scope

            scoped_spec, scoped_assoc = _scope(
                self.spec, self.assoc, graphs, tracer
            )
        pe_id, _ = arch.placement_of(self.cluster.name)
        pe = arch.pe(pe_id)

        overloads = 0
        excess = 0.0
        # Overload floor, restricted to the candidate's target PE and
        # its resource class: the only demands the option increased.
        # (Checking every PE would also be admissible but would
        # condemn *all* candidates whenever an unrelated PE is already
        # overloaded, sending the whole frontier to the fallback
        # reconstruction.)
        if pe.pe_type.kind is not PEKind.ASIC:
            demand_map = demand_floor(
                arch,
                self.clustering,
                scoped_spec,
                scoped_assoc,
                graph_names=scoped_spec.graph_names(),
            )
            demand = demand_map.get(pe_id, 0.0)
            capacity = scoped_assoc.hyperperiod
            threshold = capacity * _OVERLOAD_TOLERANCE * (1.0 + DEMAND_MARGIN)
            if demand > threshold:
                overloads = 1
                excess = (demand / capacity - 1.0) * _SUM_DEFLATE
            else:
                # Class pigeonhole: if the summed demand floor over
                # every instance of the target's PE type exceeds their
                # combined capacity, at least one of them is overloaded
                # in any schedule -- even perfect balancing cannot
                # absorb it -- and the total excess is at least the
                # sum's overshoot.
                type_name = pe.pe_type.name
                total = 0.0
                n_members = 0
                for member in arch.pes.values():
                    if member.pe_type.name == type_name:
                        n_members += 1
                        total += demand_map.get(member.id, 0.0)
                if n_members > 1 and total * _SUM_DEFLATE > threshold * n_members:
                    overloads = 1
                    excess = (total / capacity - n_members) * _SUM_DEFLATE

        misses, lateness = deadline_floor_stats(
            self.graph, arch, self.clustering, self.boot_time_fn
        )

        if not misses and not overloads:
            # Last-resort link-contention floor: span-driven workloads
            # (full-scale NGXM) overload *links*, which the exec-time
            # demand floor above cannot see.
            overloads, excess = self._link_floor(arch, scoped_assoc, pe_id)
            if not overloads:
                return None
        reason = "deadline" if misses else "overload"
        badness_floor = (
            misses + overloads,
            (lateness * _SUM_DEFLATE) + excess,
            arch.cost,
        )
        return PruneVerdict(reason, badness_floor)

    def _graph_edges(self) -> tuple:
        """Static (src, dst, bytes) rows of the cluster's graph with a
        non-zero payload, in deterministic topological/pred order."""
        edges = getattr(self, "_edges", None)
        if edges is None:
            graph = self.graph
            rows = []
            for name in graph.topological_order():
                for pred in graph.predecessors(name):
                    bytes_ = graph.edge(pred, name).bytes_
                    if bytes_:
                        rows.append((pred, name, bytes_))
            edges = self._edges = tuple(rows)
        return edges

    def _link_floor(
        self, arch: Architecture, scoped_assoc, pe_id: str
    ) -> Tuple[int, float]:
        """(overload count, excess floor) from link contention around
        the target PE.

        Every cross-PE edge of the cluster's own graph with payload is
        routed by the scheduler over exactly
        ``arch.find_link_between(pred_pe, succ_pe)`` and occupies it
        for ``link.comm_time(bytes)``, extrapolated per copy -- so
        summing those terms per link (restricted to links touching the
        candidate's target PE, the demands this option changed) is a
        true demand floor; the usual relative margins absorb the
        summation-order float noise.
        """
        clustering = self.clustering
        graph_name = self.graph.name
        copies = scoped_assoc.n_copies(graph_name)
        capacity = scoped_assoc.hyperperiod
        threshold = capacity * _OVERLOAD_TOLERANCE * (1.0 + DEMAND_MARGIN)
        task_to_cluster = clustering.task_to_cluster
        cluster_alloc = arch.cluster_alloc
        routes: Dict[tuple, object] = {}
        demand: Dict[str, float] = {}
        for src, dst, bytes_ in self._graph_edges():
            src_place = cluster_alloc.get(task_to_cluster[(graph_name, src)])
            dst_place = cluster_alloc.get(task_to_cluster[(graph_name, dst)])
            if src_place is None or dst_place is None:
                continue
            src_pe, dst_pe = src_place[0], dst_place[0]
            if src_pe == dst_pe or (src_pe != pe_id and dst_pe != pe_id):
                continue
            pair = (src_pe, dst_pe)
            link = routes.get(pair, routes)
            if link is routes:
                link = routes[pair] = arch.find_link_between(src_pe, dst_pe)
            if link is None:
                continue
            demand[link.id] = demand.get(link.id, 0.0) + (
                link.comm_time(bytes_) * copies
            )
        overloads = 0
        excess = 0.0
        for link_id in sorted(demand):
            load = demand[link_id]
            if load * _SUM_DEFLATE > threshold:
                overloads += 1
                excess += (load / capacity - 1.0) * _SUM_DEFLATE
        return overloads, excess


class RepairBound:
    """Full-scope lexicographic badness floor for repair re-homings.

    Repair keeps a candidate only when it meets every deadline or
    strictly improves the incumbent's badness; a candidate whose floor
    is already >= the incumbent's badness can do neither (its first
    floor component is then necessarily positive, ruling out
    feasibility too), so it is skipped without scheduling.

    Repair moves one cluster at a time, so between two trials the
    deadline DP of almost every graph is computed from identical
    inputs.  The per-graph (misses, lateness) pair is therefore
    memoized under a placement signature capturing exactly what
    :func:`~repro.sched.bounds.finish_time_floor` reads: each
    cluster's hosting PE, its type, and -- for mode-windowed devices
    -- the cluster's permitted mode set with its boot times.  The
    per-graph partial sums are folded in a different float order than
    the single running sum, which the existing :data:`_SUM_DEFLATE`
    margin already covers.
    """

    #: Memo ceiling; repair sweeps revisit a few hundred placement
    #: signatures per graph at most, this is a runaway guard.
    _DP_MEMO_MAX = 8192

    def __init__(
        self,
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        boot_time_fn=None,
    ) -> None:
        """Index clusters per graph and reset the DP/demand memos."""
        from repro.reconfig.reboot import default_boot_time

        self.spec = spec
        self.assoc = assoc
        self.clustering = clustering
        self.boot_time_fn = boot_time_fn
        self._boot_fn = boot_time_fn or default_boot_time
        self._graph_clusters: Dict[str, List[str]] = {}
        for name, cluster in clustering.clusters.items():
            self._graph_clusters.setdefault(cluster.graph, []).append(name)
        for names in self._graph_clusters.values():
            names.sort()
        self._dp_memo: Dict[tuple, Tuple[int, float]] = {}
        self._demand_memo: Dict[tuple, Tuple[int, float]] = {}

    def _graph_signature(self, graph_name: str, arch: Architecture) -> tuple:
        """Everything the deadline DP of ``graph_name`` depends on."""
        cluster_alloc = arch.cluster_alloc
        boot_fn = self._boot_fn
        parts = []
        for cname in self._graph_clusters.get(graph_name, ()):
            placement = cluster_alloc.get(cname)
            if placement is None:
                parts.append(None)
                continue
            pe_id, _ = placement
            pe = arch.pe(pe_id)
            kind = pe.pe_type.kind
            if kind is PEKind.PROCESSOR or kind is PEKind.ASIC:
                parts.append((pe_id, pe.pe_type.name))
            else:
                own = tuple(sorted(pe.modes_of_cluster(cname)))
                parts.append((
                    pe_id,
                    pe.pe_type.name,
                    own,
                    tuple(boot_fn(pe, m) for m in own),
                ))
        return tuple(parts)

    def _dp_stats(self, graph_name: str, arch: Architecture) -> Tuple[int, float]:
        graph = self.spec.graph(graph_name)
        return deadline_floor_stats(
            graph, arch, self.clustering, self.boot_time_fn
        )

    def _overload_stats(self, arch: Architecture) -> Tuple[int, float]:
        """(overload count, excess) of the full demand floor; memoized
        under the exact (cluster -> PE, PE type) map the floor reads
        (copy counts, context-switch times, and WCETs are fixed for
        the bound's lifetime; the type name determines the rest)."""
        cluster_alloc = arch.cluster_alloc
        key = tuple(sorted(
            (cname, placement[0], arch.pe(placement[0]).pe_type.name)
            for cname, placement in cluster_alloc.items()
        ))
        stats = self._demand_memo.get(key)
        if stats is not None:
            return stats
        overloads = 0
        excess = 0.0
        demand = demand_floor(arch, self.clustering, self.spec, self.assoc)
        capacity = self.assoc.hyperperiod
        threshold = capacity * _OVERLOAD_TOLERANCE * (1.0 + DEMAND_MARGIN)
        for pe_id in sorted(demand):
            if demand[pe_id] > threshold:
                overloads += 1
                excess += demand[pe_id] / capacity - 1.0
        if len(self._demand_memo) >= self._DP_MEMO_MAX:
            self._demand_memo.clear()
        self._demand_memo[key] = (overloads, excess)
        return overloads, excess

    def badness_floor(self, arch: Architecture) -> Tuple[float, float, float]:
        """A valid lower bound of ``EvalResult.badness()`` for any
        full-scope evaluation of ``arch``."""
        overloads, excess = self._overload_stats(arch)

        misses = 0
        lateness = 0.0
        memo = self._dp_memo
        for name in self.spec.graph_names():
            key = (name, self._graph_signature(name, arch))
            stats = memo.get(key)
            if stats is None:
                if len(memo) >= self._DP_MEMO_MAX:
                    memo.clear()
                stats = memo[key] = self._dp_stats(name, arch)
            misses += stats[0]
            lateness += stats[1]
        return (
            misses + overloads,
            (lateness + excess) * _SUM_DEFLATE,
            arch.cost,
        )
