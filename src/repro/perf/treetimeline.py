"""Blocked-index timelines for long, fragmented schedules.

:class:`repro.perf.fasttimeline.FastTimeline` bisects its hot queries
but still stores intervals in flat Python lists, so every ``occupy``
pays an O(n) ``list.insert`` memmove across three parallel arrays.
At the scales the paper's largest telecom examples produce (NGXM at
full scale schedules 7416 tasks; per-resource timelines grow into the
thousands of intervals, rebuilt across millions of candidate
evaluations) those memmoves turn the build-up of each timeline
quadratic.

:class:`TreeTimeline` replaces the flat arrays with a **blocked
index** -- the shallow-B-tree layout sorted-container libraries use: a
list of bounded-size blocks, each holding intervals plus parallel
start/end key arrays, under two top-level arrays of per-block maximum
keys.  Every query double-bisects (block, then offset) in O(log n)
and every insert memmoves at most one block, while in-order walks
chain blocks with zero per-item overhead.  On scheduler-shaped
operation streams the measured crossover against the flat lists sits
near 1000 intervals (1.2x at 4000, 1.5x at 8000, 2.2x at 16000).

Short timelines must pay **nothing**, so the conversion is a class
swap rather than a per-call mode check: a :class:`TreeTimeline`
starts as a :class:`FastTimeline` whose only override is ``occupy``
(the flat fast body plus a length check), and crossing
:attr:`~TreeTimeline.convert_at` intervals rebinds ``__class__`` to
the blocked implementation, whose methods are direct -- no
flat-or-blocked branching on either side of the threshold.

Byte-identity is preserved by construction: below the threshold the
timeline *is* the flat implementation, and every blocked algorithm
performs the *same float comparisons in the same order* as its flat
counterpart (which the equivalence suite already pins to the naive
linear semantics).  The degraded-mode escape hatch survives the
conversion: an epsilon-sliver insert that breaks the end-sorted
invariant flattens the blocks back and flips the timeline into
:class:`FastTimeline`'s degraded linear mode.  The differential
oracle (``tests/sched/oracle.py``) replays randomized, adversarial
and trace-recorded operation streams against all implementations
simultaneously to enforce exactly this.

:class:`TreePpeModeTimeline` is the tree-mode companion for
programmable devices.  Measurement drives its shape: mode-window
lists stay two orders of magnitude shorter than interval timelines
(64 windows max across 1.4 million placements at NGXM@0.1, because
same-mode tasks join existing windows instead of inserting), so it
keeps :class:`~repro.perf.fasttimeline.FastPpeModeTimeline`'s
bisected flat layout -- a blocked index would tax every placement and
recoup nothing.  The class exists so the ``timeline="tree"``
configuration swaps a coherent factory pair and so a future
fragmented-window workload has one obvious place to grow a blocked
window store.

Selection is owned by :func:`resolve_timeline`:
``CrusadeConfig.timeline`` picks ``"list"`` (flat fast timelines),
``"tree"`` (blocked from the first interval), or ``"auto"`` (blocked
past :data:`DEFAULT_CONVERT_AT`); the ``REPRO_TIMELINE`` environment
variable overrides the config as a kill switch.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.errors import SchedulingError
from repro.sched.timeline import BusyInterval
from repro.perf.fasttimeline import FastPpeModeTimeline, FastTimeline
from repro.units import TIME_EPS

#: Environment kill switch / override: ``list``, ``tree`` or ``auto``.
TIMELINE_ENV = "REPRO_TIMELINE"

#: Interval count past which an ``"auto"`` timeline converts to the
#: blocked index.  Below this the flat memmove (a C memcpy of a few
#: KB) is cheaper than block bookkeeping; the measured crossover on
#: scheduler-shaped op streams sits near 1000 intervals, with the
#: blocked index pulling clearly ahead past ~2000 (1.5x at 8000).
DEFAULT_CONVERT_AT = 1024

#: Target block size after a split; blocks split at twice this.
_LOAD = 128


class TreeTimeline(FastTimeline):
    """Length-switched :class:`~repro.sched.timeline.Timeline`.

    Starts life as a :class:`FastTimeline` -- every method except
    ``occupy`` is the inherited flat implementation, untouched -- and
    converts to the blocked index (:class:`_BlockedTimeline`, via a
    ``__class__`` swap) when the interval count crosses
    ``convert_at``; 0 means blocked from the first interval, as the
    ``"tree"`` configuration requests.  All placements are bit-for-bit
    the flat implementation's; see the module docstring.
    """

    def __init__(self, convert_at: Optional[int] = None) -> None:
        """Empty timeline converting to blocks at ``convert_at``
        intervals (default :data:`DEFAULT_CONVERT_AT`)."""
        super().__init__()
        self.convert_at = (
            DEFAULT_CONVERT_AT if convert_at is None else convert_at
        )
        #: Blocked-index state, unused until conversion: parallel
        #: per-block arrays (intervals / start keys / end keys), the
        #: per-block last-key arrays the top-level bisects run on, and
        #: the interval count.
        self._n = 0
        self._bivs: List[List[BusyInterval]] = []
        self._bsts: List[List[float]] = []
        self._bens: List[List[float]] = []
        self._last_start: List[float] = []
        self._last_end: List[float] = []

    # ------------------------------------------------------------------
    def _convert(self) -> None:
        """Chunk the flat arrays into blocks and swap to the blocked
        class (requires the end-sorted invariant, i.e. not degraded)."""
        ivs, sts, ens = self._intervals, self._starts, self._ends
        self._n = len(ivs)
        self._bivs = [ivs[i:i + _LOAD] for i in range(0, len(ivs), _LOAD)] or [[]]
        self._bsts = [sts[i:i + _LOAD] for i in range(0, len(sts), _LOAD)] or [[]]
        self._bens = [ens[i:i + _LOAD] for i in range(0, len(ens), _LOAD)] or [[]]
        self._last_start = [b[-1] if b else float("-inf") for b in self._bsts]
        self._last_end = [b[-1] if b else float("-inf") for b in self._bens]
        self._intervals = []
        self._starts = []
        self._ends = []
        self.__class__ = _BlockedTimeline

    # ------------------------------------------------------------------
    def occupy(
        self, start: float, duration: float, owner: tuple
    ) -> Tuple[float, float]:
        """Flat-phase insert -- :class:`FastTimeline`'s exact body --
        converting to the blocked index past ``convert_at``."""
        if self._degraded:
            return super().occupy(start, duration, owner)
        result = super().occupy(start, duration, owner)
        if not self._degraded and len(self._intervals) >= self.convert_at:
            self._convert()
        return result

    def preempt_split(
        self,
        victim: BusyInterval,
        preempt_at: float,
        inserted_duration: float,
        overhead: float,
        new_owner: tuple,
    ) -> Tuple[Tuple[float, float], float]:
        """Preempt ``victim`` (cold path): the flat implementation,
        plus the conversion check."""
        result = super().preempt_split(
            victim, preempt_at, inserted_duration, overhead, new_owner
        )
        if not self._degraded and len(self._intervals) >= self.convert_at:
            self._convert()
        return result


class _BlockedTimeline(TreeTimeline):
    """The blocked phase of a :class:`TreeTimeline`.

    Never constructed directly -- instances *become* this class when
    :meth:`TreeTimeline._convert` rebinds ``__class__``, and revert to
    :class:`TreeTimeline` when :meth:`_flatten` does (degradation and
    the rare preemption rebuild).  Blocked instances are never
    degraded: every invariant-breaking mutation flattens first, so the
    methods here branch on nothing.
    """

    # -- representation management -------------------------------------
    def _flatten(self) -> None:
        """Rebuild the flat arrays from the blocks and swap back to
        the flat class."""
        self._intervals = [iv for block in self._bivs for iv in block]
        self._starts = [s for block in self._bsts for s in block]
        self._ends = [e for block in self._bens for e in block]
        self._bivs = []
        self._bsts = []
        self._bens = []
        self._last_start = []
        self._last_end = []
        self._n = 0
        self.__class__ = TreeTimeline

    def _split_block(self, b: int) -> None:
        half = len(self._bivs[b]) // 2
        self._bivs.insert(b + 1, self._bivs[b][half:])
        self._bsts.insert(b + 1, self._bsts[b][half:])
        self._bens.insert(b + 1, self._bens[b][half:])
        del self._bivs[b][half:]
        del self._bsts[b][half:]
        del self._bens[b][half:]
        # The old block's last keys already sit at position b -- they
        # now describe the new block b+1 (the old tail); insert the
        # shrunken block b's keys before them.
        self._last_start.insert(b, self._bsts[b][-1])
        self._last_end.insert(b, self._bens[b][-1])

    # -- read side ------------------------------------------------------
    def __len__(self) -> int:
        """Number of busy intervals."""
        return self._n

    @property
    def intervals(self) -> List[BusyInterval]:
        """Busy intervals in time order (materialized; do not mutate)."""
        return [iv for block in self._bivs for iv in block]

    def busy_time(self) -> float:
        """Total occupied time (the flat walk's summation order)."""
        return sum(iv.end - iv.start for block in self._bivs for iv in block)

    def span(self) -> Tuple[float, float]:
        """(first start, last end), or (0, 0) when empty."""
        if not self._n:
            return (0.0, 0.0)
        return (self._bivs[0][0].start, max(self._last_end))

    def running_at(self, when: float) -> Optional[BusyInterval]:
        """The interval covering ``when``, if any (linear semantics)."""
        for block in self._bivs:
            for interval in block:
                if interval.start <= when + TIME_EPS and when < interval.end - TIME_EPS:
                    return interval
                if interval.start > when:
                    return None
        return None

    def free_until_after(self, when: float) -> float:
        """First moment at or after ``when`` with nothing running."""
        moment = when
        for block in self._bivs:
            for interval in block:
                if interval.end <= moment + TIME_EPS:
                    continue
                if moment < interval.start - TIME_EPS:
                    return moment
                moment = interval.end
        return moment

    # -- hot path ------------------------------------------------------
    def earliest_fit(self, ready: float, duration: float) -> float:
        """Earliest start >= ``ready`` with ``duration`` free; double
        bisect past every interval ending at or before ``ready``."""
        if duration < 0:
            raise SchedulingError("duration must be non-negative")
        candidate = ready
        key = candidate + TIME_EPS
        bivs = self._bivs
        bens = self._bens
        b0 = bisect_right(self._last_end, key)
        for b in range(b0, len(bivs)):
            ends = bens[b]
            items = bivs[b]
            for i in range(bisect_right(ends, key) if b == b0 else 0,
                           len(items)):
                end = ends[i]
                if end <= candidate + TIME_EPS:  # time_leq(end, candidate)
                    continue
                start = items[i].start
                # time_leq(candidate + duration, start)
                if candidate + duration <= start + TIME_EPS:
                    return candidate
                if end > candidate:
                    candidate = end
        return candidate

    def occupy(
        self, start: float, duration: float, owner: tuple
    ) -> Tuple[float, float]:
        """Insert a busy interval into its block (memmove bounded by
        the block size), keeping every index array sorted."""
        end = start + duration
        last_start = self._last_start
        bsts = self._bsts
        bens = self._bens
        bivs = self._bivs
        nb = len(bivs)
        # Global bisect_right on starts, as (block, offset): all
        # blocks whose last start is <= start precede the insertion.
        b = bisect_right(last_start, start)
        if b == nb:
            b = nb - 1
            i = len(bsts[b])
        else:
            i = bisect_right(bsts[b], start)
        # Collision window, exactly as the flat fast path: any
        # collider has other.end > start and other.start < end, so it
        # lies in [bisect_right(ends, start), bisect_left(starts, end))
        # -- walked here in (block, offset) form, in index order, so
        # the first collider raises the linear scan's exact error.
        cb = bisect_right(self._last_end, start)
        ci = bisect_right(bens[cb], start) if cb < nb else 0
        while cb < nb:
            block = bivs[cb]
            if ci >= len(block):
                cb += 1
                ci = 0
                continue
            other = block[ci]
            if other.start >= end:  # reached bisect_left(starts, end)
                break
            # time_lt(start, other.end) and time_lt(other.start, end)
            if start < other.end - TIME_EPS and other.start < end - TIME_EPS:
                raise SchedulingError(
                    "overlap: [%g, %g) collides with [%g, %g) owned by %r"
                    % (start, end, other.start, other.end, other.owner)
                )
            ci += 1
        # End-order (degradation) check against the global neighbors,
        # same comparisons as the flat inlined insert.
        prev_end = None
        if i > 0:
            prev_end = bens[b][i - 1]
        elif b > 0:
            prev_end = self._last_end[b - 1]
        next_end = None
        if i < len(bens[b]):
            next_end = bens[b][i]
        elif b + 1 < nb:
            next_end = bens[b + 1][0]
        if (prev_end is not None and prev_end > end) or (
            next_end is not None and end > next_end
        ):
            # Epsilon-sliver placement broke the end order: flatten,
            # degrade to the linear algorithms, and insert at the same
            # global position the flat path would have used.
            self._flatten()
            self._degraded = True
            index = bisect_right(self._starts, start)
            self._intervals.insert(
                index, BusyInterval(start=start, end=end, owner=owner)
            )
            self._starts.insert(index, start)
            self._ends.insert(index, end)
            return start, end
        bivs[b].insert(i, BusyInterval(start=start, end=end, owner=owner))
        bsts[b].insert(i, start)
        bens[b].insert(i, end)
        self._n += 1
        if i == len(bsts[b]) - 1:
            last_start[b] = start
            self._last_end[b] = end
        if len(bivs[b]) >= 2 * _LOAD:
            self._split_block(b)
        return start, end

    def split_fit(
        self,
        ready: float,
        duration: float,
        overhead: float,
        max_segments: int = 4,
    ) -> Optional[List[Tuple[float, float]]]:
        """Fit ``duration`` across free gaps (restricted preemption);
        the flat walk re-expressed over a (block, offset) cursor."""
        if duration < 0 or overhead < 0:
            raise SchedulingError("durations must be non-negative")
        segments: List[Tuple[float, float]] = []
        remaining = duration
        cursor = ready
        bivs = self._bivs
        bens = self._bens
        nb = len(bivs)
        key = ready + TIME_EPS
        b = bisect_right(self._last_end, key)
        i = bisect_right(bens[b], key) if b < nb else 0
        while remaining > TIME_EPS and len(segments) < max_segments:
            # Advance past busy intervals ending at or before cursor.
            while b < nb:
                if i >= len(bivs[b]):
                    b += 1
                    i = 0
                    continue
                if bens[b][i] <= cursor + TIME_EPS:
                    i += 1
                    continue
                break
            current = bivs[b][i] if b < nb else None
            if current is not None and current.start <= cursor + TIME_EPS:
                cursor = current.end
                continue
            gap_end = current.start if current is not None else float("inf")
            cost = remaining + (overhead if segments else 0.0)
            available = gap_end - cursor
            if cost <= available + TIME_EPS:  # time_leq(cost, available)
                segments.append((cursor, cursor + cost))
                remaining = 0.0
                break
            useful = available - (overhead if segments else 0.0)
            if useful > TIME_EPS:
                segments.append((cursor, gap_end))
                remaining -= useful
            cursor = gap_end
        if remaining > TIME_EPS:
            return None
        return segments

    def preempt_split(
        self,
        victim: BusyInterval,
        preempt_at: float,
        inserted_duration: float,
        overhead: float,
        new_owner: tuple,
    ) -> Tuple[Tuple[float, float], float]:
        """Preempt ``victim`` (cold path): flatten, delegate to the
        exact flat implementation, re-block if still warranted."""
        self._flatten()
        return self.preempt_split(
            victim, preempt_at, inserted_duration, overhead, new_owner
        )


class TreePpeModeTimeline(FastPpeModeTimeline):
    """Tree-mode companion for programmable devices.

    Deliberately inherits the bisected flat-window implementation:
    mode-window lists stay short even at full scale (same-mode tasks
    *join* windows instead of inserting -- 64 windows max across 1.4
    million placements at NGXM@0.1), so the flat memmove never
    dominates and a blocked index would tax every placement for
    nothing.  See the module docstring for the measurement, and grow a
    blocked window store here if a workload ever fragments windows.
    """


def _tree_eager() -> TreeTimeline:
    """Factory: a :class:`TreeTimeline` blocked from the first
    interval (the ``"tree"`` configuration; module-level so factories
    stay picklable for the process-pool workers)."""
    return TreeTimeline(convert_at=0)


#: mode name -> (serial timeline factory, PPE timeline factory).
_FACTORIES = {
    "list": (FastTimeline, FastPpeModeTimeline),
    "tree": (_tree_eager, TreePpeModeTimeline),
    "auto": (TreeTimeline, TreePpeModeTimeline),
}

#: Recognized ``CrusadeConfig.timeline`` / ``REPRO_TIMELINE`` values.
TIMELINE_MODES = tuple(sorted(_FACTORIES))


def timeline_mode_from_env() -> Optional[str]:
    """The ``REPRO_TIMELINE`` override, or None when unset/unknown.

    Unknown values are ignored rather than fatal: the variable is an
    operational kill switch and a typo must not take synthesis down.
    """
    value = os.environ.get(TIMELINE_ENV, "").strip().lower()
    return value if value in _FACTORIES else None


def resolve_timeline(mode: str) -> Tuple[type, type]:
    """(serial factory, PPE factory) for a timeline ``mode``.

    ``REPRO_TIMELINE`` overrides ``mode`` when set to a recognized
    value, mirroring the other perf kill switches.  Unknown modes
    raise :class:`~repro.errors.SchedulingError`.
    """
    override = timeline_mode_from_env()
    if override is not None:
        mode = override
    try:
        return _FACTORIES[mode]
    except KeyError:
        raise SchedulingError(
            "unknown timeline mode %r (expected one of %s)"
            % (mode, ", ".join(TIMELINE_MODES))
        ) from None
