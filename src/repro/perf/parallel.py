"""Thread-safety shims for tracers shared across worker threads.

The wave-based *thread* scorer that used to live here is gone: the
GIL serialized its evaluations, so it parallelized bookkeeping only.
True multi-core candidate scoring now lives in
:mod:`repro.perf.procpool` (worker *processes* with warm per-worker
engine caches).  What remains is :class:`LockedTracer`, a lock-guarded
view of a tracer for any code that still fans work out across threads.
"""

from __future__ import annotations

import threading

from repro.obs.trace import Tracer


class LockedTracer(Tracer):
    """Serializes a tracer's mutation points for worker threads.

    Counter increments and event emission are read-modify-write on
    shared dicts/lists; a single lock keeps them exact under
    multi-threaded callers.  Phase timers are only driven from the
    main thread and stay unwrapped.
    """

    def __init__(self, inner: Tracer) -> None:
        """Wrap ``inner``, sharing its counters and timers."""
        self._inner = inner
        self._lock = threading.Lock()
        self.enabled = inner.enabled
        self.counters = inner.counters
        self.timers = inner.timers

    def event(self, name: str, **fields) -> None:
        """Emit an event under the lock."""
        with self._lock:
            self._inner.event(name, **fields)

    def incr(self, name: str, n: int = 1) -> None:
        """Increment a counter under the lock."""
        with self._lock:
            self._inner.incr(name, n)

    def phase(self, name: str):
        """Delegate phase timing to the wrapped tracer (main thread
        only)."""
        return self._inner.phase(name)

    def stats(self, total_seconds=None):
        """Snapshot the wrapped tracer's aggregates."""
        return self._inner.stats(total_seconds=total_seconds)

    def close(self) -> None:
        """Close the wrapped tracer's sinks."""
        self._inner.close()


def wrap_tracer(tracer: Tracer) -> Tracer:
    """A thread-safe view of ``tracer`` (the null tracer needs none)."""
    if not tracer.enabled:
        return tracer
    return LockedTracer(tracer)
