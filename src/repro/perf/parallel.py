"""Opt-in parallel candidate scoring for the allocation inner loop.

``CrusadeConfig.parallel_eval = N`` evaluates allocation-array options
in waves of N worker threads.  Selection is deterministic and
byte-identical to the serial loop: results are consumed strictly in
option-index order, the first feasible option wins, and the fallback
(least-infeasible) choice uses the same strict-improvement rule, so a
later-indexed option can never displace an earlier equal one.

Decision counters (``alloc.options.considered`` / ``apply_failed`` /
``infeasible``) are incremented on the calling thread while consuming
results in index order, so they match the serial run exactly.  The
*evaluation* counters (``alloc.evaluations``, ``sched.runs``,
``perf.schedule.*``) are incremented by the workers and may exceed the
serial counts: a wave is always evaluated in full even when an early
option in it turns out feasible.  The overshoot is deterministic (wave
boundaries depend only on the option list and N).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple

from repro.obs.trace import Tracer


class LockedTracer(Tracer):
    """Serializes a tracer's mutation points for worker threads.

    Counter increments and event emission are read-modify-write on
    shared dicts/lists; a single lock keeps them exact under the
    parallel scorer.  Phase timers are only driven from the main
    thread and stay unwrapped.
    """

    def __init__(self, inner: Tracer) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.enabled = inner.enabled
        self.counters = inner.counters
        self.timers = inner.timers

    def event(self, name: str, **fields) -> None:
        with self._lock:
            self._inner.event(name, **fields)

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._inner.incr(name, n)

    def phase(self, name: str):
        return self._inner.phase(name)

    def stats(self, total_seconds=None):
        return self._inner.stats(total_seconds=total_seconds)

    def close(self) -> None:
        self._inner.close()


def wrap_tracer(tracer: Tracer) -> Tracer:
    """A thread-safe view of ``tracer`` (the null tracer needs none)."""
    if not tracer.enabled:
        return tracer
    return LockedTracer(tracer)


class ParallelScorer:
    """Wave-based scorer over one cluster's allocation options."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("parallel_eval workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-eval"
        )

    def score(
        self,
        options: List,
        evaluate_one: Callable,
        tracer: Tracer,
    ) -> Tuple[Optional[object], Optional[object]]:
        """Evaluate options in waves; return ``(chosen, fallback)``.

        ``evaluate_one(option)`` runs on a worker thread and returns an
        :class:`~repro.alloc.evaluate.EvalResult` or None when the
        option failed to apply.  ``chosen`` is the first feasible
        verdict by option index (None when none is feasible);
        ``fallback`` is the least-infeasible verdict seen before the
        chosen one, matching the serial loop's bookkeeping.
        """
        chosen = None
        fallback = None
        for wave_start in range(0, len(options), self.workers):
            wave = options[wave_start:wave_start + self.workers]
            futures = [self._pool.submit(evaluate_one, option) for option in wave]
            for future in futures:
                verdict = future.result()
                if chosen is not None:
                    continue  # drain the wave; selection already made
                tracer.incr("alloc.options.considered")
                if verdict is None:
                    tracer.incr("alloc.options.apply_failed")
                    continue
                if verdict.feasible:
                    chosen = verdict
                    continue
                tracer.incr("alloc.options.infeasible")
                if fallback is None or verdict.badness() < fallback.badness():
                    fallback = verdict
            if chosen is not None:
                break
        return chosen, fallback

    def close(self) -> None:
        self._pool.shutdown(wait=True)
