"""Planned scheduling: the engine-side fast path of the list scheduler.

Every candidate evaluation re-runs the list scheduler, and the legacy
:func:`repro.sched.scheduler.build_schedule` re-derives from the
specification -- on every one of thousands of runs -- structures that
never change across a synthesis: the explicit task instances and their
arrival times, the per-instance predecessor/successor keys with edge
payloads, each task's cluster, and the initial in-degrees.  It also
re-resolves PE-to-PE routes (``Architecture.find_link_between`` sorts
the link list per call) and link transfer times that are pure
functions of (link type, payload).

:class:`SchedulerContext` -- owned by the
:class:`repro.perf.engine.IncrementalEngine` and threaded into
:class:`~repro.sched.scheduler.ScheduleRequest` -- caches all of the
above across runs:

* a **plan** per (spec, association, clustering, graph filter): the
  instance records, seed order, and in-degree template;
* a **route cache** per architecture, invalidated exactly by
  ``Architecture.topo_version`` (bumped on every link attach/detach/
  create/delete, including copy-on-write reverts);
* **transfer-time memos** for ``LinkType.comm_time`` and the
  best-case estimator used for virtually placed endpoints;
* the :class:`repro.perf.fasttimeline.FastTimeline` factory for
  processor and link timelines.

:func:`build_schedule_planned` is a transcription of the legacy
scheduling loop over those cached structures.  Every decision input --
heap keys, iteration orders, epsilon comparisons, tie-breaks -- is
preserved, so the resulting schedule is byte-identical; the
equivalence suite (tests/perf) pins this down against the legacy
path.  The kill switches disable the engine and with it this path.
"""

from __future__ import annotations

import heapq
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import AllocationError, SchedulingError
from repro.reconfig.reboot import default_boot_time
from repro.resources.pe import PEKind
from repro.perf.fasttimeline import FastPpeModeTimeline, FastTimeline
from repro.perf.treetimeline import resolve_timeline
from repro.sched import tlrecord
from repro.sched.finish_time import _OVERLOAD_TOLERANCE
from repro.units import TIME_EPS

#: Plans are tiny next to schedule fragments, but the scoped sub-spec
#: cache they key off is itself LRU-bounded -- keep a little headroom.
PLAN_CACHE_MAX_ENTRIES = 128


class _Plan:
    """Spec-derived constants for one (spec, assoc, filter) triple."""

    __slots__ = (
        "records", "roots", "indegree", "total", "keepalive", "wcet",
        "deadline_rows", "ncopies", "_deadline_by_key",
    )

    def __init__(
        self, records, roots, indegree, total, keepalive,
        deadline_rows, ncopies,
    ):
        """Freeze one (spec, assoc, filter) triple's plan tables."""
        #: key -> (arrival, preds, succs, task, cluster_name); preds
        #: are (pred_key, bytes, edge_key) in ``graph.predecessors``
        #: order, succs are (succ_key, succ_name) in
        #: ``graph.successors`` order.
        self.records = records
        #: zero-in-degree keys in legacy heap-seeding order.
        self.roots = roots
        #: in-degree template, copied at the start of every run.
        self.indegree = indegree
        self.total = total
        #: strong refs pinning the id()-keyed cache inputs alive.
        self.keepalive = keepalive
        #: (task object id, PE type name) -> worst-case execution
        #: time.  Static per plan (execution times never change, and
        #: ``keepalive`` pins the spec's task objects), and most
        #: placements are stable across the runs sharing a plan.
        self.wcet: Dict[tuple, float] = {}
        #: graph name -> ((instance key, absolute deadline), ...) in
        #: the exact insertion order of
        #: :func:`repro.sched.finish_time.deadline_lateness`
        #: (explicit copy major, deadline task minor); the absolute
        #: deadline is the same ``arrival + relative`` float.
        self.deadline_rows = deadline_rows
        #: graph name -> association copy count (demand multiplier).
        self.ncopies = ncopies
        #: lazy flat view of ``deadline_rows`` for the bound-abort
        #: deadline check (key -> absolute deadline).
        self._deadline_by_key = None

    def deadline_map(self) -> dict:
        """Instance key -> absolute deadline, flattened lazily from
        ``deadline_rows`` (same floats, so the inline deadline check
        matches the post-pass lateness exactly)."""
        flat = self._deadline_by_key
        if flat is None:
            flat = {}
            for rows in self.deadline_rows.values():
                for row_key, absolute in rows:
                    flat[row_key] = absolute
            self._deadline_by_key = flat
        return flat


def _build_plan(request) -> _Plan:
    spec = request.spec
    clustering = request.clustering
    records: Dict[tuple, tuple] = {}
    roots: List[tuple] = []
    indegree: Dict[tuple, int] = {}
    for instance in request.assoc.iter_explicit():
        if request.graphs is not None and instance.graph not in request.graphs:
            continue
        graph = spec.graph(instance.graph)
        for task_name in graph.topological_order():
            key = (instance.graph, instance.copy, task_name)
            preds = []
            for pred_name in graph.predecessors(task_name):
                edge = graph.edge(pred_name, task_name)
                preds.append((
                    (instance.graph, instance.copy, pred_name),
                    edge.bytes_,
                    (instance.graph, instance.copy, pred_name, task_name),
                ))
            succs = tuple(
                ((instance.graph, instance.copy, succ_name), succ_name)
                for succ_name in graph.successors(task_name)
            )
            cluster = clustering.cluster_of(instance.graph, task_name)
            records[key] = (
                instance.arrival,
                tuple(preds),
                succs,
                graph.task(task_name),
                cluster.name,
            )
            indegree[key] = len(preds)
            if not preds:
                roots.append(key)
    deadline_rows: Dict[str, tuple] = {}
    ncopies: Dict[str, int] = {}
    for name in spec.graph_names():
        if request.graphs is not None and name not in request.graphs:
            continue
        graph = spec.graph(name)
        deadline_tasks = [
            (t, graph.effective_deadline(t)) for t in graph.deadline_tasks()
        ]
        rows = []
        for instance in request.assoc.explicit_copies(name):
            arrival = instance.arrival
            for task_name, rel_deadline in deadline_tasks:
                rows.append((
                    (name, instance.copy, task_name),
                    arrival + rel_deadline,
                ))
        deadline_rows[name] = tuple(rows)
        ncopies[name] = request.assoc.n_copies(name)
    return _Plan(
        records, roots, indegree, len(records),
        (spec, request.assoc, clustering),
        deadline_rows, ncopies,
    )


class SchedulerContext:
    """Cross-run scheduler caches owned by one incremental engine.

    ``timeline`` selects the timeline implementation pair for every
    schedule this context builds -- ``"list"`` (bisected flat lists),
    ``"tree"`` (blocked index from the first interval) or ``"auto"``
    (blocked past a length threshold); see
    :func:`repro.perf.treetimeline.resolve_timeline` for the rules and
    the ``REPRO_TIMELINE`` override.
    """

    timeline_cls = FastTimeline
    ppe_timeline_cls = FastPpeModeTimeline

    def __init__(self, timeline: str = "auto") -> None:
        """Create empty plan/route/transfer-time caches building
        ``timeline``-mode timelines."""
        self.timeline_mode = timeline
        self.timeline_cls, self.ppe_timeline_cls = resolve_timeline(timeline)
        self.recorder = None
        record_to = tlrecord.trace_path()
        if record_to is not None:
            # REPRO_TIMELINE_TRACE: wrap both factories so every
            # timeline this context builds appends its operation
            # stream (replayed by the differential oracle).
            self.recorder = tlrecord.TimelineRecorder(record_to)
            self.timeline_cls = self.recorder.wrap_serial(self.timeline_cls)
            self.ppe_timeline_cls = self.recorder.wrap_ppe(
                self.ppe_timeline_cls
            )
        self._plans: "OrderedDict[tuple, _Plan]" = OrderedDict()
        self._lock = threading.Lock()
        #: Architecture -> [topo_version, {(pe_a, pe_b): link | None}].
        self._routes: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._library = None
        self._comm: Dict[Tuple[str, int], float] = {}
        self._best_comm: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def plan_for(self, request) -> _Plan:
        """The cached (or freshly built) plan for a request's
        (spec, assoc, clustering, graphs) identity."""
        key = (
            id(request.spec), id(request.assoc), id(request.clustering),
            request.graphs,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
        if plan is not None:
            request.tracer.incr("perf.plan.hits")
            return plan
        request.tracer.incr("perf.plan.misses")
        plan = _build_plan(request)
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > PLAN_CACHE_MAX_ENTRIES:
                self._plans.popitem(last=False)
        return plan

    # ------------------------------------------------------------------
    def route_table(self, arch) -> dict:
        """The (pe_a, pe_b) -> link memo for ``arch``'s *current* link
        topology, invalidated by ``Architecture.topo_version``.  The
        scheduler never mutates the architecture, so one lookup per run
        suffices -- callers index the returned dict directly."""
        entry = self._routes.get(arch)
        if entry is None or entry[0] != arch.topo_version:
            entry = [arch.topo_version, {}]
            with self._lock:
                self._routes[arch] = entry
        return entry[1]

    def route(self, arch, pe_a: str, pe_b: str):
        """Memoized ``arch.find_link_between``: exact while the
        architecture's link topology is unchanged."""
        cache = self.route_table(arch)
        key = (pe_a, pe_b)
        try:
            return cache[key]
        except KeyError:
            link = arch.find_link_between(pe_a, pe_b)
            cache[key] = link
            return link

    # ------------------------------------------------------------------
    def _sync_library(self, library) -> None:
        if library is not self._library:
            self._library = library
            self._comm = {}
            self._best_comm = {}

    def comm_time(self, link, bytes_: int) -> float:
        """Memoized transfer time of ``bytes_`` over ``link``."""
        # The instance transfer time depends on the *current* port
        # count (the paper's recomputed communication vectors).
        key = (link.link_type.name, max(2, link.ports_used), bytes_)
        try:
            return self._comm[key]
        except KeyError:
            value = link.comm_time(bytes_)
            self._comm[key] = value
            return value

    def best_comm(self, library, bytes_: int) -> float:
        """Best-case transfer estimate (legacy ``_best_case_comm``)."""
        self._sync_library(library)
        try:
            return self._best_comm[bytes_]
        except KeyError:
            links = library.links_by_cost()
            if bytes_ == 0 or not links:
                value = 0.0
            else:
                value = min(l.comm_time(bytes_) for l in links)
            self._best_comm[bytes_] = value
            return value


def build_schedule_planned(request, context: SchedulerContext):
    """The legacy scheduling loop over the context's cached plan.

    Imports from :mod:`repro.sched.scheduler` are deferred: that module
    dispatches here when a request carries a context.
    """
    from repro.sched.scheduler import (
        Schedule,
        ScheduleAbort,
        ScheduledEdge,
        ScheduledTask,
        _place_on_processor,
    )

    schedule = Schedule()
    arch = request.arch
    priorities = request.priorities
    boot_time_fn = request.boot_time_fn or default_boot_time
    tracer = request.tracer
    tracer.incr("sched.runs")
    context._sync_library(arch.library)
    timeline_cls = context.timeline_cls
    ppe_timeline_cls = context.ppe_timeline_cls
    # The architecture is frozen for the duration of one scheduler run,
    # so per-arch/per-run lookups hoist out of the task loop entirely:
    # the route memo for the current topology, the transfer-time memo,
    # and per-run memos for the PPE placement inputs (a device's modes
    # carrying a cluster, and boot times, are pure functions of the
    # frozen architecture -- the fingerprint layer already relies on
    # boot_time_fn purity).
    route_table = context.route_table(arch)
    comm_cache = context._comm
    #: (pe id, cluster) -> ({mode: boot}, sorted items) for PPE hosts.
    allowed_memo: Dict[tuple, tuple] = {}
    boot_memo: Dict[tuple, float] = {}

    plan = context.plan_for(request)
    records = plan.records
    wcet_memo = plan.wcet
    ncopies = plan.ncopies
    # Bounded-search bookkeeping: the inline demand map below is
    # already bit-identical to the post-pass recomputation, so the
    # abort trigger (violations > bound[0]) only needs the crossing
    # checks and the plan's absolute deadlines (see
    # :class:`repro.sched.scheduler.ScheduleAbort`).
    bound = request.bound
    if bound is not None:
        bound_limit = bound[0]
        violations = request.bound_base
        capacity = request.assoc.hyperperiod
        crossed: set = set()
        deadline_by_key = plan.deadline_map()
    indegree = dict(plan.indegree)
    heap: List[Tuple[float, float, tuple]] = []
    for key in plan.roots:
        record = records[key]
        heapq.heappush(heap, (-priorities[key[0]][key[2]], record[0], key))

    cluster_alloc = arch.cluster_alloc
    pes = arch.pes
    library = arch.library
    tasks = schedule.tasks
    edges = schedule.edges
    scheduled_count = 0
    # Per-run decision counters, flushed in one batch after the loop
    # (identical totals, a fraction of the Tracer.incr call volume).
    n_virtual = 0
    n_real = 0
    split_counts = [0, 0]
    # Copy-0 hyperperiod demand, accumulated inline.  Per-resource
    # accumulation order equals the post-pass
    # :func:`repro.sched.finish_time.resource_demand` order (schedule
    # insertion order; processor/PPE buckets touched only from task
    # placements, link buckets only from edge placements), so the
    # float sums are bit-identical; consumers sort the keys.
    demand: Dict[str, float] = {}
    while heap:
        _, _, key = heapq.heappop(heap)
        graph_name, _, task_name = key
        arrival, preds, succs, task, cluster_name = records[key]
        placement = cluster_alloc.get(cluster_name)
        if placement is None:
            pe, mode, pe_id = None, -1, None
        else:
            pe_id, mode = placement
            pe = pes[pe_id]

        # 1. Schedule incoming edges; compute data-ready time.
        ready = arrival
        for pred_key, bytes_, edge_key in preds:
            pred_task = tasks[pred_key]
            pred_finish = pred_task.finish
            pred_pe_id = pred_task.pe_id
            if pe is None or pred_pe_id is None:
                finish = pred_finish + context.best_comm(library, bytes_)
                edges[edge_key] = ScheduledEdge(
                    key=edge_key, link_id=None, start=pred_finish, finish=finish
                )
                if finish > ready:
                    ready = finish
                continue
            if pred_pe_id == pe_id or bytes_ == 0:
                edges[edge_key] = ScheduledEdge(
                    key=edge_key, link_id=None, start=pred_finish,
                    finish=pred_finish,
                )
                if pred_finish > ready:
                    ready = pred_finish
                continue
            pair = (pred_pe_id, pe_id)
            try:
                link = route_table[pair]
            except KeyError:
                link = route_table[pair] = arch.find_link_between(
                    pred_pe_id, pe_id
                )
            if link is None:
                raise AllocationError(
                    "no link connects %r and %r for edge %s->%s"
                    % (pred_pe_id, pe_id, pred_key[2], task_name)
                )
            timeline = schedule.link_timelines.get(link.id)
            if timeline is None:
                timeline = schedule.link_timelines[link.id] = timeline_cls()
            # Inlined context.comm_time: transfer time is a pure
            # function of (link type, current port count, payload).
            ports = link.ports_used
            ckey = (link.link_type.name, ports if ports > 2 else 2, bytes_)
            try:
                duration = comm_cache[ckey]
            except KeyError:
                duration = comm_cache[ckey] = link.comm_time(bytes_)
            start = timeline.earliest_fit(pred_finish, duration)
            start, finish = timeline.occupy(start, duration, edge_key)
            link_id = link.id
            edges[edge_key] = ScheduledEdge(
                key=edge_key, link_id=link_id, start=start, finish=finish
            )
            if key[1] == 0:
                load = demand.get(link_id, 0.0) + (
                    finish - start
                ) * ncopies[graph_name]
                demand[link_id] = load
                if (
                    bound is not None
                    and link_id not in crossed
                    and load / capacity > _OVERLOAD_TOLERANCE
                ):
                    crossed.add(link_id)
                    violations += 1
                    if violations > bound_limit:
                        raise ScheduleAbort("overload")
            if finish > ready:
                ready = finish

        # 2. Place the task on its resource.
        was_split = False
        if pe is None:
            n_virtual += 1
            start, finish = ready, ready + task.min_exec_time
        else:
            n_real += 1
            pe_type = pe.pe_type
            wkey = (id(task), pe_type.name)
            wcet = wcet_memo.get(wkey)
            if wcet is None:
                wcet = wcet_memo[wkey] = task.wcet_on(pe_type.name)
            kind = pe_type.kind
            if kind is PEKind.PROCESSOR:
                start, finish, was_split = _place_on_processor(
                    schedule, request, pe, key, ready, wcet,
                    timeline_cls=timeline_cls, split_counts=split_counts,
                )
                if key[1] == 0:
                    load = demand.get(pe_id, 0.0) + (
                        finish - start
                    ) * ncopies[graph_name]
                    demand[pe_id] = load
                    if (
                        bound is not None
                        and pe_id not in crossed
                        and load / capacity > _OVERLOAD_TOLERANCE
                    ):
                        crossed.add(pe_id)
                        violations += 1
                        if violations > bound_limit:
                            raise ScheduleAbort("overload")
            elif kind is PEKind.ASIC:
                start, finish = ready, ready + wcet
            else:
                timeline = schedule.ppe_timelines.get(pe_id)
                if timeline is None:
                    timeline = schedule.ppe_timelines[pe_id] = ppe_timeline_cls()
                akey = (pe_id, cluster_name)
                entry = allowed_memo.get(akey)
                if entry is None:
                    allowed = {
                        m: boot_time_fn(pe, m)
                        for m in pe.modes_of_cluster(cluster_name)
                    }
                    entry = allowed_memo[akey] = (
                        allowed, sorted(allowed.items()),
                    )
                allowed, allowed_sorted = entry
                bkey = (pe_id, mode)
                boot = boot_memo.get(bkey)
                if boot is None:
                    boot = boot_memo[bkey] = boot_time_fn(pe, mode)
                start, finish = timeline.place(
                    mode, ready, wcet, boot, allowed=allowed,
                    allowed_sorted=allowed_sorted,
                )
                if key[1] == 0:
                    load = demand.get(pe_id, 0.0) + (
                        finish - start
                    ) * ncopies[graph_name]
                    demand[pe_id] = load
                    if (
                        bound is not None
                        and pe_id not in crossed
                        and load / capacity > _OVERLOAD_TOLERANCE
                    ):
                        crossed.add(pe_id)
                        violations += 1
                        if violations > bound_limit:
                            raise ScheduleAbort("overload")
        tasks[key] = ScheduledTask(
            key=key,
            pe_id=pe_id,
            mode=mode,
            start=start,
            finish=finish,
            preempted=was_split,
        )
        scheduled_count += 1
        if bound is not None:
            absolute = deadline_by_key.get(key)
            if absolute is not None and finish - absolute > TIME_EPS:
                violations += 1
                if violations > bound_limit:
                    raise ScheduleAbort("deadline")

        # 3. Release successors.
        if succs:
            priority_table = priorities[graph_name]
            for succ_key, succ_name in succs:
                remaining = indegree[succ_key] - 1
                indegree[succ_key] = remaining
                if remaining == 0:
                    heapq.heappush(
                        heap,
                        (
                            -priority_table[succ_name],
                            records[succ_key][0],
                            succ_key,
                        ),
                    )

    if scheduled_count != plan.total:
        raise SchedulingError(
            "scheduled %d of %d task instances; precedence graph is inconsistent"
            % (scheduled_count, plan.total)
        )
    if n_real:
        tracer.incr("sched.tasks.real", n_real)
    if n_virtual:
        tracer.incr("sched.tasks.virtual", n_virtual)
    if split_counts[0]:
        tracer.incr("sched.preemption.splits_declined", split_counts[0])
    if split_counts[1]:
        tracer.incr("sched.preemption.splits_taken", split_counts[1])

    # Verdict by-products for the engine: per-graph lateness in the
    # contract insertion order (the plan's rows) and the inline demand
    # map -- both bit-identical to the post-pass recomputation.
    lateness: Dict[str, dict] = {}
    for name, rows in plan.deadline_rows.items():
        per_graph: Dict[tuple, float] = {}
        for row_key, absolute in rows:
            placed = tasks.get(row_key)
            if placed is not None:
                per_graph[row_key] = placed.finish - absolute
        lateness[name] = per_graph
    schedule.planned_lateness = lateness
    schedule.planned_demand = demand
    return schedule
