"""The incremental evaluation engine: per-component schedule caching.

``evaluate_architecture`` used to reschedule every graph of the (scoped)
specification for every candidate placement.  The engine splits the
graphs into components coupled through shared serial resources (see
:mod:`repro.perf.fingerprint`), schedules each component *alone* and
caches the resulting fragment keyed by the component's value
fingerprint.  Because components are resource-disjoint, the solo
schedule of each component is byte-identical to its slice of the full
interleaved run: at every heap pop the scheduler picks the minimum key
among the component's ready tasks, and that choice is unaffected by
entries of other components (task keys are distinct and totally
ordered, and timelines are per-resource).

A candidate placement typically dirties one component's fingerprint
and leaves the rest untouched, so repair rounds, merge trials, full
checks and the nested baseline synthesis (which shares the engine)
mostly replay cached fragments.

The merged verdict reproduces the from-scratch one exactly:

* lateness entries are inserted in ``spec.graph_names()`` order (the
  order ``evaluate_deadlines`` uses), preserving downstream tie-breaks
  that depend on dict insertion order;
* per-resource demand sums accumulate in the same per-resource term
  order as the interleaved run (the solo subsequence), so the float
  sums are identical, and overloads are derived from the globally
  sorted demand map exactly as before.

Fragment caching only pays off when evaluations repeat component
states exactly; on workloads whose graphs all couple through shared
processors or buses (e.g. the large Table 2 examples) nearly every
evaluation is a fresh single component.  The engine therefore also
owns a :class:`repro.perf.fastsched.SchedulerContext`: cache misses
are scheduled over precomputed per-spec plans, memoized routes and
transfer times, and bisect-indexed timelines
(:mod:`repro.perf.fasttimeline`) -- byte-identical to the legacy
scheduler but roughly twice as fast, which is where the engine's
speedup comes from when fingerprints never repeat.

The engine is enabled by default (``CrusadeConfig.incremental``) and
killed by ``incremental=False`` or the ``REPRO_NO_INCREMENTAL=1``
environment variable.  All cache traffic is reported through the
tracer as ``perf.schedule.hits`` / ``perf.schedule.misses`` /
``perf.schedule.evictions`` and ``perf.plan.hits`` /
``perf.plan.misses``.

When a persistent store is configured (``CrusadeConfig.cache_dir``,
see :mod:`repro.perf.store`), :meth:`IncrementalEngine.bind_store`
turns the in-memory cache into a read-through/write-through view of
the on-disk fragment tier: lookups that miss the LRU consult the
store (hits counted as ``perf.store.fragments_preloaded``), and every
freshly built fragment is persisted for future runs.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer
from repro.reconfig.reboot import default_boot_time
from repro.sched.finish_time import (
    _OVERLOAD_TOLERANCE,
    DeadlineReport,
    deadline_lateness,
    resource_demand,
)
from repro.sched.scheduler import (
    Schedule,
    ScheduleAbort,
    ScheduleRequest,
    build_schedule,
)
from repro.perf.fastsched import SchedulerContext
from repro.perf.fingerprint import component_fingerprint, partition_components
from repro.units import TIME_EPS

#: Environment kill switch: restore the from-scratch evaluation path.
KILL_SWITCH_ENV = "REPRO_NO_INCREMENTAL"


class Fragment:
    """Cached verdict for one resource-coupled component."""

    __slots__ = ("schedule", "lateness", "demand", "misses")

    def __init__(
        self,
        schedule: Schedule,
        lateness: Dict[str, Dict[tuple, float]],
        demand: Dict[str, float],
        misses: int,
    ) -> None:
        """Freeze one component's schedule, lateness and demand."""
        self.schedule = schedule
        #: graph name -> {task key -> lateness}, per-graph insertion
        #: order identical to the from-scratch evaluation's.
        self.lateness = lateness
        self.demand = demand
        #: Count of missed deadline instances (lateness > TIME_EPS).
        #: Stored because it is capacity-independent; the overload
        #: contribution is *not* stored -- cached fragments can be
        #: replayed under scoped associations with different
        #: hyperperiods, so it is derived from ``demand`` per call.
        self.misses = misses


class IncrementalEngine:
    """Schedule/verdict cache shared across one synthesis run.

    Thread-safe: the parallel candidate scorer's workers evaluate
    concurrently against the same engine.  Cached fragments are
    immutable once stored (schedules handed out are never mutated by
    consumers), so sharing them across evaluations is safe.
    """

    def __init__(self, max_entries: int = 32, timeline: str = "auto") -> None:
        """Create an empty engine holding up to ``max_entries``
        cached fragments (LRU beyond that), scheduling onto
        ``timeline``-mode timelines (``"list" | "tree" | "auto"``,
        see :mod:`repro.perf.treetimeline`)."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._fragments: "OrderedDict[tuple, Fragment]" = OrderedDict()
        #: Cross-run scheduler caches (plans, routes, transfer times)
        #: plus the timeline factory pair -- the engine's second, and
        #: on workloads whose graphs all couple through shared
        #: resources its main, source of reuse.
        self.context = SchedulerContext(timeline=timeline)
        self._lock = threading.Lock()
        self._cluster_map: Optional[
            Tuple[ClusteringResult, Dict[str, list]]
        ] = None
        #: Optional cross-run persistence: a
        #: :class:`repro.perf.warmstart.StoreBinding` making the
        #: in-memory fragment cache a read-through/write-through view
        #: of the on-disk fragment tier (:mod:`repro.perf.store`).
        self.store = None
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # ------------------------------------------------------------------
    def bind_store(self, binding) -> None:
        """Attach the persistent fragment-tier binding for this run.

        After binding, a fingerprint that misses the in-memory LRU
        consults the on-disk store before scheduling from scratch, and
        every freshly built fragment is written through.  Disk hits
        are inserted into the LRU like any other entry, so a component
        replayed repeatedly is only read off disk once.
        """
        self.store = binding

    # ------------------------------------------------------------------
    def _clusters_of_graph(self, clustering: ClusteringResult):
        """Memoized ``clustering.clusters_of_graph`` lookup (the
        clustering is fixed for a whole synthesis run, but fingerprints
        ask for the per-graph cluster lists on every evaluation)."""
        with self._lock:
            if self._cluster_map is None or self._cluster_map[0] is not clustering:
                mapping: Dict[str, list] = {}
                for cluster in clustering.clusters.values():
                    mapping.setdefault(cluster.graph, []).append(cluster)
                for clusters in mapping.values():
                    clusters.sort(key=lambda c: c.name)
                self._cluster_map = (clustering, mapping)
            mapping = self._cluster_map[1]
        return lambda graph_name: mapping.get(graph_name, ())

    # ------------------------------------------------------------------
    def evaluate(
        self,
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        arch: Architecture,
        priorities: Dict[str, Dict[str, float]],
        boot_time_fn: Optional[Callable[[PEInstance, int], float]],
        preemption: bool,
        tracer: Tracer,
        bound: Optional[tuple] = None,
    ) -> Tuple[Schedule, DeadlineReport]:
        """Schedule ``arch`` against ``spec``, reusing cached fragments
        for components whose fingerprints are unchanged.

        ``bound`` enables bounded search: each fragment is scheduled
        with the violations of all earlier fragments carried as its
        ``bound_base``, and a cache-hit fragment that tips the running
        count raises :class:`~repro.sched.scheduler.ScheduleAbort`
        (reason ``"carried"``) -- so the abort decision matches a
        monolithic run exactly.  Fragments completed before an abort
        are cached normally (they are valid verdicts).
        """
        names = spec.graph_names()
        clusters_of_graph = self._clusters_of_graph(clustering)
        boot_fn = boot_time_fn or default_boot_time
        components = partition_components(names, arch, clusters_of_graph)

        base = 0
        capacity = assoc.hyperperiod
        fragments: List[Fragment] = []
        for component in components:
            key = component_fingerprint(
                component, spec, assoc, clusters_of_graph, arch,
                priorities, boot_fn, preemption,
            )
            with self._lock:
                fragment = self._fragments.get(key)
                if fragment is not None:
                    self._fragments.move_to_end(key)
            from_disk = False
            if fragment is None and self.store is not None:
                # Cross-run read-through: a still-valid persisted
                # fragment behaves exactly like an in-memory hit
                # (including the carried-abort accounting below).
                fragment = self.store.load(key, component, tracer)
                from_disk = fragment is not None
            if fragment is not None:
                tracer.incr("perf.schedule.hits")
                with self._lock:
                    self._hits += 1
                if from_disk:
                    with self._lock:
                        self._disk_hits += 1
                    self._insert(key, fragment, tracer)
            else:
                tracer.incr("perf.schedule.misses")
                with self._lock:
                    self._misses += 1
                fragment = self._build_fragment(
                    component, spec, assoc, clustering, arch, priorities,
                    boot_time_fn, preemption, tracer,
                    bound=bound, bound_base=base,
                )
                self._insert(key, fragment, tracer)
                if self.store is not None:
                    self.store.save(key, component, fragment, tracer)
            fragments.append(fragment)
            if bound is not None:
                base += fragment.misses
                for load in fragment.demand.values():
                    if load / capacity > _OVERLOAD_TOLERANCE:
                        base += 1
                if base > bound[0]:
                    raise ScheduleAbort("carried")

        return self._merge(names, components, fragments, assoc)

    # ------------------------------------------------------------------
    def _insert(self, key: tuple, fragment: "Fragment", tracer: Tracer) -> None:
        """Insert one fragment into the LRU, evicting past capacity."""
        with self._lock:
            self._fragments[key] = fragment
            self._fragments.move_to_end(key)
            while len(self._fragments) > self.max_entries:
                self._fragments.popitem(last=False)
                tracer.incr("perf.schedule.evictions")

    # ------------------------------------------------------------------
    def _build_fragment(
        self,
        component: List[str],
        spec: SystemSpec,
        assoc: AssociationArray,
        clustering: ClusteringResult,
        arch: Architecture,
        priorities: Dict[str, Dict[str, float]],
        boot_time_fn,
        preemption: bool,
        tracer: Tracer,
        bound: Optional[tuple] = None,
        bound_base: int = 0,
    ) -> Fragment:
        request = ScheduleRequest(
            spec=spec,
            assoc=assoc,
            clustering=clustering,
            arch=arch,
            priorities=priorities,
            boot_time_fn=boot_time_fn,
            preemption=preemption,
            tracer=tracer,
            graphs=frozenset(component),
            context=self.context,
            bound=bound,
            bound_base=bound_base,
        )
        schedule = build_schedule(request)
        # The planned scheduler emits both verdict by-products inline
        # (same insertion orders, same float accumulation -- see
        # build_schedule_planned); recompute only when a request fell
        # back to the legacy path.
        lateness = getattr(schedule, "planned_lateness", None)
        if lateness is None:
            lateness = {
                name: deadline_lateness(schedule, spec, assoc, [name])
                for name in component
            }
        demand = getattr(schedule, "planned_demand", None)
        if demand is None:
            demand = resource_demand(schedule, assoc, set(component))
        misses = 0
        for per_graph in lateness.values():
            for value in per_graph.values():
                if value > TIME_EPS:
                    misses += 1
        return Fragment(schedule, lateness, demand, misses)

    # ------------------------------------------------------------------
    @staticmethod
    def _merge(
        names: List[str],
        components: List[List[str]],
        fragments: List[Fragment],
        assoc: AssociationArray,
    ) -> Tuple[Schedule, DeadlineReport]:
        if len(fragments) == 1:
            schedule = fragments[0].schedule
        else:
            schedule = Schedule()
            for fragment in fragments:
                schedule.tasks.update(fragment.schedule.tasks)
                schedule.edges.update(fragment.schedule.edges)
                schedule.proc_timelines.update(fragment.schedule.proc_timelines)
                schedule.ppe_timelines.update(fragment.schedule.ppe_timelines)
                schedule.link_timelines.update(fragment.schedule.link_timelines)
                schedule.preemptions += fragment.schedule.preemptions

        report = DeadlineReport()
        by_graph: Dict[str, Fragment] = {}
        for component, fragment in zip(components, fragments):
            for name in component:
                by_graph[name] = fragment
        # Canonical order: evaluate_deadlines inserts lateness keys per
        # graph in spec order; downstream tie-breaks (repair offender
        # selection) depend on that insertion order.
        for name in names:
            report.lateness.update(by_graph[name].lateness[name])
        demand: Dict[str, float] = {}
        for fragment in fragments:
            demand.update(fragment.demand)
        capacity = assoc.hyperperiod
        for resource, load in sorted(demand.items()):
            utilization = load / capacity
            if utilization > _OVERLOAD_TOLERANCE:
                report.overloaded[resource] = utilization
        return schedule, report

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Snapshot for diagnostics, ``--stats`` and tests.

        ``hits``/``misses`` count fragment lookups over the engine's
        lifetime; ``disk_hits`` is the subset of hits served by the
        persistent fragment tier (0 without a bound store).
        """
        with self._lock:
            return {
                "entries": len(self._fragments),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
            }


def incremental_disabled_by_env() -> bool:
    """True when the environment kill switch is set (non-empty, not 0)."""
    value = os.environ.get(KILL_SWITCH_ENV, "")
    return value not in ("", "0")


def resolve_engine(config, engine: Optional[IncrementalEngine] = None):
    """The engine a ``crusade`` call should use, or None.

    ``config.incremental=False`` and ``REPRO_NO_INCREMENTAL=1`` both
    force the from-scratch path even when a caller donates an engine
    (the nested baseline synthesis shares its parent's).
    """
    if not getattr(config, "incremental", True) or incremental_disabled_by_env():
        return None
    if engine is not None:
        return engine
    return IncrementalEngine(timeline=getattr(config, "timeline", "auto"))
