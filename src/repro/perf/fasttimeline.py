"""Bisect-indexed interval timeline for the incremental engine.

:class:`repro.sched.timeline.IntervalTimeline` keeps busy intervals
sorted but scans them linearly: ``earliest_fit`` walks from the first
interval, ``occupy`` collision-checks against every interval, and
``split_fit`` re-sorts the (already sorted) list on every call.  Those
scans are the scheduler's hottest loops -- millions of epsilon
comparisons per synthesis run.

:class:`FastTimeline` maintains a parallel, sorted list of interval
*end* times so both hot operations start from a bisected index:

* ``earliest_fit`` skips -- in O(log n) -- exactly the prefix of
  intervals the linear scan would skip (every interval ending at or
  before the ready time, within :data:`repro.units.TIME_EPS`);
* ``occupy`` collision-checks only the insertion point's neighbors:
  with intervals sorted and pairwise non-overlapping, any colliding
  interval must neighbor the insertion index;
* ``split_fit`` reuses the maintained order instead of sorting.

The epsilon arithmetic is inlined but textually identical to
``time_lt``/``time_leq``, so placements are bit-for-bit the ones the
linear scans produce.  The end-sorted invariant can only break when a
(near-)zero-duration interval lands within epsilon of a longer
interval's start -- impossible for real task/transfer durations, but
guarded anyway: ``_insert`` detects the disorder and flips the
timeline into a *degraded* mode that falls back to the superclass's
linear algorithms, preserving exactness unconditionally.

:class:`FastPpeModeTimeline` applies the same treatment to the
programmable-device mode timeline, whose candidate sweep dominates
hardware-heavy examples: bisected prefix skips, monotone lower-bound
early exits, and a hoisted mode sort -- same candidates, same
tie-breaks, same degraded-mode escape hatch.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.sched.timeline import (
    BusyInterval,
    IntervalTimeline,
    ModeWindow,
    PpeModeTimeline,
)
from repro.units import TIME_EPS


class FastTimeline(IntervalTimeline):
    """Drop-in :class:`IntervalTimeline` with bisected hot paths."""

    def __init__(self) -> None:
        """Empty timeline with its bisect end-index."""
        super().__init__()
        self._ends: List[float] = []
        self._degraded = False

    # ------------------------------------------------------------------
    def _insert(self, interval: BusyInterval) -> None:
        index = bisect.bisect_right(self._starts, interval.start)
        ends = self._ends
        if (index > 0 and ends[index - 1] > interval.end) or (
            index < len(ends) and interval.end > ends[index]
        ):
            # End order broken (epsilon-sliver placement): linear
            # algorithms from here on.
            self._degraded = True
        self._intervals.insert(index, interval)
        self._starts.insert(index, interval.start)
        ends.insert(index, interval.end)

    # ------------------------------------------------------------------
    def earliest_fit(self, ready: float, duration: float) -> float:
        """Earliest start >= ready with ``duration`` of free time
        (bisects past every interval ending before ``ready``)."""
        if self._degraded:
            return super().earliest_fit(ready, duration)
        if duration < 0:
            raise SchedulingError("duration must be non-negative")
        intervals = self._intervals
        ends = self._ends
        candidate = ready
        # Every interval ending at or before ready (within epsilon)
        # would be skipped by the linear scan; bisect past all of them.
        index = bisect.bisect_right(ends, candidate + TIME_EPS)
        for i in range(index, len(intervals)):
            end = ends[i]
            if end <= candidate + TIME_EPS:  # time_leq(end, candidate)
                continue
            start = intervals[i].start
            # time_leq(candidate + duration, start)
            if candidate + duration <= start + TIME_EPS:
                return candidate
            if end > candidate:
                candidate = end
        return candidate

    # ------------------------------------------------------------------
    def occupy(
        self, start: float, duration: float, owner: tuple
    ) -> Tuple[float, float]:
        """Insert a busy interval, keeping the bisect indexes sorted."""
        if self._degraded:
            return super().occupy(start, duration, owner)
        end = start + duration
        starts = self._starts
        ends = self._ends
        index = bisect.bisect_right(starts, start)
        intervals = self._intervals
        # Any collider satisfies time_lt(start, other.end) and
        # time_lt(other.start, end), which imply other.end > start and
        # other.start < end outright -- so with both key lists sorted
        # (non-degraded invariant) every possible collider lies in
        # [bisect_right(ends, start), bisect_left(starts, end)).  For
        # real placements that window is empty or a single neighbor;
        # only epsilon-sliver populations widen it (the old
        # two-neighbor check could bisect past a collider hiding
        # behind a zero-length interval at ready + TIME_EPS -- the
        # differential oracle's regression case).  Scanning the window
        # in index order reproduces the linear scan's first-collider
        # error exactly.
        for i in range(bisect.bisect_right(ends, start),
                       bisect.bisect_left(starts, end)):
            other = intervals[i]
            # time_lt(start, other.end) and time_lt(other.start, end)
            if start < other.end - TIME_EPS and other.start < end - TIME_EPS:
                raise SchedulingError(
                    "overlap: [%g, %g) collides with [%g, %g) owned by %r"
                    % (start, end, other.start, other.end, other.owner)
                )
        # Inlined _insert at the already-bisected index (bisecting
        # _starts again would land on the same position).
        if (index > 0 and ends[index - 1] > end) or (
            index < len(ends) and end > ends[index]
        ):
            self._degraded = True
        intervals.insert(index, BusyInterval(start=start, end=end, owner=owner))
        self._starts.insert(index, start)
        ends.insert(index, end)
        return start, end

    # ------------------------------------------------------------------
    def split_fit(
        self,
        ready: float,
        duration: float,
        overhead: float,
        max_segments: int = 4,
    ) -> Optional[List[Tuple[float, float]]]:
        """Fit ``duration`` across free gaps (restricted preemption),
        identical to the superclass minus a redundant sort."""
        # Same body as the superclass, minus the redundant sort: the
        # interval list is maintained in start order (and ``sorted`` is
        # stable, so the legacy call returned this exact order).  The
        # prefix ending at or before ready -- which the walk's inner
        # skip loop would step over one by one -- is bisected past,
        # which needs the end-sorted invariant.
        if self._degraded:
            return super().split_fit(ready, duration, overhead, max_segments)
        if duration < 0 or overhead < 0:
            raise SchedulingError("durations must be non-negative")
        segments: List[Tuple[float, float]] = []
        remaining = duration
        cursor = ready
        busy = self._intervals
        index = bisect.bisect_right(self._ends, ready + TIME_EPS)
        while remaining > TIME_EPS and len(segments) < max_segments:
            while index < len(busy) and busy[index].end <= cursor + TIME_EPS:
                index += 1
            if index < len(busy) and busy[index].start <= cursor + TIME_EPS:
                cursor = busy[index].end
                continue
            gap_end = busy[index].start if index < len(busy) else float("inf")
            cost = remaining + (overhead if segments else 0.0)
            available = gap_end - cursor
            if cost <= available + TIME_EPS:  # time_leq(cost, available)
                segments.append((cursor, cursor + cost))
                remaining = 0.0
                break
            useful = available - (overhead if segments else 0.0)
            if useful > TIME_EPS:
                segments.append((cursor, gap_end))
                remaining -= useful
            cursor = gap_end
        if remaining > TIME_EPS:
            return None
        return segments

    # ------------------------------------------------------------------
    def preempt_split(
        self,
        victim: BusyInterval,
        preempt_at: float,
        inserted_duration: float,
        overhead: float,
        new_owner: tuple,
    ) -> Tuple[Tuple[float, float], float]:
        """Preempt ``victim`` at ``preempt_at``; delegates to the
        superclass and rebuilds the end index."""
        # Delegate to the superclass, then rebuild the end index: the
        # base implementation deletes and re-inserts intervals through
        # ``_insert`` *and* raw ``del``, so the parallel list must be
        # reconciled afterwards.
        result = super().preempt_split(
            victim, preempt_at, inserted_duration, overhead, new_owner
        )
        self._ends = [iv.end for iv in self._intervals]
        return result


class FastPpeModeTimeline(PpeModeTimeline):
    """Drop-in :class:`PpeModeTimeline` with a pruned ``place``.

    The linear ``place`` enumerates a join candidate per window and a
    gap candidate per (gap, allowed mode) -- and re-sorts the allowed
    modes once per gap.  With windows time-ordered and every candidate
    finishing at ``start + duration``, both sweeps admit exact pruning:

    * windows whose busy span ends before the ready time (within
      epsilon) can never host a join, and gaps that close before the
      ready time can never admit an insert -- bisect past both
      prefixes;
    * candidate finish times are monotone in the window/gap index
      (window starts and gap floors only grow), so once a candidate's
      lower bound exceeds the incumbent best finish, no later
      candidate can win -- stop the sweep.

    Pruned candidates are provably losers or exactly the ones the
    linear sweep skips, and surviving candidates are enumerated in the
    same order with the same float arithmetic, so the chosen placement
    (including first-wins tie-breaks) is bit-for-bit the linear one.
    Like :class:`FastTimeline`, an epsilon-sliver mutation that breaks
    the maintained window order flips the timeline into a degraded
    mode that delegates to the linear superclass.
    """

    def __init__(self) -> None:
        """Empty mode-window timeline with its bisect indexes."""
        super().__init__()
        self._starts: List[float] = []
        self._wends: List[float] = []
        self._degraded = False

    def place(
        self,
        mode: int,
        ready: float,
        duration: float,
        boot_time: float,
        allowed: Optional[Dict[int, float]] = None,
        allowed_sorted: Optional[list] = None,
    ) -> Tuple[float, float]:
        """``allowed_sorted``, when given, must be
        ``sorted(allowed.items())`` -- callers that memoize the allowed
        map per (device, cluster) hoist the sort out of this hot path.
        """
        if self._degraded:
            return super().place(mode, ready, duration, boot_time, allowed)
        if duration < 0 or boot_time < 0:
            raise SchedulingError("durations must be non-negative")
        if allowed is None:
            allowed = {mode: boot_time}
            allowed_sorted = None
        for b in allowed.values():  # plain loop: no genexpr per call
            if b < 0:
                raise SchedulingError("boot times must be non-negative")
        windows = self.windows
        starts = self._starts
        ends = self._wends
        n = len(windows)
        best: Optional[Tuple[float, float, str, int, int]] = None

        # Join candidates.  Windows ending before ready - EPS fail the
        # busy-span test (their start precedes their end, hence ready);
        # bisect past them.
        i0 = bisect.bisect_left(ends, ready - TIME_EPS)
        for index in range(i0, n):
            window = windows[index]
            w_start = window.start
            start = ready if ready > w_start else w_start
            finish = start + duration
            # Window starts only grow, so every later join candidate
            # finishes at or after this one: no strict improvement left.
            if best is not None and finish > best[0]:
                break
            if window.mode not in allowed:
                continue
            w_end = window.end
            if w_end < start - TIME_EPS:  # time_lt(window.end, start)
                continue
            new_end = w_end if w_end > finish else finish
            if index + 1 < n:
                nxt = windows[index + 1]
                gap_after = nxt.boot_time if nxt.mode != window.mode else 0.0
                # time_lt(nxt.start - gap_after, new_end)
                if nxt.start - gap_after < new_end - TIME_EPS:
                    continue
            if best is None or (finish, start) < (best[0], best[1]):
                best = (finish, start, "join", index, window.mode)

        # Gap candidates.  A gap whose following window ends before
        # ready - EPS closes before any candidate could finish; the
        # first viable gap is the one ending at windows[i0] (or the
        # open region when every window is past).
        if allowed_sorted is None:
            allowed_sorted = sorted(allowed.items())
        for gap in range(i0 - 1 if i0 > 0 else -1, n):
            prev = windows[gap] if gap >= 0 else None
            if prev is not None and best is not None:
                floor = ready if ready > prev.end else prev.end
                # Gap floors only grow: no later gap can strictly win.
                if floor + duration > best[0]:
                    break
            nxt = windows[gap + 1] if gap + 1 < n else None
            for m, m_boot in allowed_sorted:
                boot_before = 0.0
                if prev is not None and prev.mode != m:
                    boot_before = m_boot
                earliest = (prev.end if prev is not None else 0.0) + boot_before
                start = max(ready, earliest, 0.0)
                finish = start + duration
                if nxt is not None:
                    gap_after = nxt.boot_time if nxt.mode != m else 0.0
                    # time_lt(nxt.start - gap_after, finish)
                    if nxt.start - gap_after < finish - TIME_EPS:
                        continue
                if best is None or (finish, start) < (best[0], best[1]):
                    best = (finish, start, "insert", gap, m)

        assert best is not None, "gap after the last window always fits"
        finish, start, how, index, chosen_mode = best
        if how == "join":
            window = windows[index]
            if start < window.start:  # unreachable (start >= window.start);
                window.start = start  # kept for parity with min()
                starts[index] = start
            if finish > window.end:
                window.end = finish
                ends[index] = finish
                if index + 1 < n and finish > ends[index + 1]:
                    self._degraded = True
            return start, finish
        at = index + 1
        windows.insert(
            at,
            ModeWindow(
                mode=chosen_mode,
                start=start,
                end=finish,
                boot_time=allowed[chosen_mode],
            ),
        )
        starts.insert(at, start)
        ends.insert(at, finish)
        if (at > 0 and (starts[at - 1] > start or ends[at - 1] > finish)) or (
            at + 1 < len(starts)
            and (start > starts[at + 1] or finish > ends[at + 1])
        ):
            self._degraded = True
        return start, finish
