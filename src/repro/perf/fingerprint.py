"""Architecture fingerprints for the incremental evaluation engine.

The list scheduler's verdict on one task graph depends only on the
resources the graph's clusters touch: the serial PEs hosting them, the
links whose port sets cover at least two of those PEs, the graph's
copy phasing and its priority levels.  Graphs that share none of those
serial resources cannot perturb each other's schedule -- the heap pops
of one graph's component form the same subsequence whether or not the
other graphs are scheduled alongside (ties cannot occur because task
keys are distinct and totally ordered).

This module computes (1) the partition of a specification's graphs
into *components* coupled through shared serial resources and (2) a
value-based fingerprint per component.  Two evaluations whose
component fingerprints are equal produce byte-identical per-component
schedules, so the engine can replay a cached fragment instead of
rescheduling.

ASICs never serialize tasks, so sharing one does not couple graphs;
it still shows up in the fingerprint (as the placement target) because
it determines execution times.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.resources.pe import PEKind


def graph_pe_footprint(
    arch: Architecture,
    clusters_of_graph,
    graph_name: str,
) -> Set[str]:
    """PE instance ids hosting any allocated cluster of ``graph_name``."""
    pes: Set[str] = set()
    for cluster in clusters_of_graph(graph_name):
        placement = arch.cluster_alloc.get(cluster.name)
        if placement is not None:
            pes.add(placement[0])
    return pes


def _footprint_links(arch: Architecture, pes: Set[str]) -> List[str]:
    """Links whose attached set covers >= 2 of ``pes`` (the only links
    the scheduler can occupy for this graph's edges)."""
    if len(pes) < 2:
        return []
    out = []
    for link in arch.links.values():
        count = 0
        for pe_id in link.attached:
            if pe_id in pes:
                count += 1
                if count >= 2:
                    out.append(link.id)
                    break
    return out


def partition_components(
    names: List[str],
    arch: Architecture,
    clusters_of_graph,
) -> List[List[str]]:
    """Partition ``names`` into groups coupled via shared serial
    resources (processors/PPEs and footprint links).

    Returned groups preserve the order of ``names`` (first appearance
    decides group order, members stay in ``names`` order), which the
    merge step relies on for canonical report ordering.
    """
    parent: Dict[str, str] = {name: name for name in names}

    def find(x: str) -> str:
        """Union-find root of ``x`` with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        """Merge the components of ``a`` and ``b``."""
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    footprints: Dict[str, Set[str]] = {}
    owner: Dict[str, str] = {}
    for name in names:
        pes = graph_pe_footprint(arch, clusters_of_graph, name)
        footprints[name] = pes
        for pe_id in pes:
            if arch.pes[pe_id].pe_type.kind is PEKind.ASIC:
                continue  # contention-free; sharing does not couple
            key = "P:" + pe_id
            if key in owner:
                union(owner[key], name)
            else:
                owner[key] = name
        for link_id in _footprint_links(arch, pes):
            key = "L:" + link_id
            if key in owner:
                union(owner[key], name)
            else:
                owner[key] = name

    groups: Dict[str, List[str]] = {}
    order: List[str] = []
    for name in names:
        root = find(name)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(name)
    return [groups[root] for root in order]


def _pe_signature(
    pe: PEInstance, boot_time_fn: Callable[[PEInstance, int], float]
) -> tuple:
    """Everything about one PE instance the scheduler can observe."""
    modes = tuple(
        (mode.index, tuple(sorted(mode.clusters))) for mode in pe.modes
    )
    boots: tuple = ()
    if pe.is_programmable:
        boots = tuple(boot_time_fn(pe, mode.index) for mode in pe.modes)
    return (pe.id, pe.pe_type.name, modes, boots)


def component_fingerprint(
    component: List[str],
    spec: SystemSpec,
    assoc: AssociationArray,
    clusters_of_graph,
    arch: Architecture,
    priorities: Dict[str, Dict[str, float]],
    boot_time_fn: Callable[[PEInstance, int], float],
    preemption: bool,
) -> tuple:
    """Value tuple identifying a component's scheduling inputs.

    Captures, per graph: copy phasing (count plus explicit arrivals),
    priority levels and cluster placements; per footprint PE: type,
    mode contents and boot times; per footprint link: type and port
    set.  Equal fingerprints imply byte-identical fragment schedules.
    """
    graph_sigs = []
    pes: Set[str] = set()
    for name in component:
        graph = spec.graph(name)
        copies = tuple(
            (c.copy, c.arrival) for c in assoc.explicit_copies(name)
        )
        levels = priorities[name]
        prio_sig = tuple(levels[t] for t in graph.topological_order())
        placements = []
        for cluster in clusters_of_graph(name):
            placement = arch.cluster_alloc.get(cluster.name)
            placements.append((cluster.name, placement))
            if placement is not None:
                pes.add(placement[0])
        graph_sigs.append(
            (name, assoc.n_copies(name), copies, prio_sig, tuple(placements))
        )
    pe_sigs = tuple(
        _pe_signature(arch.pes[pe_id], boot_time_fn) for pe_id in sorted(pes)
    )
    link_sigs = tuple(
        (
            link_id,
            arch.links[link_id].link_type.name,
            tuple(sorted(arch.links[link_id].attached)),
        )
        for link_id in sorted(_footprint_links(arch, pes))
    )
    return (tuple(graph_sigs), pe_sigs, link_sigs, preemption)
