"""Performance layer for the synthesis inner loop.

Cooperating pieces, all observable through ``perf.*`` / ``prune.*`` /
``pool.*`` tracer counters and each individually killable
(``CrusadeConfig.incremental=False`` / ``REPRO_NO_INCREMENTAL=1``,
``CrusadeConfig.prune=False`` / ``REPRO_NO_PRUNE=1``; the process
pool is opt-in via ``CrusadeConfig.parallel_eval``):

* :mod:`repro.perf.fingerprint` -- partitions the specification's
  graphs into resource-coupled components and fingerprints each
  component's scheduling inputs by value;
* :mod:`repro.perf.engine` -- the per-component schedule/verdict cache
  (:class:`IncrementalEngine`) threaded through
  ``evaluate_architecture``;
* :mod:`repro.perf.cow` -- copy-on-write application of allocation
  options (undo journals instead of architecture clones);
* :mod:`repro.perf.prune` -- admissible candidate pruning: per-
  candidate finish-time/demand lower bounds cut provably infeasible
  candidates before the scheduler runs (pure dominance pruning);
* :mod:`repro.perf.procpool` -- the wave-based multi-*process*
  candidate scorer with deterministic first-feasible-by-index
  selection and warm per-worker engine caches, running on the
  :mod:`repro.exec` execution substrate (:class:`JobWorker` remains
  as the pipe-transport compatibility surface);
* :mod:`repro.perf.store` / :mod:`repro.perf.warmstart` -- the
  persistent content-addressed synthesis store (full-result tier +
  cross-run fragment tier under ``CrusadeConfig.cache_dir``) and the
  warm-start path that diffs a resubmitted spec against the cached
  prior run and rebinds still-valid schedule fragments; reads killed
  by ``warm_start=False`` / ``REPRO_NO_WARM_START=1``;
* :mod:`repro.perf.fasttimeline` / :mod:`repro.perf.treetimeline` --
  the fast implementations of the :class:`repro.sched.timeline`
  abstract timelines: bisect-indexed flat lists, and the blocked
  index for long fragmented timelines, selected per run by
  ``CrusadeConfig.timeline`` (``REPRO_TIMELINE`` overrides) and held
  byte-identical by the differential oracle in ``tests/sched``.

All paths are byte-identical to the from-scratch pipeline; the
property suites in ``tests/perf`` assert it.
"""

from repro.perf.cow import AppliedOption, undo_journal
from repro.perf.engine import (
    IncrementalEngine,
    incremental_disabled_by_env,
    resolve_engine,
)
from repro.perf.fingerprint import component_fingerprint, partition_components
from repro.perf.parallel import LockedTracer, wrap_tracer
from repro.perf.procpool import (
    MIN_FRONTIER_FACTOR,
    JobWorker,
    PoolError,
    ProcessPoolScorer,
    WorkerCrash,
)
from repro.perf.prune import (
    CandidatePruner,
    PruneVerdict,
    RepairBound,
    prune_disabled_by_env,
    pruning_active,
)
from repro.perf.treetimeline import (
    TreePpeModeTimeline,
    TreeTimeline,
    resolve_timeline,
)

__all__ = [
    "AppliedOption",
    "CandidatePruner",
    "IncrementalEngine",
    "JobWorker",
    "LockedTracer",
    "MIN_FRONTIER_FACTOR",
    "PoolError",
    "ProcessPoolScorer",
    "WorkerCrash",
    "PruneVerdict",
    "RepairBound",
    "component_fingerprint",
    "incremental_disabled_by_env",
    "partition_components",
    "prune_disabled_by_env",
    "pruning_active",
    "resolve_engine",
    "resolve_timeline",
    "TreePpeModeTimeline",
    "TreeTimeline",
    "undo_journal",
    "wrap_tracer",
]
