"""Incremental evaluation engine for the synthesis inner loop.

Four cooperating pieces, all observable through ``perf.*`` tracer
counters and all killable via ``CrusadeConfig.incremental=False`` or
``REPRO_NO_INCREMENTAL=1`` (the parallel scorer is opt-in via
``CrusadeConfig.parallel_eval``):

* :mod:`repro.perf.fingerprint` -- partitions the specification's
  graphs into resource-coupled components and fingerprints each
  component's scheduling inputs by value;
* :mod:`repro.perf.engine` -- the per-component schedule/verdict cache
  (:class:`IncrementalEngine`) threaded through
  ``evaluate_architecture``;
* :mod:`repro.perf.cow` -- copy-on-write application of allocation
  options (undo journals instead of architecture clones);
* :mod:`repro.perf.parallel` -- the wave-based parallel candidate
  scorer with deterministic first-feasible-by-index selection.

All paths are byte-identical to the from-scratch pipeline; the
property suite in ``tests/perf`` asserts it.
"""

from repro.perf.cow import AppliedOption, undo_journal
from repro.perf.engine import (
    IncrementalEngine,
    incremental_disabled_by_env,
    resolve_engine,
)
from repro.perf.fingerprint import component_fingerprint, partition_components
from repro.perf.parallel import LockedTracer, ParallelScorer, wrap_tracer

__all__ = [
    "AppliedOption",
    "IncrementalEngine",
    "LockedTracer",
    "ParallelScorer",
    "component_fingerprint",
    "incremental_disabled_by_env",
    "partition_components",
    "resolve_engine",
    "undo_journal",
    "wrap_tracer",
]
