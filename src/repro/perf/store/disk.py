"""The on-disk synthesis store: versioned layout, atomic durable writes.

Layout under the cache directory::

    <cache_dir>/
      FORMAT                          "crusade-store/<version>\\n"
      results/<spec>-<catalog>-<config>.pkl
      fragments/<aa>/<fingerprint>-<validity>.pkl
      index/<name digest>.json        latest run per spec name

``results/`` is the full-result tier: one pickled
:class:`~repro.core.report.CoSynthesisResult` per (spec digest,
catalog digest, semantic config digest) triple.  ``fragments/`` is the
fragment tier: one pickled :class:`~repro.perf.engine.Fragment` per
(fingerprint digest, validity digest) pair, sharded by the first two
hex characters so no single directory grows unboundedly.  ``index/``
holds one canonical-JSON record per spec *name* -- the newest run's
digests -- which is what :mod:`repro.perf.warmstart` diffs a
resubmission against.

Durability and concurrency follow :mod:`repro.io.campaign_json`:
every write lands in a same-directory temp file (suffixed with the
writer's pid so concurrent campaign workers never share one), is
flushed and fsynced, then ``os.replace``\\ d into place -- readers and
racing writers only ever observe complete entries, and the last
writer of a key wins (all writers of one content-addressed key carry
identical bytes anyway).

Reads are *corrupt-tolerant*: a truncated, garbled or unpicklable
entry -- a crashed writer on a filesystem without atomic rename
semantics, a bit flip, a stale entry from an incompatible code
revision -- is treated as a miss, counted under ``perf.store.corrupt``
and best-effort deleted.  Only a FORMAT stamp from a *different store
version* raises (:class:`StoreFormatError`): silently mixing layouts
could serve wrong results, which a cache must never do.
"""

from __future__ import annotations

import os
import pathlib
import pickle
from typing import Any, Dict, Optional, Union

from repro.io.campaign_json import canonical_dumps, load_json
from repro.perf.store.digests import (
    STORE_SCHEMA_VERSION,
    catalog_digest,
    config_digest,
    spec_digest,
    value_digest,
)

#: Environment fallback for ``CrusadeConfig.cache_dir`` -- how campaign
#: workers inherit one shared store without touching job configs.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment kill switch: disable store *reads* (exact hits and
#: fragment preloads); writes still happen, so a kill-switched run
#: still warms the store for later ones.
KILL_SWITCH_ENV = "REPRO_NO_WARM_START"

#: Name and expected content of the store's version stamp.
FORMAT_FILE = "FORMAT"
FORMAT_LINE = "crusade-store/%d\n" % STORE_SCHEMA_VERSION

#: Header tags pickled ahead of each payload; a tag/version mismatch
#: on load is treated as corruption (miss), not an error.
RESULT_TAG = "crusade-store-result"
FRAGMENT_TAG = "crusade-store-fragment"

#: Everything a persisted-entry load may raise that means "this entry
#: is unusable", exhaustively broad on purpose: unpickling executes
#: class constructors against bytes from an arbitrary past revision.
_CORRUPT_ERRORS = (
    OSError,
    EOFError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
    TypeError,
    ValueError,
    KeyError,
    MemoryError,
)


class StoreFormatError(RuntimeError):
    """The cache directory holds an incompatible store version."""


def warm_start_disabled_by_env() -> bool:
    """True when ``REPRO_NO_WARM_START`` is set (non-empty, not 0)."""
    return os.environ.get(KILL_SWITCH_ENV, "") not in ("", "0")


def store_reads_enabled(config) -> bool:
    """Whether this run may *read* cached entries (writes always may)."""
    if warm_start_disabled_by_env():
        return False
    return getattr(config, "warm_start", True)


def resolve_store(config) -> Optional["SynthesisStore"]:
    """The store a ``crusade`` call should use, or ``None``.

    ``CrusadeConfig.cache_dir`` wins; the ``REPRO_CACHE_DIR``
    environment variable is the fallback (campaign workers inherit it
    from ``repro campaign run --cache-dir``).  No directory configured
    means no store -- synthesis untouched.
    """
    cache_dir = getattr(config, "cache_dir", None)
    if not cache_dir:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or None
    if not cache_dir:
        return None
    return SynthesisStore(cache_dir)


def _incr(tracer, name: str, n: int = 1) -> None:
    """Count on a tracer that may be absent."""
    if tracer is not None:
        tracer.incr(name, n)


class SynthesisStore:
    """One cache directory holding both persistent tiers.

    Instances are cheap (they hold paths, not state) and safe to share
    across threads and processes: all mutation goes through atomic
    replace, all reads tolerate losing a race.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        """Open (creating if needed) the store at ``root``.

        Raises :class:`StoreFormatError` when ``root`` already stamps
        a different store version.
        """
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.fragments_dir = self.root / "fragments"
        self.index_dir = self.root / "index"
        for directory in (
            self.root, self.results_dir, self.fragments_dir, self.index_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self._claim_format()

    def _claim_format(self) -> None:
        """Stamp a fresh directory; verify an existing stamp."""
        stamp = self.root / FORMAT_FILE
        try:
            existing = stamp.read_text()
        except OSError:
            self._write_bytes(stamp, FORMAT_LINE.encode("ascii"))
            return
        if existing != FORMAT_LINE:
            raise StoreFormatError(
                "%s: incompatible store format %r (this build writes %r)"
                % (self.root, existing.strip(), FORMAT_LINE.strip())
            )

    # ------------------------------------------------------------------
    # durable writes
    # ------------------------------------------------------------------
    def _write_bytes(self, path: pathlib.Path, data: bytes,
                     durable: bool = True) -> None:
        """Atomic write: temp file (+ fsync when durable) + ``os.replace``.

        The pid suffix keeps concurrent writers (racing campaign
        workers) on distinct temp files; whoever replaces last wins,
        and content-addressed keys make both payloads identical.
        ``durable=False`` skips the fsync: atomicity (readers never see
        a partial entry) comes from the rename alone, and fragment
        writes are frequent enough that per-write fsync latency would
        erase the warm-start win -- a crash-truncated entry is exactly
        what the corrupt-tolerant read path absorbs.
        """
        tmp = path.with_name(path.name + ".tmp.%d" % os.getpid())
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                if durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed write never leaves litter
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _dump(self, path: pathlib.Path, tag: str, payload: Any,
              durable: bool = True) -> None:
        """Pickle ``payload`` under a (tag, version) header, atomically."""
        data = pickle.dumps(
            (tag, STORE_SCHEMA_VERSION, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._write_bytes(path, data, durable=durable)

    def _load(self, path: pathlib.Path, tag: str, tracer=None) -> Optional[Any]:
        """Unpickle an entry; any unusable entry is a counted miss."""
        try:
            with open(path, "rb") as fh:
                header = pickle.load(fh)
        except FileNotFoundError:
            return None
        except _CORRUPT_ERRORS:
            self._drop_corrupt(path, tracer)
            return None
        if (
            not isinstance(header, tuple)
            or len(header) != 3
            or header[0] != tag
            or header[1] != STORE_SCHEMA_VERSION
        ):
            self._drop_corrupt(path, tracer)
            return None
        return header[2]

    def _drop_corrupt(self, path: pathlib.Path, tracer) -> None:
        """Count and best-effort delete an unusable entry."""
        _incr(tracer, "perf.store.corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # full-result tier
    # ------------------------------------------------------------------
    def result_key(self, spec, library, config) -> str:
        """The full-result tier key of one synthesis request."""
        return "%s-%s-%s" % (
            spec_digest(spec), catalog_digest(library), config_digest(config),
        )

    def _result_path(self, key: str) -> pathlib.Path:
        return self.results_dir / (key + ".pkl")

    def load_result(self, key: str, tracer=None):
        """The cached result for ``key``, or ``None``."""
        return self._load(self._result_path(key), RESULT_TAG, tracer)

    def save_result(self, key: str, result, tracer=None) -> None:
        """Persist a finished run's result under ``key``."""
        self._dump(self._result_path(key), RESULT_TAG, result)
        _incr(tracer, "perf.store.results_saved")

    # ------------------------------------------------------------------
    # fragment tier
    # ------------------------------------------------------------------
    def _fragment_path(self, fp_digest: str, validity: str) -> pathlib.Path:
        shard = self.fragments_dir / fp_digest[:2]
        return shard / ("%s-%s.pkl" % (fp_digest, validity))

    def load_fragment(self, fp_digest: str, validity: str, tracer=None):
        """The cached fragment at (fingerprint, validity), or ``None``."""
        return self._load(
            self._fragment_path(fp_digest, validity), FRAGMENT_TAG, tracer
        )

    def save_fragment(self, fp_digest: str, validity: str, fragment,
                      tracer=None) -> None:
        """Persist one freshly built schedule fragment.

        Non-durable (no fsync -- see :meth:`_write_bytes`) and skipped
        entirely when the entry already exists: the key is
        content-addressed, so any existing entry already carries these
        bytes (an LRU-evicted-and-rebuilt fragment, or a racing
        campaign worker that got there first).
        """
        path = self._fragment_path(fp_digest, validity)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._dump(path, FRAGMENT_TAG, fragment, durable=False)
        except (pickle.PicklingError, TypeError, AttributeError):
            # An unpicklable fragment (exotic timeline state) is a
            # skipped optimization, never an error.
            _incr(tracer, "perf.store.fragments_unpicklable")
            return
        _incr(tracer, "perf.store.fragments_saved")

    # ------------------------------------------------------------------
    # per-spec-name index (what warm-start diffs against)
    # ------------------------------------------------------------------
    def _index_path(self, spec_name: str) -> pathlib.Path:
        return self.index_dir / (value_digest(("index", spec_name)) + ".json")

    def load_index(self, spec_name: str, tracer=None) -> Optional[Dict[str, Any]]:
        """The newest run record for ``spec_name``, or ``None``."""
        path = self._index_path(spec_name)
        try:
            record = load_json(path)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._drop_corrupt(path, tracer)
            return None
        if not isinstance(record, dict) or record.get("version") != STORE_SCHEMA_VERSION:
            self._drop_corrupt(path, tracer)
            return None
        return record

    def save_index(self, spec_name: str, record: Dict[str, Any]) -> None:
        """Atomically record the newest run's digests for a spec name.

        Canonical JSON, but written through :meth:`_write_bytes` rather
        than :func:`repro.io.campaign_json.dump_canonical`: the latter's
        fixed temp-file name could collide between two campaign workers
        indexing the same spec concurrently, while the pid-suffixed
        temp path cannot.
        """
        payload = dict(record)
        payload["version"] = STORE_SCHEMA_VERSION
        payload["spec"] = spec_name
        self._write_bytes(
            self._index_path(spec_name),
            canonical_dumps(payload).encode("utf-8"),
        )
