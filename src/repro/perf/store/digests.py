"""Content digests addressing the persistent synthesis store.

Everything the store keys on reduces here to a short SHA-256 hex
digest over a canonical encoding (:mod:`repro.perf.store.encode`), so
keys are stable across processes and machines:

* :func:`spec_digest` / :func:`graph_digest` -- over the canonical
  spec-JSON payloads (:mod:`repro.io.spec_json`), so two specs with
  equal content digest equally however they were constructed;
* :func:`catalog_digest` -- over every PE/link type's dataclass
  fields, name-sorted;
* :func:`config_digest` -- over the *semantic* ``CrusadeConfig``
  fields only: knobs that are proven byte-identity-preserving
  (``incremental``, ``prune``, ``timeline``, ``bound_abort``,
  ``parallel_eval``, ``pool_batch``) and the store's own plumbing
  (``cache_dir``, ``warm_start``) are excluded, so a pruned run can
  serve an exact hit to an unpruned resubmission of the same problem;
* :func:`fingerprint_digest` -- over a component value fingerprint
  (:func:`repro.perf.fingerprint.component_fingerprint`), turning the
  in-memory cache key into a file name.

The fingerprint captures placements/priorities/copy phasing but *not*
graph content (execution times, edge bytes) -- within one run the spec
is fixed, so it never needed to.  Across runs the fragment tier
therefore pairs each fingerprint digest with a **validity digest**
(:func:`fragment_validity_digest`) over the member graphs' content
digests plus the catalog and config digests: an edited graph, swapped
catalog part or changed semantic knob changes the validity digest and
the stale entry simply stops being addressable.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Dict, Iterable

from repro.graph.spec import SystemSpec
from repro.graph.taskgraph import TaskGraph
from repro.io.spec_json import graph_to_dict, spec_to_dict
from repro.perf.store.encode import DIGEST_HEX_CHARS, encoded_digest
from repro.resources.library import ResourceLibrary

#: Bumped when any digest input or the on-disk layout changes meaning;
#: part of every validity digest and the store FORMAT stamp.
STORE_SCHEMA_VERSION = 1

#: ``CrusadeConfig`` fields excluded from :func:`config_digest`: each
#: is either proven byte-identity-preserving (results are identical
#: with the knob on or off -- the contract the perf test suites
#: enforce) or pure store plumbing, so including them would only
#: fracture the key space without ever distinguishing results.
IDENTITY_NEUTRAL_CONFIG_FIELDS = frozenset({
    "incremental",
    "parallel_eval",
    "prune",
    "timeline",
    "bound_abort",
    "pool_batch",
    "cache_dir",
    "warm_start",
    "exec_transport",
    "worker_port",
})


def _portable(value):
    """Reduce a rich value to the encodable primitive shapes.

    Dataclasses become ``(class name, ((field, value), ...))`` tuples,
    enums ``(class name, value)``, dicts name-sorted item tuples and
    sets sorted tuples -- all deterministic, none dependent on object
    identity or hash seeding.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _portable(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, dict):
        return tuple(sorted((k, _portable(v)) for k, v in value.items()))
    if isinstance(value, (frozenset, set)):
        return tuple(sorted(_portable(v) for v in value))
    if isinstance(value, (tuple, list)):
        return tuple(_portable(v) for v in value)
    return value


def value_digest(value) -> str:
    """Digest of an arbitrary reducible value (see :func:`_portable`)."""
    return encoded_digest(_portable(value))


def _json_digest(payload) -> str:
    """Digest of a JSON-ready payload via its canonical JSON text."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return digest[:DIGEST_HEX_CHARS]


def spec_digest(spec: SystemSpec) -> str:
    """Content digest of a whole specification."""
    return _json_digest(spec_to_dict(spec))


def graph_digest(graph: TaskGraph) -> str:
    """Content digest of one task graph (periods, deadlines, tasks,
    execution-time vectors, edges -- everything scheduling can see)."""
    return _json_digest(graph_to_dict(graph))


def graph_digests(spec: SystemSpec) -> Dict[str, str]:
    """Per-graph content digests of ``spec``, keyed by graph name."""
    return {name: graph_digest(spec.graph(name)) for name in spec.graph_names()}


def catalog_digest(library: ResourceLibrary) -> str:
    """Content digest of a resource library (PE + link types)."""
    return value_digest((
        "catalog",
        STORE_SCHEMA_VERSION,
        tuple(
            _portable(library.pe_types[name])
            for name in sorted(library.pe_types)
        ),
        tuple(
            _portable(library.link_types[name])
            for name in sorted(library.link_types)
        ),
    ))


def config_digest(config) -> str:
    """Digest of the semantic ``CrusadeConfig`` fields.

    Fields in :data:`IDENTITY_NEUTRAL_CONFIG_FIELDS` are skipped; see
    the module docstring for why.
    """
    fields = tuple(
        (f.name, _portable(getattr(config, f.name)))
        for f in dataclasses.fields(config)
        if f.name not in IDENTITY_NEUTRAL_CONFIG_FIELDS
    )
    return value_digest(("config", STORE_SCHEMA_VERSION, fields))


def fingerprint_digest(key: tuple) -> str:
    """Digest of one component value fingerprint (already primitive).

    Fingerprints are large (per-task signature tuples) and hashed on
    the engine's hot path, so this digest runs over ``repr(key)``
    rather than the tagged encoding: for nested tuples of primitives
    ``repr`` is an unambiguous, eval-able serialization, deterministic
    across processes and hash seeds (float repr is the shortest
    round-trip form), and it is built in C -- an order of magnitude
    faster than the recursive encoder on these shapes.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return digest[:DIGEST_HEX_CHARS]


def fragment_validity_digest(
    component: Iterable[str],
    graph_digest_of: Dict[str, str],
    catalog: str,
    config: str,
) -> str:
    """Validity digest guarding one persistent fragment.

    Hashes the member graphs' content digests (in component order --
    the names themselves are already part of the fingerprint) together
    with the catalog and semantic-config digests, so any input the
    fingerprint does not capture invalidates the entry by changing its
    address.
    """
    return encoded_digest((
        "frag-validity",
        STORE_SCHEMA_VERSION,
        tuple(graph_digest_of[name] for name in component),
        catalog,
        config,
    ))
