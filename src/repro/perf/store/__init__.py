"""The persistent, content-addressed synthesis store.

Cross-run warm starts: the perf engine is incremental *within* a run,
but production traffic is incremental *between* runs -- a user tweaks
one deadline or swaps one catalog part and resubmits.  This package
persists synthesis artifacts on disk under a cache directory
(``CrusadeConfig.cache_dir`` / ``--cache-dir`` / ``REPRO_CACHE_DIR``)
in two content-addressed tiers:

* a **full-result tier** keyed on (spec digest, catalog digest,
  semantic config digest): an exact resubmission returns the cached
  :class:`~repro.core.report.CoSynthesisResult` in milliseconds;
* a **fragment tier** persisting the engine's per-component schedule
  fragments keyed on their value fingerprints
  (:mod:`repro.perf.fingerprint`), guarded by a validity digest over
  the member graphs' content, the catalog and the semantic config --
  a near-hit resubmission replays still-valid components and
  reschedules only what the edit invalidated.

Cooperating pieces:

* :mod:`repro.perf.store.encode` -- the canonical, process-portable
  binary encoding + SHA-256 digests everything is addressed by
  (independent of ``PYTHONHASHSEED``);
* :mod:`repro.perf.store.digests` -- content digests for specs, task
  graphs, resource catalogs, configurations and fingerprints;
* :mod:`repro.perf.store.disk` -- the versioned on-disk layout with
  atomic fsynced writes and corrupt-entry tolerance;
* :mod:`repro.perf.warmstart` -- spec diffing against the cached
  prior run and the engine/store binding.

Both tiers are byte-identity-preserving: a warm-started run produces
the same canonical result JSON as a cold run of the same inputs (the
differential suite in ``tests/perf/test_warmstart.py`` enforces it).
Reads are killed by ``CrusadeConfig.warm_start=False`` or
``REPRO_NO_WARM_START=1``; writes happen whenever a cache directory
is configured, so a kill-switched run still warms the store.
"""

from repro.perf.store.digests import (
    STORE_SCHEMA_VERSION,
    catalog_digest,
    config_digest,
    fingerprint_digest,
    graph_digest,
    graph_digests,
    spec_digest,
    value_digest,
)
from repro.perf.store.disk import (
    ENV_CACHE_DIR,
    KILL_SWITCH_ENV,
    StoreFormatError,
    SynthesisStore,
    resolve_store,
    store_reads_enabled,
    warm_start_disabled_by_env,
)
from repro.perf.store.encode import canonical_encode, encoded_digest

__all__ = [
    "ENV_CACHE_DIR",
    "KILL_SWITCH_ENV",
    "STORE_SCHEMA_VERSION",
    "StoreFormatError",
    "SynthesisStore",
    "canonical_encode",
    "catalog_digest",
    "config_digest",
    "encoded_digest",
    "fingerprint_digest",
    "graph_digest",
    "graph_digests",
    "resolve_store",
    "spec_digest",
    "store_reads_enabled",
    "value_digest",
    "warm_start_disabled_by_env",
]
