"""Canonical, process-portable binary encoding for store keys.

The persistent store addresses entries by SHA-256 digests of their
keys, so two *different processes* (different ``PYTHONHASHSEED``,
different machines, different Python patch releases) must encode the
same value to the same bytes.  ``hash()`` and ``repr()`` offer no such
guarantee; this module does, with a tiny tagged binary format over the
primitive shapes fingerprints are made of:

* ``None``, ``True``, ``False`` -- one-byte tags;
* ``int`` -- decimal digits, length-prefixed (arbitrary precision);
* ``float`` -- the 8 IEEE-754 big-endian bytes (``struct.pack('>d')``),
  so ``0.0`` and ``-0.0`` encode differently and no decimal rounding
  is involved;
* ``str`` -- UTF-8 bytes, length-prefixed;
* ``bytes`` -- raw, length-prefixed;
* ``tuple`` / ``list`` -- ``(`` items ``)`` (both sequence types share
  a tag: component fingerprints are pure tuples, and the distinction
  never carries meaning in a store key).

Every length prefix makes the encoding self-delimiting, so distinct
nested values can never collide.  Anything else (sets, dicts, objects)
is deliberately a ``TypeError``: callers reduce richer values to these
shapes first (:func:`repro.perf.store.digests.value_digest`), keeping
the canonical layer too small to drift.
"""

from __future__ import annotations

import hashlib
import struct

#: Hex digits kept from each SHA-256 digest (128 bits -- collision
#: probability is negligible while file names stay short).
DIGEST_HEX_CHARS = 32


def _encode_into(value, out: bytearray) -> None:
    """Append the canonical encoding of ``value`` to ``out``."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        digits = str(value).encode("ascii")
        out += b"I%d:" % len(digits)
        out += digits
    elif type(value) is float:
        out += b"D"
        out += struct.pack(">d", value)
    elif type(value) is str:
        data = value.encode("utf-8")
        out += b"S%d:" % len(data)
        out += data
    elif type(value) is bytes:
        out += b"B%d:" % len(value)
        out += value
    elif type(value) in (tuple, list):
        out += b"("
        for item in value:
            _encode_into(item, out)
        out += b")"
    else:
        raise TypeError(
            "cannot canonically encode %r (type %s)"
            % (value, type(value).__name__)
        )


def canonical_encode(value) -> bytes:
    """The canonical byte encoding of a primitive nested value."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def encoded_digest(value) -> str:
    """Truncated SHA-256 hex digest of ``value``'s canonical encoding."""
    return hashlib.sha256(canonical_encode(value)).hexdigest()[:DIGEST_HEX_CHARS]
