"""True multi-core candidate scoring: a persistent process pool.

The GIL made the old thread-based scorer a bookkeeping exercise --
every evaluation still serialized through one interpreter.  This
module ships pickled (spec-scope, option) work units to persistent
worker *processes*, each holding a warm per-worker
:class:`~repro.perf.engine.IncrementalEngine` whose scheduler-context
caches survive across clusters.

Workers run behind the :mod:`repro.exec` execution substrate: the
default ``pipe`` transport forks workers over duplex pickle pipes
(byte-identical to the pre-``repro.exec`` scorer), while the
``socket`` transport runs the same worker loop over length-prefixed
canonical-JSON TCP frames -- locally spawned, or *remote*: with
``worker_port`` set the scorer accepts ``repro worker --connect``
dial-ins and folds those hosts into its waves, bounds and all.

Protocol
--------

The parent pickles one *generation* blob per cluster iteration (spec,
association array, clustering, the working architecture, priorities,
the cluster, and the evaluation knobs) and tags it with a monotonic
token.  Work units carry the token, a *chunk* of up to ``batch``
consecutive options, and the link strategy; a worker that has not yet
seen the token receives the blob immediately before its first unit,
so each worker deserializes each generation at most once.  Workers
reply one list of compact verdicts per chunk -- each
``(kind, badness, prune-floor, reason, counter-deltas)`` -- never a
schedule, so IPC stays small, and batching amortizes the per-message
transport cost.  When the generation carries ``bound_abort``, the
parent additionally broadcasts the freshest incumbent badness
(``("bound", token, badness)``) to a worker right before dispatching
to it -- a transport-level broadcast, so remote scorers abort against
each other's discoveries -- and each worker folds its own infeasible
results into that *local* bound, so in-flight evaluations abort as
early as the serial loop's would (see
:class:`~repro.sched.scheduler.ScheduleAbort`); aborted evaluations
come back as ``"aborted"`` records.

Determinism
-----------

Chunks are dispatched in waves of one-per-worker and consumed
strictly in option-index order; the first feasible option wins and
the least-infeasible fallback uses the same earliest-minimum rule, so
selection is byte-identical to the serial loop *on every transport
and pool size*.  A bound a worker holds is always the badness of an
*earlier-seq* candidate, so an abort only ever discards candidates
that provably lose the ``(badness, seq)`` argmin -- stale bounds
abort a subset, never a different set.  The parent re-evaluates only
the winning (or fallback) option locally to materialize the full
verdict.  Worker counter deltas are merged in index order over every
dispatched wave, so totals are deterministic; as with the old thread
scorer, *evaluation* counters may exceed the serial counts because a
wave is always scored in full even when an early member is feasible
(workers do truncate their own chunk at its first feasible option).
``batch=1`` restores the PR-6 one-option-per-message protocol
exactly.

``CrusadeConfig.parallel_eval`` counts worker processes: ``0`` and
``1`` both mean no pool (a 1-worker pool can never beat the serial
path; see ``tests/perf/test_procpool.py``), and frontiers smaller
than :data:`MIN_FRONTIER_FACTOR` x workers are scored serially by the
caller rather than paying IPC for a handful of options.

Besides the candidate scorer, this module keeps :class:`JobWorker`:
the pipe-transport supervised worker executing arbitrary
``fn(payload, attempt)`` jobs, preserved as the compatibility surface
of the primitive the campaign runner and service pool were built on
before both moved onto :class:`~repro.exec.supervise.SupervisedWorker`
directly.
"""

from __future__ import annotations

import pickle
import threading
from typing import List, Optional, Tuple

from repro.obs.trace import Tracer
from repro.exec.frames import FrameConnection
from repro.exec.sockets import SocketTransport, WorkerListener
from repro.exec.transport import (
    PipeTransport,
    TERM_GRACE_S,  # noqa: F401  (re-export: the single escalation grace)
    TransportDead,
    WorkerTransport,
    pool_context as _pool_context,
    resolve_transport_name,
)
from repro.exec.worker import job_worker_main, welcome_message

#: Frontiers below ``workers * MIN_FRONTIER_FACTOR`` options are not
#: worth a round of IPC; the caller falls back to the serial path.
MIN_FRONTIER_FACTOR = 2

#: One scored option: kind is "apply_failed" | "pruned" | "feasible" |
#: "infeasible" | "aborted"; badness is the verdict's badness tuple
#: (None unless evaluated to completion); floor and reason are the
#: admissible prune floor and cut reason (None unless pruned) -- for
#: "aborted" records, reason is the :class:`ScheduleAbort` reason.
OptionRecord = Tuple[str, Optional[tuple], Optional[tuple], Optional[str]]


def _score_one(gen: dict, pruner, engine, option, strategy, bound=None):
    """Score one allocation option inside a worker process."""
    from repro.errors import AllocationError
    from repro.alloc.evaluate import apply_option, evaluate_architecture
    from repro.core.stages.support import coupled_graphs
    from repro.sched.scheduler import ScheduleAbort

    tracer = Tracer()
    cluster = gen["cluster"]
    trial = gen["arch"].clone()
    try:
        apply_option(
            option, trial, cluster, gen["clustering"], gen["spec"], strategy
        )
    except AllocationError:
        return ("apply_failed", None, None, None, tracer.counters.as_dict())
    graphs = (
        coupled_graphs(trial, gen["clustering"], cluster.graph)
        if gen["fast"]
        else None
    )
    if pruner is not None:
        verdict = pruner.bound(trial, option, graphs, tracer)
        if verdict is not None:
            return (
                "pruned", None, verdict.floor, verdict.reason,
                tracer.counters.as_dict(),
            )
    try:
        result = evaluate_architecture(
            gen["spec"],
            gen["assoc"],
            gen["clustering"],
            trial,
            gen["priorities"],
            preemption=gen["preemption"],
            graphs=graphs,
            tracer=tracer,
            engine=engine,
            bound=bound,
        )
    except ScheduleAbort as abort:
        return ("aborted", None, None, abort.reason, tracer.counters.as_dict())
    kind = "feasible" if result.feasible else "infeasible"
    return (kind, result.badness(), None, None, tracer.counters.as_dict())


def score_worker_main(conn, use_engine: bool, timeline: str = "auto") -> None:
    """Scorer worker loop: install generations, score chunks, reply.

    Runs identically over a forked pipe connection and a framed
    socket (:class:`~repro.exec.frames.FrameConnection`) -- messages
    arriving as JSON lists index and compare exactly like the pickled
    tuples do, and badness vectors are re-tupled where ordering
    matters.
    """
    from repro.perf.engine import IncrementalEngine
    from repro.perf.prune import CandidatePruner

    engine = IncrementalEngine(timeline=timeline) if use_engine else None
    gen: Optional[dict] = None
    gen_token = -1
    pruner = None
    bounding = False
    #: Tightest incumbent badness this worker knows for the current
    #: generation: the min of what the parent broadcast and the
    #: worker's own infeasible results -- every contributor is an
    #: earlier-seq candidate, so aborting against it is admissible.
    local_bound: Optional[tuple] = None
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg[0] == "stop":
            break
        if msg[0] == "gen":
            gen_token = msg[1]
            gen = pickle.loads(msg[2])
            pruner = None
            bounding = bool(gen.get("bound_abort", False))
            local_bound = None
            if gen["prune"]:
                pruner = CandidatePruner(
                    gen["spec"], gen["assoc"], gen["clustering"],
                    gen["cluster"],
                )
            continue
        if msg[0] == "bound":
            # ("bound", token, badness)
            if msg[1] == gen_token and msg[2] is not None:
                incoming = tuple(msg[2])
                if local_bound is None or incoming < local_bound:
                    local_bound = incoming
            continue
        # ("opts", token, start, options_chunk, strategy)
        _, token, start, chunk, strategy = msg
        if token != gen_token or gen is None:
            conn.send((start, "stale"))
            continue
        out = []
        for option in chunk:
            try:
                record = _score_one(
                    gen, pruner, engine, option, strategy,
                    bound=local_bound if bounding else None,
                )
            except Exception as exc:  # surfaced by the parent
                out.append(("error", repr(exc), None, None, {}))
                break
            out.append(record)
            kind, badness = record[0], record[1]
            if bounding and kind == "infeasible" and badness is not None:
                tightened = tuple(badness)
                if local_bound is None or tightened < local_bound:
                    local_bound = tightened
            if kind == "feasible":
                # The generation is decided; the rest of the chunk
                # could only be drained unread.
                break
        conn.send((start, out))
    conn.close()


#: Backwards-compatible private aliases (pre-``repro.exec`` names).
_worker_main = score_worker_main
_job_worker_main = job_worker_main


class PoolError(RuntimeError):
    """A worker failed or returned an inconsistent reply."""


class WorkerCrash(RuntimeError):
    """A supervised worker process died while holding a job."""


class JobWorker:
    """One supervised persistent pipe worker (compatibility surface).

    The campaign runner's original unit of fault isolation, now a
    thin wrapper over :class:`~repro.exec.transport.PipeTransport`:
    jobs are submitted over a duplex pipe, results come back over the
    same pipe, and the *parent* owns every judgement call -- per-job
    deadlines, crash detection (via :attr:`sentinel`), kill
    (the single SIGTERM -> SIGKILL escalation in
    :func:`repro.exec.transport.terminate_process`) and
    :meth:`respawn`.  A worker holds at most one job at a time
    (:attr:`busy`), which keeps supervision exact: a dead busy worker
    names exactly the job that must be retried.

    ``target`` is a ``"module:function"`` dotted name executed as
    ``fn(payload, attempt)``; it is resolved inside the worker so the
    class works under both ``fork`` and ``spawn``.
    """

    def __init__(self, target: str, ctx=None) -> None:
        """Create an unspawned worker for ``target``; see the class
        docstring for the execution contract."""
        self.target = target
        self._transport = PipeTransport(job_worker_main, (target,), ctx=ctx)
        #: (job_id, attempt, payload) of the in-flight job, or None.
        self.busy: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the worker process exists and is running."""
        return self._transport.alive

    @property
    def connection(self):
        """The parent end of the worker pipe (for ``wait()``)."""
        return self._transport._conn

    @property
    def sentinel(self):
        """The process sentinel (ready when the worker dies)."""
        proc = self._transport._proc
        return proc.sentinel if proc is not None else None

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Start the worker process (idempotent while alive)."""
        self._transport.spawn()
        self.busy = None

    def submit(self, job_id: str, attempt: int, payload) -> None:
        """Send one job to the (idle, alive) worker."""
        if self.busy is not None:
            raise PoolError("worker already holds job %r" % (self.busy[0],))
        self._transport.send(("job", job_id, attempt, payload))
        self.busy = (job_id, attempt, payload)

    def recv(self) -> tuple:
        """Receive the in-flight job's reply and mark the worker idle.

        Raises :class:`WorkerCrash` if the pipe is dead (the worker
        exited without replying).
        """
        try:
            reply = self._transport.recv()
        except TransportDead as exc:
            raise WorkerCrash(
                "worker died holding job %r"
                % (self.busy[0] if self.busy else None,)
            ) from exc
        self.busy = None
        return reply

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Terminate the worker (SIGTERM -> :data:`TERM_GRACE_S` ->
        SIGKILL via the substrate's single escalation) and drop its
        pipe."""
        self._transport.kill()
        self.busy = None

    def respawn(self) -> None:
        """Kill whatever is left of the worker and start a fresh one."""
        self.kill()
        self.spawn()

    def stop(self) -> None:
        """Politely stop an idle worker (falls back to :meth:`kill`)."""
        self._transport.stop()
        self.busy = None


class ProcessPoolScorer:
    """Wave-based multi-process scorer over allocation options."""

    def __init__(
        self,
        workers: int,
        use_engine: bool = True,
        timeline: str = "auto",
        batch: int = 1,
        transport: Optional[str] = None,
        worker_port: Optional[int] = None,
        worker_host: str = "0.0.0.0",
    ) -> None:
        """Configure a pool of ``workers`` processes (spawned lazily);
        ``use_engine`` gives each worker a warm IncrementalEngine
        building ``timeline``-mode timelines; ``batch`` options ride
        in each worker message (1 = the PR-6 protocol).  ``transport``
        picks the :mod:`repro.exec` substrate (``REPRO_EXEC_TRANSPORT``
        overrides); ``worker_port`` additionally accepts remote
        ``repro worker --connect`` dial-ins on ``worker_host``."""
        if workers < 2:
            raise ValueError(
                "a process pool needs >= 2 workers; parallel_eval of 0 "
                "or 1 must use the serial path"
            )
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.workers = workers
        self.use_engine = use_engine
        self.timeline = timeline
        self.batch = batch
        self.transport = resolve_transport_name(transport)
        self.worker_port = worker_port
        self.worker_host = worker_host
        self._transports: List[WorkerTransport] = []
        self._worker_token: List[int] = []
        self._worker_bound: List[Optional[tuple]] = []
        self._listener: Optional[WorkerListener] = None
        self._dialed: List[tuple] = []
        self._dialed_lock = threading.Lock()
        self._token = 0
        self._blob: Optional[bytes] = None
        #: Tightest incumbent badness of the current generation, from
        #: the caller's initial bound plus consumed infeasible records.
        self._gen_bound: Optional[tuple] = None
        self._gen_bounding = False

    # ------------------------------------------------------------------
    def _make_local_transport(self) -> WorkerTransport:
        """One local worker transport of the configured kind."""
        if self.transport == "socket":
            return SocketTransport(
                "score",
                {"use_engine": self.use_engine, "timeline": self.timeline},
            )
        return PipeTransport(
            score_worker_main, (self.use_engine, self.timeline)
        )

    def _ensure_started(self) -> None:
        if self._transports:
            return
        for _ in range(self.workers):
            transport = self._make_local_transport()
            transport.spawn()
            self._transports.append(transport)
            self._worker_token.append(-1)
            self._worker_bound.append(None)
        if self.worker_port is not None and self._listener is None:
            self._listener = WorkerListener(
                self.worker_host, self.worker_port, self._on_dial_in
            )
            self._listener.start()

    def _on_dial_in(self, conn: FrameConnection, hello: dict,
                    remote: str) -> None:
        """Listener-thread hook: queue a dialed-in worker for adoption."""
        with self._dialed_lock:
            self._dialed.append((conn, remote))

    def _adopt_dialed(self) -> None:
        """Welcome queued dial-ins and fold them into the wave pool."""
        with self._dialed_lock:
            pending, self._dialed = self._dialed, []
        for conn, remote in pending:
            try:
                conn.send(welcome_message(
                    "score",
                    use_engine=self.use_engine,
                    timeline=self.timeline,
                ))
            except (OSError, RuntimeError):
                conn.close()
                continue
            self._transports.append(SocketTransport.adopted(conn, remote))
            self._worker_token.append(-1)
            self._worker_bound.append(None)

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (they start lazily)."""
        return bool(self._transports)

    @property
    def pool_size(self) -> int:
        """Current wave width: local workers + adopted remotes."""
        return len(self._transports) if self._transports else self.workers

    def worth_pool(self, n_options: int) -> bool:
        """Whether a frontier is large enough to pay for IPC."""
        return n_options >= self.workers * MIN_FRONTIER_FACTOR

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProcessPoolScorer":
        """Enter the scorer's lifetime; workers still spawn lazily."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Shut the workers down, whatever ended the ``with`` block."""
        self.close()

    # ------------------------------------------------------------------
    def begin_cluster(self, payload: dict) -> int:
        """Pickle one cluster iteration's shared state; returns its
        generation token (workers receive the blob lazily)."""
        self._token += 1
        self._blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._gen_bound = None
        self._gen_bounding = bool(payload.get("bound_abort", False))
        return self._token

    def _maybe_send_bound(self, offset: int, token: int, tracer: Tracer) -> None:
        """Broadcast the freshest incumbent to ``offset`` if it is
        behind (right before dispatching to it, so the bound always
        precedes the work it tightens)."""
        if not self._gen_bounding or self._gen_bound is None:
            return
        if self._worker_bound[offset] == self._gen_bound:
            return
        self._send(offset, ("bound", token, self._gen_bound))
        self._worker_bound[offset] = self._gen_bound
        tracer.incr("pool.bound_broadcasts")

    def _send(self, offset: int, message) -> None:
        """Send to one worker; a dead transport is a pool failure."""
        try:
            self._transports[offset].send(message)
        except TransportDead as exc:
            raise PoolError(
                "scorer worker %d is unreachable: %s" % (offset, exc)
            ) from exc

    def _recv(self, offset: int):
        """Blocking receive from one worker; death is a pool failure."""
        try:
            return self._transports[offset].recv()
        except (TransportDead, EOFError, OSError) as exc:
            raise PoolError(
                "scorer worker %d died before replying: %s" % (offset, exc)
            ) from exc

    def score(
        self,
        token: int,
        options: List,
        strategy: str,
        tracer: Tracer,
        bound: Optional[tuple] = None,
    ) -> List[OptionRecord]:
        """Score ``options`` in waves of one chunk per worker; stop
        after the wave containing the first feasible option.

        Returns index-aligned records for the dispatched options (the
        caller consumes them in order and stops at the first feasible
        one; a worker that finds a feasible option mid-chunk truncates
        the chunk, and records of later chunks -- which could no
        longer be index-aligned -- are dropped: everything past a
        feasible record is unread overshoot either way).  Worker
        counter deltas are merged into ``tracer`` in index order over
        everything dispatched.  ``bound`` seeds the incumbent badness
        workers abort against; infeasible results tighten it as they
        are consumed.
        """
        if token != self._token:
            raise PoolError("stale generation token %r" % (token,))
        self._ensure_started()
        self._adopt_dialed()
        if bound is not None and self._gen_bounding:
            seed = tuple(bound)
            if self._gen_bound is None or seed < self._gen_bound:
                self._gen_bound = seed
        chunks = [
            (start, options[start:start + self.batch])
            for start in range(0, len(options), self.batch)
        ]
        width = len(self._transports)
        records: List[OptionRecord] = []
        aligned = True
        stop = False
        dispatched = 0
        waves = 0
        next_chunk = 0
        while next_chunk < len(chunks) and not stop:
            wave = chunks[next_chunk:next_chunk + width]
            next_chunk += len(wave)
            waves += 1
            for offset, (start, chunk) in enumerate(wave):
                if self._worker_token[offset] != token:
                    self._send(offset, ("gen", token, self._blob))
                    self._worker_token[offset] = token
                    self._worker_bound[offset] = None
                self._maybe_send_bound(offset, token, tracer)
                self._send(offset, ("opts", token, start, chunk, strategy))
                dispatched += len(chunk)
            for offset, (start, chunk) in enumerate(wave):
                reply = self._recv(offset)
                rstart, chunk_records = reply
                if chunk_records == "stale":
                    raise PoolError(
                        "worker %d answered stale for chunk at %d"
                        % (offset, start)
                    )
                if rstart != start or len(chunk_records) > len(chunk):
                    raise PoolError("out-of-order reply %d" % (rstart,))
                for kind, badness, floor, reason, deltas in chunk_records:
                    if kind == "error":
                        raise PoolError(
                            "worker %d failed on option in chunk %d: %s"
                            % (offset, start, badness)
                        )
                    # JSON framing turns tuples into lists; re-tuple
                    # the ordered vectors (a no-op on the pipe path).
                    if badness is not None:
                        badness = tuple(badness)
                    if floor is not None:
                        floor = tuple(floor)
                    for name, value in sorted(deltas.items()):
                        tracer.incr(name, value)
                    if aligned:
                        records.append((kind, badness, floor, reason))
                    if kind == "infeasible" and badness is not None:
                        if self._gen_bound is None or badness < self._gen_bound:
                            self._gen_bound = badness
                    if kind == "feasible":
                        stop = True
                if len(chunk_records) < len(chunk):
                    # Truncated chunk: its worker stopped at a
                    # feasible option (anything else is a protocol
                    # violation) and later indices were never scored.
                    if not chunk_records or chunk_records[-1][0] not in (
                        "feasible", "error"
                    ):
                        raise PoolError(
                            "worker %d truncated chunk %d without a "
                            "feasible option" % (offset, start)
                        )
                    aligned = False
        tracer.incr("pool.dispatched", dispatched)
        tracer.incr("pool.waves", waves)
        return records

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers (and the dial-in listener) down."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._dialed_lock:
            pending, self._dialed = self._dialed, []
        for conn, _remote in pending:
            conn.close()
        for transport in self._transports:
            try:
                transport.stop()
            except TransportDead:
                pass
        self._transports = []
        self._worker_token = []
        self._worker_bound = []
