"""True multi-core candidate scoring: a persistent process pool.

The GIL made the old thread-based scorer a bookkeeping exercise --
every evaluation still serialized through one interpreter.  This
module ships pickled (spec-scope, option) work units to persistent
worker *processes*, each holding a warm per-worker
:class:`~repro.perf.engine.IncrementalEngine` whose scheduler-context
caches survive across clusters.

Protocol
--------

The parent pickles one *generation* blob per cluster iteration (spec,
association array, clustering, the working architecture, priorities,
the cluster, and the evaluation knobs) and tags it with a monotonic
token.  Work units carry the token, a *chunk* of up to ``batch``
consecutive options, and the link strategy; a worker that has not yet
seen the token receives the blob immediately before its first unit,
so each worker deserializes each generation at most once.  Workers
reply one list of compact verdicts per chunk -- each
``(kind, badness, prune-floor, reason, counter-deltas)`` -- never a
schedule, so IPC stays small, and batching amortizes the per-message
pipe cost.  When the generation carries ``bound_abort``, the parent
additionally broadcasts the freshest incumbent badness
(``("bound", token, badness)``) to a worker right before dispatching
to it, and each worker folds its own infeasible results into that
*local* bound, so in-flight evaluations abort as early as the serial
loop's would (see :class:`~repro.sched.scheduler.ScheduleAbort`);
aborted evaluations come back as ``"aborted"`` records.

Determinism
-----------

Chunks are dispatched in waves of ``workers`` and consumed strictly
in option-index order; the first feasible option wins and the
least-infeasible fallback uses the same earliest-minimum rule, so
selection is byte-identical to the serial loop.  A bound a worker
holds is always the badness of an *earlier-seq* candidate, so an
abort only ever discards candidates that provably lose the
``(badness, seq)`` argmin -- stale bounds abort a subset, never a
different set.  The parent re-evaluates only the winning (or
fallback) option locally to materialize the full verdict.  Worker
counter deltas are merged in index order over every dispatched wave,
so totals are deterministic; as with the old thread scorer,
*evaluation* counters may exceed the serial counts because a wave is
always scored in full even when an early member is feasible (workers
do truncate their own chunk at its first feasible option).
``batch=1`` restores the PR-6 one-option-per-message protocol
exactly.

``CrusadeConfig.parallel_eval`` counts worker processes: ``0`` and
``1`` both mean no pool (a 1-worker pool can never beat the serial
path; see ``tests/perf/test_procpool.py``), and frontiers smaller
than :data:`MIN_FRONTIER_FACTOR` x workers are scored serially by the
caller rather than paying IPC for a handful of options.

Besides the candidate scorer, this module provides
:class:`JobWorker`: a single supervised persistent worker process
executing arbitrary ``fn(payload, attempt)`` jobs, with crash
detection and respawn left to the parent.  It is the process-level
building block of the campaign runner (:mod:`repro.campaign`), which
layers per-job timeouts, bounded-backoff retries and durable
checkpointing on top.
"""

from __future__ import annotations

import importlib
import multiprocessing
import pickle
import traceback
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import Tracer


def _pool_context():
    """The multiprocessing context every pool here uses.

    ``fork`` where available (workers inherit the warm interpreter),
    ``spawn`` otherwise.
    """
    return multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )

#: Frontiers below ``workers * MIN_FRONTIER_FACTOR`` options are not
#: worth a round of IPC; the caller falls back to the serial path.
MIN_FRONTIER_FACTOR = 2

#: One scored option: kind is "apply_failed" | "pruned" | "feasible" |
#: "infeasible" | "aborted"; badness is the verdict's badness tuple
#: (None unless evaluated to completion); floor and reason are the
#: admissible prune floor and cut reason (None unless pruned) -- for
#: "aborted" records, reason is the :class:`ScheduleAbort` reason.
OptionRecord = Tuple[str, Optional[tuple], Optional[tuple], Optional[str]]


def _score_one(gen: dict, pruner, engine, option, strategy, bound=None):
    """Score one allocation option inside a worker process."""
    from repro.errors import AllocationError
    from repro.alloc.evaluate import apply_option, evaluate_architecture
    from repro.core.stages.support import coupled_graphs
    from repro.sched.scheduler import ScheduleAbort

    tracer = Tracer()
    cluster = gen["cluster"]
    trial = gen["arch"].clone()
    try:
        apply_option(
            option, trial, cluster, gen["clustering"], gen["spec"], strategy
        )
    except AllocationError:
        return ("apply_failed", None, None, None, tracer.counters.as_dict())
    graphs = (
        coupled_graphs(trial, gen["clustering"], cluster.graph)
        if gen["fast"]
        else None
    )
    if pruner is not None:
        verdict = pruner.bound(trial, option, graphs, tracer)
        if verdict is not None:
            return (
                "pruned", None, verdict.floor, verdict.reason,
                tracer.counters.as_dict(),
            )
    try:
        result = evaluate_architecture(
            gen["spec"],
            gen["assoc"],
            gen["clustering"],
            trial,
            gen["priorities"],
            preemption=gen["preemption"],
            graphs=graphs,
            tracer=tracer,
            engine=engine,
            bound=bound,
        )
    except ScheduleAbort as abort:
        return ("aborted", None, None, abort.reason, tracer.counters.as_dict())
    kind = "feasible" if result.feasible else "infeasible"
    return (kind, result.badness(), None, None, tracer.counters.as_dict())


def _worker_main(conn, use_engine: bool, timeline: str = "auto") -> None:
    """Worker loop: install generations, score option chunks, reply."""
    from repro.perf.engine import IncrementalEngine
    from repro.perf.prune import CandidatePruner

    engine = IncrementalEngine(timeline=timeline) if use_engine else None
    gen: Optional[dict] = None
    gen_token = -1
    pruner = None
    bounding = False
    #: Tightest incumbent badness this worker knows for the current
    #: generation: the min of what the parent broadcast and the
    #: worker's own infeasible results -- every contributor is an
    #: earlier-seq candidate, so aborting against it is admissible.
    local_bound: Optional[tuple] = None
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg[0] == "stop":
            break
        if msg[0] == "gen":
            gen_token = msg[1]
            gen = pickle.loads(msg[2])
            pruner = None
            bounding = bool(gen.get("bound_abort", False))
            local_bound = None
            if gen["prune"]:
                pruner = CandidatePruner(
                    gen["spec"], gen["assoc"], gen["clustering"],
                    gen["cluster"],
                )
            continue
        if msg[0] == "bound":
            # ("bound", token, badness)
            if msg[1] == gen_token and msg[2] is not None:
                incoming = tuple(msg[2])
                if local_bound is None or incoming < local_bound:
                    local_bound = incoming
            continue
        # ("opts", token, start, options_chunk, strategy)
        _, token, start, chunk, strategy = msg
        if token != gen_token or gen is None:
            conn.send((start, "stale"))
            continue
        out = []
        for option in chunk:
            try:
                record = _score_one(
                    gen, pruner, engine, option, strategy,
                    bound=local_bound if bounding else None,
                )
            except Exception as exc:  # surfaced by the parent
                out.append(("error", repr(exc), None, None, {}))
                break
            out.append(record)
            kind, badness = record[0], record[1]
            if bounding and kind == "infeasible" and badness is not None:
                tightened = tuple(badness)
                if local_bound is None or tightened < local_bound:
                    local_bound = tightened
            if kind == "feasible":
                # The generation is decided; the rest of the chunk
                # could only be drained unread.
                break
        conn.send((start, out))
    conn.close()


#: Seconds :meth:`JobWorker.kill` waits after SIGTERM before
#: escalating to an unignorable SIGKILL.
TERM_GRACE_S = 5.0


class PoolError(RuntimeError):
    """A worker failed or returned an inconsistent reply."""


class WorkerCrash(RuntimeError):
    """A supervised worker process died while holding a job."""


def _job_worker_main(conn, target: str) -> None:
    """Generic persistent-worker loop for :class:`JobWorker`.

    Resolves ``target`` (a ``"module:function"`` dotted name, so it
    survives the ``spawn`` start method) and executes
    ``fn(payload, attempt)`` per submitted job, replying
    ``("ok", job_id, result)`` or ``("error", job_id, traceback)``.
    Anything that escapes this loop entirely -- ``os._exit``, a
    segfault, a kill -- is what the parent's supervision exists for.
    """
    module_name, _, fn_name = target.partition(":")
    fn = getattr(importlib.import_module(module_name), fn_name)
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg[0] == "stop":
            break
        _, job_id, attempt, payload = msg
        try:
            result = fn(payload, attempt)
        except BaseException:
            conn.send(("error", job_id, traceback.format_exc()))
        else:
            conn.send(("ok", job_id, result))
    conn.close()


class JobWorker:
    """One supervised persistent worker process.

    The campaign runner's unit of fault isolation: jobs are submitted
    over a duplex pipe, results come back over the same pipe, and the
    *parent* owns every judgement call -- per-job deadlines, crash
    detection (via :attr:`sentinel`), kill and :meth:`respawn`.  A
    worker holds at most one job at a time (:attr:`busy`), which keeps
    supervision exact: a dead busy worker names exactly the job that
    must be retried.

    ``target`` is a ``"module:function"`` dotted name executed as
    ``fn(payload, attempt)``; it is resolved inside the worker so the
    class works under both ``fork`` and ``spawn``.
    """

    def __init__(self, target: str, ctx=None) -> None:
        """Create an unspawned worker for ``target``; see the class
        docstring for the execution contract."""
        self.target = target
        self._ctx = ctx if ctx is not None else _pool_context()
        self._proc = None
        self._conn = None
        #: (job_id, attempt, payload) of the in-flight job, or None.
        self.busy: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the worker process exists and is running."""
        return self._proc is not None and self._proc.is_alive()

    @property
    def connection(self):
        """The parent end of the worker pipe (for ``wait()``)."""
        return self._conn

    @property
    def sentinel(self):
        """The process sentinel (ready when the worker dies)."""
        return self._proc.sentinel if self._proc is not None else None

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Start the worker process (idempotent while alive)."""
        if self.alive:
            return
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_job_worker_main,
            args=(child_conn, self.target),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn
        self.busy = None

    def submit(self, job_id: str, attempt: int, payload) -> None:
        """Send one job to the (idle, alive) worker."""
        if self.busy is not None:
            raise PoolError("worker already holds job %r" % (self.busy[0],))
        self._conn.send(("job", job_id, attempt, payload))
        self.busy = (job_id, attempt, payload)

    def recv(self) -> tuple:
        """Receive the in-flight job's reply and mark the worker idle.

        Raises :class:`WorkerCrash` if the pipe is dead (the worker
        exited without replying).
        """
        try:
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrash(
                "worker died holding job %r"
                % (self.busy[0] if self.busy else None,)
            ) from exc
        self.busy = None
        return reply

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Terminate the worker process and drop its pipe.

        SIGTERM first; a worker still alive after
        :data:`TERM_GRACE_S` (masked signal, uninterruptible state)
        gets an unignorable SIGKILL, so a wedged worker can never be
        leaked to run on beside its respawned replacement.
        """
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=TERM_GRACE_S)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join()
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._proc = None
        self._conn = None
        self.busy = None

    def respawn(self) -> None:
        """Kill whatever is left of the worker and start a fresh one."""
        self.kill()
        self.spawn()

    def stop(self) -> None:
        """Politely stop an idle worker (falls back to :meth:`kill`)."""
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self.kill()


class ProcessPoolScorer:
    """Wave-based multi-process scorer over allocation options."""

    def __init__(
        self,
        workers: int,
        use_engine: bool = True,
        timeline: str = "auto",
        batch: int = 1,
    ) -> None:
        """Configure a pool of ``workers`` processes (spawned lazily);
        ``use_engine`` gives each worker a warm IncrementalEngine
        building ``timeline``-mode timelines; ``batch`` options ride
        in each worker message (1 = the PR-6 protocol)."""
        if workers < 2:
            raise ValueError(
                "a process pool needs >= 2 workers; parallel_eval of 0 "
                "or 1 must use the serial path"
            )
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.workers = workers
        self.use_engine = use_engine
        self.timeline = timeline
        self.batch = batch
        self._ctx = _pool_context()
        self._procs: List = []
        self._conns: List = []
        self._worker_token: List[int] = []
        self._worker_bound: List[Optional[tuple]] = []
        self._token = 0
        self._blob: Optional[bytes] = None
        #: Tightest incumbent badness of the current generation, from
        #: the caller's initial bound plus consumed infeasible records.
        self._gen_bound: Optional[tuple] = None
        self._gen_bounding = False

    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._procs:
            return
        for _ in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.use_engine, self.timeline),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._worker_token.append(-1)
            self._worker_bound.append(None)

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (they start lazily)."""
        return bool(self._procs)

    def worth_pool(self, n_options: int) -> bool:
        """Whether a frontier is large enough to pay for IPC."""
        return n_options >= self.workers * MIN_FRONTIER_FACTOR

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProcessPoolScorer":
        """Enter the scorer's lifetime; workers still spawn lazily."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Shut the workers down, whatever ended the ``with`` block."""
        self.close()

    # ------------------------------------------------------------------
    def begin_cluster(self, payload: dict) -> int:
        """Pickle one cluster iteration's shared state; returns its
        generation token (workers receive the blob lazily)."""
        self._token += 1
        self._blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._gen_bound = None
        self._gen_bounding = bool(payload.get("bound_abort", False))
        return self._token

    def _maybe_send_bound(self, offset: int, token: int, tracer: Tracer) -> None:
        """Broadcast the freshest incumbent to ``offset`` if it is
        behind (right before dispatching to it, so the bound always
        precedes the work it tightens)."""
        if not self._gen_bounding or self._gen_bound is None:
            return
        if self._worker_bound[offset] == self._gen_bound:
            return
        self._conns[offset].send(("bound", token, self._gen_bound))
        self._worker_bound[offset] = self._gen_bound
        tracer.incr("pool.bound_broadcasts")

    def score(
        self,
        token: int,
        options: List,
        strategy: str,
        tracer: Tracer,
        bound: Optional[tuple] = None,
    ) -> List[OptionRecord]:
        """Score ``options`` in waves of ``workers`` chunks; stop
        after the wave containing the first feasible option.

        Returns index-aligned records for the dispatched options (the
        caller consumes them in order and stops at the first feasible
        one; a worker that finds a feasible option mid-chunk truncates
        the chunk, and records of later chunks -- which could no
        longer be index-aligned -- are dropped: everything past a
        feasible record is unread overshoot either way).  Worker
        counter deltas are merged into ``tracer`` in index order over
        everything dispatched.  ``bound`` seeds the incumbent badness
        workers abort against; infeasible results tighten it as they
        are consumed.
        """
        if token != self._token:
            raise PoolError("stale generation token %r" % (token,))
        self._ensure_started()
        if bound is not None and self._gen_bounding:
            seed = tuple(bound)
            if self._gen_bound is None or seed < self._gen_bound:
                self._gen_bound = seed
        chunks = [
            (start, options[start:start + self.batch])
            for start in range(0, len(options), self.batch)
        ]
        records: List[OptionRecord] = []
        aligned = True
        stop = False
        dispatched = 0
        waves = 0
        next_chunk = 0
        while next_chunk < len(chunks) and not stop:
            wave = chunks[next_chunk:next_chunk + self.workers]
            next_chunk += len(wave)
            waves += 1
            for offset, (start, chunk) in enumerate(wave):
                conn = self._conns[offset]
                if self._worker_token[offset] != token:
                    conn.send(("gen", token, self._blob))
                    self._worker_token[offset] = token
                    self._worker_bound[offset] = None
                self._maybe_send_bound(offset, token, tracer)
                conn.send(("opts", token, start, chunk, strategy))
                dispatched += len(chunk)
            for offset, (start, chunk) in enumerate(wave):
                reply = self._conns[offset].recv()
                rstart, chunk_records = reply
                if chunk_records == "stale":
                    raise PoolError(
                        "worker %d answered stale for chunk at %d"
                        % (offset, start)
                    )
                if rstart != start or len(chunk_records) > len(chunk):
                    raise PoolError("out-of-order reply %d" % (rstart,))
                for kind, badness, floor, reason, deltas in chunk_records:
                    if kind == "error":
                        raise PoolError(
                            "worker %d failed on option in chunk %d: %s"
                            % (offset, start, badness)
                        )
                    for name, value in sorted(deltas.items()):
                        tracer.incr(name, value)
                    if aligned:
                        records.append((kind, badness, floor, reason))
                    if kind == "infeasible" and badness is not None:
                        tightened = tuple(badness)
                        if self._gen_bound is None or tightened < self._gen_bound:
                            self._gen_bound = tightened
                    if kind == "feasible":
                        stop = True
                if len(chunk_records) < len(chunk):
                    # Truncated chunk: its worker stopped at a
                    # feasible option (anything else is a protocol
                    # violation) and later indices were never scored.
                    if not chunk_records or chunk_records[-1][0] not in (
                        "feasible", "error"
                    ):
                        raise PoolError(
                            "worker %d truncated chunk %d without a "
                            "feasible option" % (offset, start)
                        )
                    aligned = False
        tracer.incr("pool.dispatched", dispatched)
        tracer.incr("pool.waves", waves)
        return records

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self._worker_token = []
