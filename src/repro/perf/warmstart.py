"""Cross-run warm starts: diff a resubmission, rebind cached fragments.

Production traffic is incremental *between* runs: a user tweaks one
deadline or swaps one catalog part and resubmits.  This module is the
bridge between such a resubmission and the persistent store
(:mod:`repro.perf.store`):

* :func:`diff_against_prior` compares the new spec/catalog/config
  digests with the newest indexed prior run of the same spec name and
  reports exactly what changed (:class:`SpecDiff`) -- surfaced as the
  ``warmstart.diff`` trace event and the ``perf.store.graphs_*``
  counters;
* :func:`bind_engine` attaches a :class:`StoreBinding` to the run's
  :class:`~repro.perf.engine.IncrementalEngine`, which turns the
  engine's in-memory fragment cache into a read-through/write-through
  view of the fragment tier.  "Preloading" is lazy by design: the
  engine pulls a still-valid fragment off disk the moment an
  evaluation first needs it (counted as
  ``perf.store.fragments_preloaded``), which loads precisely the
  components the replayed decisions touch and nothing else.  Decisions
  the edit invalidated find no entry under their new validity/
  fingerprint digests and are rescheduled -- the content addressing
  *is* the invalidation rule;
* :func:`tweak_deadline` builds the canonical resubmit scenario
  (loosen one graph deadline) used by the warm-start benchmark leg,
  the CI identity job and the differential tests.

Byte-identity: a fragment loaded from disk went through the exact
pickle round-trip the process-pool scorer already performs in-run, and
it is only addressable when every scheduling input matches, so the
merged verdicts -- and therefore the synthesized architecture -- are
identical to a cold run's (``tests/perf/test_warmstart.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.spec import SystemSpec
from repro.perf.store.digests import (
    catalog_digest,
    config_digest,
    fingerprint_digest,
    fragment_validity_digest,
    graph_digests,
    spec_digest,
)
from repro.perf.store.disk import SynthesisStore, store_reads_enabled


@dataclass
class SpecDiff:
    """What changed between a resubmission and the indexed prior run."""

    #: Whether any prior run of this spec name was on record.
    prior_found: bool
    #: Graph names present in both runs whose content digests differ.
    changed: List[str] = field(default_factory=list)
    #: Graph names only in the resubmission.
    added: List[str] = field(default_factory=list)
    #: Graph names only in the prior run.
    removed: List[str] = field(default_factory=list)
    #: Graph names present in both runs with equal content digests.
    unchanged: List[str] = field(default_factory=list)
    catalog_changed: bool = False
    config_changed: bool = False

    @property
    def exact(self) -> bool:
        """True when nothing differs (the full-result tier's case)."""
        return (
            self.prior_found
            and not self.changed and not self.added and not self.removed
            and not self.catalog_changed and not self.config_changed
        )


def diff_against_prior(
    store: SynthesisStore,
    spec: SystemSpec,
    library,
    config,
    tracer=None,
) -> SpecDiff:
    """Diff ``spec`` (+ catalog/config) against its newest prior run."""
    prior = store.load_index(spec.name, tracer)
    if prior is None:
        return SpecDiff(prior_found=False)
    new_digests = graph_digests(spec)
    old_digests = prior.get("graphs") or {}
    diff = SpecDiff(prior_found=True)
    for name in spec.graph_names():
        if name not in old_digests:
            diff.added.append(name)
        elif old_digests[name] != new_digests[name]:
            diff.changed.append(name)
        else:
            diff.unchanged.append(name)
    diff.removed = sorted(set(old_digests) - set(new_digests))
    diff.catalog_changed = prior.get("catalog_digest") != catalog_digest(library)
    diff.config_changed = prior.get("config_digest") != config_digest(config)
    return diff


@dataclass
class StoreBinding:
    """One run's view of the fragment tier, attached to its engine.

    Holds everything a fragment lookup needs besides the in-memory
    fingerprint: the per-graph content digests of *this run's* spec
    and the catalog/config digests, combined per component into the
    validity digest that makes cross-run reuse safe.  ``reads`` is
    resolved once per run from ``CrusadeConfig.warm_start`` and the
    ``REPRO_NO_WARM_START`` kill switch; writes are unconditional.
    """

    store: SynthesisStore
    graph_digest_of: Dict[str, str]
    catalog: str
    config: str
    reads: bool = True
    #: Graph names the warm-start diff marked changed/added relative to
    #: the indexed prior run.  Fragments of components touching these
    #: graphs are neither read nor written through.  Reads cannot hit:
    #: this run addresses such a component by a validity digest built
    #: from the *new* graph content, while every persisted entry was
    #: stored under the old one -- probing disk (one fingerprint digest
    #: over a large key plus a stat) per evaluation is pure waste, and
    #: on coupled workloads where the edit touches most components it
    #: is the difference between a warm run that breaks even and one
    #: that loses to cold.  Writes would only ever be addressable by a
    #: byte-identical future resubmission, which the full-result tier
    #: already serves in milliseconds.  Cold runs (no prior) leave this
    #: empty and read/save everything.
    invalidated: frozenset = frozenset()

    def __post_init__(self) -> None:
        """Start the validity and fingerprint digest memos empty."""
        self._validity_memo: Dict[Tuple[str, ...], str] = {}
        self._fp_memo: Dict[tuple, str] = {}

    def _validity(self, component: List[str]) -> str:
        """Memoized validity digest of one component."""
        memo_key = tuple(component)
        validity = self._validity_memo.get(memo_key)
        if validity is None:
            validity = fragment_validity_digest(
                component, self.graph_digest_of, self.catalog, self.config
            )
            self._validity_memo[memo_key] = validity
        return validity

    def _fingerprint(self, key: tuple) -> str:
        """Memoized fingerprint digest (a fragment that misses on load
        is usually saved moments later under the same key)."""
        digest = self._fp_memo.get(key)
        if digest is None:
            digest = fingerprint_digest(key)
            self._fp_memo[key] = digest
        return digest

    def _touches_invalidated(self, component: List[str]) -> bool:
        """Whether ``component`` contains an edited/added graph."""
        return bool(self.invalidated) and any(
            name in self.invalidated for name in component
        )

    def load(self, key: tuple, component: List[str], tracer):
        """A still-valid persisted fragment for ``key``, or ``None``.

        Components the diff invalidated are not probed -- a guaranteed
        miss; see :attr:`invalidated`.
        """
        if not self.reads or self._touches_invalidated(component):
            return None
        fragment = self.store.load_fragment(
            self._fingerprint(key), self._validity(component), tracer
        )
        if fragment is not None:
            tracer.incr("perf.store.fragments_preloaded")
        return fragment

    def save(self, key: tuple, component: List[str], fragment, tracer) -> None:
        """Write-through one freshly built fragment.

        Skipped for components the warm-start diff invalidated -- see
        :attr:`invalidated`.
        """
        if self._touches_invalidated(component):
            return
        self.store.save_fragment(
            self._fingerprint(key), self._validity(component), fragment, tracer
        )


def bind_engine(
    engine,
    store: SynthesisStore,
    spec: SystemSpec,
    library,
    config,
    tracer,
) -> Optional[SpecDiff]:
    """Bind ``engine``'s fragment cache to the persistent store.

    Computes the run's digests once, diffs against the indexed prior
    run (reported via the ``warmstart.diff`` event and
    ``perf.store.graphs_changed`` / ``graphs_unchanged`` counters when
    a prior exists), and attaches the read-through/write-through
    :class:`StoreBinding`.  Returns the diff, or ``None`` when the
    engine is absent (``incremental=False`` runs have no fragment
    cache to warm; the full-result tier still applies to them).
    """
    if engine is None:
        return None
    binding = StoreBinding(
        store=store,
        graph_digest_of=graph_digests(spec),
        catalog=catalog_digest(library),
        config=config_digest(config),
        reads=store_reads_enabled(config),
    )
    engine.bind_store(binding)
    diff = diff_against_prior(store, spec, library, config, tracer)
    if diff.prior_found:
        binding.invalidated = frozenset(diff.changed) | frozenset(diff.added)
    if diff.prior_found and tracer is not None and tracer.enabled:
        tracer.incr("perf.store.graphs_changed",
                    len(diff.changed) + len(diff.added) + len(diff.removed))
        tracer.incr("perf.store.graphs_unchanged", len(diff.unchanged))
        tracer.event(
            "warmstart.diff",
            system=spec.name,
            changed=sorted(diff.changed),
            added=sorted(diff.added),
            removed=sorted(diff.removed),
            unchanged=len(diff.unchanged),
            catalog_changed=diff.catalog_changed,
            config_changed=diff.config_changed,
        )
    return diff


def index_record(spec: SystemSpec, library, config, result_key: str) -> dict:
    """The index payload :func:`repro.core.crusade.crusade` stores
    after a completed run (what the next resubmission diffs against)."""
    return {
        "result_key": result_key,
        "spec_digest": spec_digest(spec),
        "catalog_digest": catalog_digest(library),
        "config_digest": config_digest(config),
        "graphs": graph_digests(spec),
    }


def tweak_deadline(
    spec: SystemSpec, graph_name: Optional[str] = None, factor: float = 1.05
) -> SystemSpec:
    """The canonical resubmit scenario: one graph deadline, loosened.

    Round-trips the spec through its JSON form (so the original is
    untouched) and multiplies one graph's end-to-end deadline by
    ``factor`` -- the first deadline-bearing graph when ``graph_name``
    is ``None``.  Loosening (the default ``factor`` > 1) keeps a
    feasible spec feasible, which is what the benchmark's speedup
    comparison and the CI identity job want.
    """
    from repro.io.spec_json import spec_from_dict, spec_to_dict

    payload = spec_to_dict(spec)
    for graph in payload["graphs"]:
        if graph_name is not None and graph["name"] != graph_name:
            continue
        if graph["deadline"] is None:
            continue
        graph["deadline"] = graph["deadline"] * factor
        return spec_from_dict(payload)
    raise ValueError(
        "no graph with a deadline to tweak (graph_name=%r)" % (graph_name,)
    )
