"""The ERUF/EPUF delay-management policy.

Section 4.5: "while allocating tasks to FPGAs/CPLDs, we ensure that we
do not utilize more than 70 % of resources (PFUs/CLBs/flip-flops) and
80 % of the pins."  Those percentages guarantee the delay constraints
used during scheduling hold after the mapped functions are synthesized
and routed (experimentally verified by Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.resources.pe import AsicType, PEType, PpeType
from repro.units import GATES_PER_PFU


@dataclass(frozen=True)
class DelayPolicy:
    """Utilization caps applied to programmable devices.

    Attributes
    ----------
    eruf:
        Effective resource utilization factor: fraction of a device's
        PFUs the allocator may consume.  Paper default 0.70.
    epuf:
        Effective pin utilization factor: fraction of a device's pins
        the allocator may consume.  Paper default 0.80.
    apply_to_asics:
        ASICs are custom-routed, so the caps do not apply to them by
        default; the ablation benchmark can turn this on.
    """

    eruf: float = 0.70
    epuf: float = 0.80
    apply_to_asics: bool = False

    def __post_init__(self) -> None:
        for label in ("eruf", "epuf"):
            value = getattr(self, label)
            if not 0.0 < value <= 1.0:
                raise SpecificationError(
                    "%s must be in (0, 1], got %r" % (label.upper(), value)
                )

    # ------------------------------------------------------------------
    def usable_pfus(self, ppe: PpeType) -> int:
        """PFUs of ``ppe`` the allocator may use."""
        return int(ppe.pfus * self.eruf)

    def usable_gates(self, pe_type: PEType) -> int:
        """Gate capacity of a hardware PE under this policy."""
        if isinstance(pe_type, PpeType):
            return self.usable_pfus(pe_type) * GATES_PER_PFU
        if isinstance(pe_type, AsicType):
            if self.apply_to_asics:
                return int(pe_type.gates * self.eruf)
            return pe_type.gates
        raise SpecificationError(
            "PE type %r has no gate capacity" % (pe_type.name,)
        )

    def usable_pins(self, pe_type: PEType) -> int:
        """Pin capacity of a hardware PE under this policy."""
        if isinstance(pe_type, PpeType):
            return int(pe_type.pins * self.epuf)
        if isinstance(pe_type, AsicType):
            if self.apply_to_asics:
                return int(pe_type.pins * self.epuf)
            return pe_type.pins
        raise SpecificationError("PE type %r has no pins" % (pe_type.name,))

    def admits(self, pe_type: PEType, gates_used: int, pins_used: int) -> bool:
        """True when the given usage respects the caps on ``pe_type``."""
        return (
            gates_used <= self.usable_gates(pe_type)
            and pins_used <= self.usable_pins(pe_type)
        )
