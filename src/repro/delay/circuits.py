"""The ten functional blocks of Table 1.

The paper measures delay increase versus ERUF for ten real circuits
(18-84 PFUs).  The originals are proprietary; these synthetic stand-ins
match the published PFU counts and are tuned (net density, depth) so
the qualitative outcome matches the table: zero delay increase at
ERUF = 0.70, monotone growth above, and three circuits (r2d2p, cv46,
wamxp) unroutable at ERUF = 1.00.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SpecificationError
from repro.delay.pnr import Circuit

#: name -> (n_pfus, pins, seed, net_density, depth).  Densities are
#: calibrated so channel occupancy at the reference ERUF of 0.70 ranges
#: from ~0.44 (cvs1) to ~0.66 (the three table-unroutable circuits),
#: which places the overflow crossing between ERUF 0.95 and 1.00 for
#: exactly r2d2p, cv46 and wamxp.
_TABLE1_SPECS = {
    "cvs1": (18, 20, 11, 0.583, 6),
    "cvs2": (20, 24, 12, 0.575, 6),
    "xtrs1": (36, 30, 13, 0.125, 8),
    "xtrs2": (40, 32, 14, 0.288, 8),
    "rnvk": (48, 36, 15, 0.094, 9),
    "fcsdp": (35, 28, 16, 0.300, 8),
    "r2d2p": (46, 40, 17, 0.450, 9),
    "cv46": (74, 48, 18, 0.270, 10),
    "wamxp": (84, 52, 19, 0.280, 11),
    "pewxfm": (47, 34, 20, 0.160, 9),
}

#: The circuits the paper reports as "Not routable" at ERUF = 1.00.
UNROUTABLE_AT_FULL = ("r2d2p", "cv46", "wamxp")

#: Table-1 circuit names in the paper's row order.
TABLE1_CIRCUITS: List[str] = list(_TABLE1_SPECS)


def table1_circuit(name: str) -> Circuit:
    """Build one of the ten Table-1 circuits by name."""
    try:
        n_pfus, pins, seed, density, depth = _TABLE1_SPECS[name]
    except KeyError:
        raise SpecificationError(
            "unknown Table-1 circuit %r (choose from %s)"
            % (name, ", ".join(TABLE1_CIRCUITS))
        ) from None
    return Circuit(
        name=name,
        n_pfus=n_pfus,
        pins=pins,
        seed=seed,
        net_density=density,
        depth=depth,
    )


def all_table1_circuits() -> Dict[str, Circuit]:
    """All ten circuits, keyed by name, in paper row order."""
    return {name: table1_circuit(name) for name in TABLE1_CIRCUITS}
