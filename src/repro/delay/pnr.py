"""Deterministic place-and-route delay simulator.

The paper validates the ERUF/EPUF caps by synthesizing real functional
blocks onto devices at varying utilization and measuring post-route
delay (Table 1).  We do not have 1997 FPGA tooling, so this module
implements the closest synthetic equivalent: a placement of a
pseudo-netlist onto a PFU grid combined with an analytic congestion
model of the routing fabric.

Model
-----
* A *circuit* is a pseudo-netlist: ``n_pfus`` logic cells connected by
  multi-terminal nets generated deterministically from a seed with a
  tunable net density (a Rent's-rule-flavoured knob).  Dense
  interconnect is what makes three Table-1 circuits unroutable at
  100 % utilization.
* *Ideal placement* is a deterministic connectivity-driven spiral:
  cells ordered by BFS from the highest-degree cell, placed outward
  from the centre of a compact ``ceil(sqrt(n))``-square layout.  Net
  spans (HPWL) measured on this placement give the circuit's intrinsic
  wirelength.
* *Utilization effects.*  Mapping the circuit at resource utilization
  ``eruf`` means the device provides ``n/eruf`` cells:

  - geometric spread: cell pitch distances scale by ``1/sqrt(eruf)``
    (more whitespace, longer but uncongested wires);
  - placement degradation: above 70 % utilization the placer runs out
    of freedom and cells land away from their ideal sites; modelled as
    a displacement noise ``sigma(eruf)`` that grows sharply toward
    100 %, lengthening every net by a smooth analytic amount;
  - congestion: channel occupancy is total routed wirelength over
    fabric track supply; pin utilization beyond 60 % erodes supply
    (the I/O ring claims perimeter channels).  Nets crossing a
    congested fabric detour, stretching delay; occupancy beyond the
    overflow limit makes the circuit *unroutable* (Table 1's
    "Not routable").

* The circuit delay is logic depth times cell delay plus per-level
  average net delay.  Table 1's *delay increase* at a utilization is
  measured relative to the same circuit routed at the reference ERUF
  of 0.70, so the model reports 0.0 there by construction -- matching
  how the paper normalizes against the delay constraint used during
  co-synthesis.

Everything is a pure function of (circuit, eruf, epuf, device): no
global state, no wall-clock, no un-seeded randomness.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import RoutingError, SpecificationError


@dataclass(frozen=True)
class Circuit:
    """A synthetic functional block to be placed and routed.

    Attributes
    ----------
    name:
        Circuit name (Table 1 uses cvs1, xtrs1, ...).
    n_pfus:
        Logic-cell count.
    pins:
        External pins the circuit uses.
    seed:
        Netlist generation seed.
    net_density:
        Average extra nets per cell beyond the spanning connectivity.
    depth:
        Logic depth in cell levels (critical-path length).
    """

    name: str
    n_pfus: int
    pins: int
    seed: int = 0
    net_density: float = 0.6
    depth: int = 8

    def __post_init__(self) -> None:
        if self.n_pfus < 2:
            raise SpecificationError("circuit needs at least 2 PFUs")
        if self.pins < 1:
            raise SpecificationError("circuit needs at least 1 pin")
        if self.net_density < 0:
            raise SpecificationError("net density must be non-negative")
        if self.depth < 1:
            raise SpecificationError("depth must be at least 1")

    def nets(self) -> List[Tuple[int, ...]]:
        """Generate the deterministic pseudo-netlist.

        Every cell beyond the first gets one net binding it to an
        earlier cell (spanning connectivity), then ``net_density x
        n_pfus`` extra nets with 2-4 terminals are added.
        """
        rng = random.Random((self.seed << 16) ^ self.n_pfus)
        nets: List[Tuple[int, ...]] = []
        for cell in range(1, self.n_pfus):
            # Locality bias: prefer recent cells, like synthesized logic.
            lo = max(0, cell - 8)
            driver = rng.randint(lo, cell - 1)
            nets.append((driver, cell))
        extra = int(round(self.net_density * self.n_pfus))
        for _ in range(extra):
            fanout = rng.randint(2, 4)
            terminals = tuple(
                sorted({rng.randrange(self.n_pfus) for _ in range(fanout)})
            )
            if len(terminals) >= 2:
                nets.append(terminals)
        return nets


@dataclass(frozen=True)
class Device:
    """Routing-fabric parameters for the simulator.

    Attributes
    ----------
    tracks_per_cell:
        Routing tracks per channel per cell row of the device.
    cell_delay:
        Logic delay per cell, nanoseconds (only ratios matter).
    wire_delay_per_unit:
        Wire delay per cell pitch of routed length, ns.
    congestion_knee:
        Channel occupancy where detours begin.
    detour_gain / detour_power:
        Detour factor = 1 + gain * (occupancy excess over knee) **
        power; steep because routers saturate abruptly.
    overflow_limit:
        Channel occupancy above which routing fails outright.
    scatter_gain / scatter_pole:
        Placement displacement sigma(eruf) = gain * (eruf - 0.70) /
        (pole - eruf) above 70 % utilization, in cell pitches.
    """

    tracks_per_cell: float = 5.0
    cell_delay: float = 3.0
    wire_delay_per_unit: float = 1.4
    congestion_knee: float = 0.47
    detour_gain: float = 15.0
    detour_power: float = 2.0
    overflow_limit: float = 0.905
    scatter_step: float = 0.3
    scatter_slope: float = 1.2

    def __post_init__(self) -> None:
        if self.tracks_per_cell <= 0:
            raise SpecificationError("device needs positive track supply")
        if self.overflow_limit <= self.congestion_knee:
            raise SpecificationError("overflow limit must exceed the knee")
        if self.scatter_step < 0 or self.scatter_slope < 0:
            raise SpecificationError("scatter parameters must be non-negative")

    def scatter_sigma(self, eruf: float) -> float:
        """Placement displacement (cell pitches) forced by utilization.

        Zero at or below 70 % -- the placer still has the whitespace to
        realize its ideal placement; ramps to ``scatter_step`` by 75 %
        (the placer first loses its preferred sites), then climbs
        linearly as utilization squeezes out remaining freedom.
        """
        if eruf <= 0.70:
            return 0.0
        if eruf <= 0.75:
            return self.scatter_step * (eruf - 0.70) / 0.05
        return self.scatter_step + self.scatter_slope * (eruf - 0.75)

    def detour(self, occupancy: float) -> float:
        """Wirelength stretch factor at a given channel occupancy."""
        excess = max(0.0, occupancy - self.congestion_knee)
        return 1.0 + self.detour_gain * excess**self.detour_power


@dataclass
class PnRResult:
    """Outcome of one place-and-route run."""

    circuit: str
    eruf: float
    epuf: float
    grid_side: int
    delay_ns: float
    max_congestion: float
    total_wirelength: float
    routable: bool = True


def _spiral_positions(side: int) -> List[Tuple[int, int]]:
    """Compact-grid coordinates ordered outward from the centre."""
    cells = [(x, y) for x in range(side) for y in range(side)]
    centre = (side - 1) / 2.0
    cells.sort(
        key=lambda c: (abs(c[0] - centre) + abs(c[1] - centre), c[0], c[1])
    )
    return cells


def _bfs_order(n_cells: int, nets: Sequence[Tuple[int, ...]]) -> List[int]:
    """Cells ordered by BFS from the highest-degree cell, so connected
    logic is placed contiguously."""
    adjacency: Dict[int, set] = {i: set() for i in range(n_cells)}
    for net in nets:
        for a in net:
            for b in net:
                if a != b:
                    adjacency[a].add(b)
    order: List[int] = []
    visited = set()
    remaining = sorted(range(n_cells), key=lambda c: (-len(adjacency[c]), c))
    for start in remaining:
        if start in visited:
            continue
        queue = deque([start])
        visited.add(start)
        while queue:
            cell = queue.popleft()
            order.append(cell)
            for neighbour in sorted(adjacency[cell]):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
    return order


def _ideal_spans(circuit: Circuit) -> List[Tuple[float, float]]:
    """Per-net (x span, y span) on the ideal compact placement, in
    cell pitches.  Pure function of the circuit."""
    nets = circuit.nets()
    order = _bfs_order(circuit.n_pfus, nets)
    compact_side = math.ceil(math.sqrt(circuit.n_pfus))
    positions = _spiral_positions(compact_side)
    placement = {cell: positions[i] for i, cell in enumerate(order)}
    spans: List[Tuple[float, float]] = []
    for net in nets:
        xs = [placement[t][0] for t in net]
        ys = [placement[t][1] for t in net]
        spans.append((float(max(xs) - min(xs)), float(max(ys) - min(ys))))
    return spans


def _scattered_span(span: float, sigma: float) -> float:
    """Expected net span after both endpoints move by N(0, sigma).

    The span difference gains noise of standard deviation
    ``sigma * sqrt(2)``; for a span s the expected magnitude composes
    as ``sqrt(s^2 + (c * sigma)^2)`` with ``c = 2 * sqrt(2/pi) *
    sqrt(2) ~= 2.26`` (mean absolute deviation of the difference,
    applied in quadrature so short nets grow more than long ones,
    as observed in congested placements).
    """
    c = 2.2567583341910254  # 2 * sqrt(2/pi) * sqrt(2)
    return math.sqrt(span * span + (c * sigma) ** 2) if sigma > 0 else span


def place_and_route(
    circuit: Circuit,
    eruf: float,
    epuf: float = 0.80,
    device: Device = Device(),
) -> PnRResult:
    """Place and route ``circuit`` at the given utilizations.

    Raises :class:`RoutingError` when the fabric's channel occupancy
    exceeds the device overflow limit (the circuit is not routable at
    this utilization).
    """
    if not 0.0 < eruf <= 1.0:
        raise SpecificationError("ERUF must be in (0, 1], got %r" % (eruf,))
    if not 0.0 < epuf <= 1.0:
        raise SpecificationError("EPUF must be in (0, 1], got %r" % (epuf,))

    spans = _ideal_spans(circuit)
    sigma = device.scatter_sigma(eruf)
    compact_side = math.ceil(math.sqrt(circuit.n_pfus))
    device_side = compact_side / math.sqrt(eruf)
    spread = 1.0 / math.sqrt(eruf)

    # Total wirelength on the device, in cell pitches: ideal spans
    # stretched by placement scatter, then spread geometrically.
    total_wirelength = 0.0
    for sx, sy in spans:
        total_wirelength += (
            _scattered_span(sx, sigma) + _scattered_span(sy, sigma) + 1.0
        ) * spread

    # Fabric supply: horizontal plus vertical channel wiring, each
    # direction offering `tracks_per_cell * side` tracks of length
    # `side`.  Occupancy is routed wirelength over that supply.  Pin
    # utilization beyond 60 % erodes supply: the I/O ring's escape
    # routing claims perimeter tracks.
    supply = 2.0 * device.tracks_per_cell * device_side * device_side
    pin_pressure = max(0.0, epuf - 0.60) / 0.40
    supply *= 1.0 - 0.18 * pin_pressure
    occupancy = total_wirelength / supply

    if occupancy > device.overflow_limit:
        raise RoutingError(
            "circuit %r not routable at ERUF=%.2f EPUF=%.2f "
            "(channel occupancy %.2f > %.2f)"
            % (circuit.name, eruf, epuf, occupancy, device.overflow_limit)
        )

    detour = device.detour(occupancy)
    mean_net_delay = (
        total_wirelength / max(1, len(spans))
    ) * device.wire_delay_per_unit * detour
    delay_ns = circuit.depth * (device.cell_delay + mean_net_delay)

    return PnRResult(
        circuit=circuit.name,
        eruf=eruf,
        epuf=epuf,
        grid_side=int(math.ceil(device_side)),
        delay_ns=delay_ns,
        max_congestion=occupancy,
        total_wirelength=total_wirelength,
        routable=True,
    )


def delay_increase(
    circuit: Circuit,
    eruf: float,
    epuf: float = 0.80,
    reference_eruf: float = 0.70,
    device: Device = Device(),
) -> float:
    """Percentage delay increase at ``eruf`` relative to the reference
    utilization (Table 1's metric).

    Raises :class:`RoutingError` when the circuit is unroutable at
    ``eruf`` (the table's "Not routable").  Negative differences clamp
    to 0.0: running *below* the reference can only be as fast.
    """
    reference = place_and_route(circuit, reference_eruf, epuf, device)
    routed = place_and_route(circuit, eruf, epuf, device)
    increase = (routed.delay_ns / reference.delay_ns - 1.0) * 100.0
    return max(0.0, increase)
