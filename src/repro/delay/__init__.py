"""Delay management for programmable devices (Section 4.5, Table 1).

High utilization of PFUs and pins forces routers into detours that can
violate the delay constraints used during co-synthesis.  CRUSADE caps
effective resource utilization (ERUF = 70 %) and effective pin
utilization (EPUF = 80 %) so post-route delays never exceed the
execution-time vector.  This package provides the policy object the
allocator consults plus a deterministic place-and-route simulator that
reproduces the phenomenon Table 1 measures.
"""

from repro.delay.model import DelayPolicy
from repro.delay.pnr import Circuit, Device, PnRResult, place_and_route, delay_increase
from repro.delay.circuits import TABLE1_CIRCUITS, table1_circuit

__all__ = [
    "DelayPolicy",
    "Circuit",
    "Device",
    "PnRResult",
    "place_and_route",
    "delay_increase",
    "TABLE1_CIRCUITS",
    "table1_circuit",
]
