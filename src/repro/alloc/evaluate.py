"""Applying and evaluating allocation options (the inner loop).

``apply_option`` realizes one allocation-array entry on an
architecture -- either a clone, or the working architecture itself via
``apply_option_cow``'s revertible copy-on-write overlay; see
:mod:`repro.perf.cow`.  ``evaluate_architecture`` runs the scheduler
and finish-time estimation and wraps the verdict for the
allocation-evaluation step, which compares candidates on total dollar
cost (Section 5).  When an :class:`~repro.perf.engine.IncrementalEngine`
is supplied, scheduling reuses cached per-component fragments instead
of starting from scratch.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import AllocationError
from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resources.link import LinkType
from repro.sched.finish_time import DeadlineReport, evaluate_deadlines
from repro.sched.scheduler import Schedule, ScheduleRequest, build_schedule
from repro.alloc.array import AllocationKind, AllocationOption

#: (library id, strategy) -> (library n_links, chosen LinkType).  The
#: library is immutable during a synthesis run; keying by identity and
#: double-checking the link count keeps a mutated-library test honest.
_link_type_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_link_type_lock = threading.Lock()


def choose_link_type(arch: Architecture, strategy: str = "cheapest") -> LinkType:
    """The link type new connections use.

    ``"cheapest"`` minimizes instance-plus-two-ports dollar cost;
    ``"fastest"`` minimizes the transfer time of a representative
    256-byte message.  The CRUSADE driver retries a failed cluster
    with the fastest strategy before giving up.

    Memoized per (library, strategy): the choice depends only on the
    link library, and the innermost loop used to re-sort it for every
    applied option.
    """
    library = arch.library
    links = library.links_by_cost()
    with _link_type_lock:
        per_library = _link_type_cache.setdefault(library, {})
        cached = per_library.get(strategy)
        if cached is not None and cached[0] == len(links):
            return cached[1]
    if not links:
        raise AllocationError("resource library has no link types")
    if strategy == "fastest":
        chosen = min(links, key=lambda l: (l.comm_time(256), l.name))
    elif strategy == "cheapest":
        chosen = min(links, key=lambda l: (l.instance_cost(2), l.name))
    else:
        raise AllocationError("unknown link strategy %r" % (strategy,))
    with _link_type_lock:
        per_library[strategy] = (len(links), chosen)
    return chosen


def _connect_cluster_edges(
    arch: Architecture,
    cluster: Cluster,
    pe: PEInstance,
    clustering: ClusteringResult,
    spec: SystemSpec,
    link_type: LinkType,
    journal: Optional[list] = None,
) -> None:
    """Ensure links exist for every allocated inter-PE edge touching
    the cluster."""
    graph = spec.graph(cluster.graph)
    member = set(cluster.task_names)
    neighbours: Set[str] = set()
    for task_name in cluster.task_names:
        for other in graph.predecessors(task_name):
            if other not in member:
                neighbours.add(other)
        for other in graph.successors(task_name):
            if other not in member:
                neighbours.add(other)
    peer_pe_ids: Set[str] = set()
    for other in sorted(neighbours):
        other_cluster = clustering.cluster_of(cluster.graph, other)
        if not arch.is_allocated(other_cluster.name):
            continue
        peer_id, _ = arch.placement_of(other_cluster.name)
        if peer_id != pe.id:
            peer_pe_ids.add(peer_id)
    for peer_id in sorted(peer_pe_ids):
        arch.connect(pe.id, peer_id, link_type, journal=journal)


def apply_option(
    option: AllocationOption,
    arch: Architecture,
    cluster: Cluster,
    clustering: ClusteringResult,
    spec: SystemSpec,
    link_strategy: str = "cheapest",
    journal: Optional[list] = None,
) -> PEInstance:
    """Realize ``option`` on ``arch`` (a clone, or the working
    architecture when a ``journal`` records the mutations for
    copy-on-write reversal).

    Returns the PE instance now hosting the cluster.
    """
    if option.kind is AllocationKind.NEW_PE:
        pe_type = arch.library.pe_type(option.pe_type_name)
        had_counter = pe_type.name in arch._counters
        pe = arch.new_pe(pe_type)
        if journal is not None:
            journal.append(("new_pe", pe.id, pe_type.name, had_counter))
        mode_index = 0
    else:
        pe = arch.pe(option.pe_id)
        if option.kind is AllocationKind.NEW_MODE:
            mode_index = pe.new_mode().index
            if journal is not None:
                journal.append(("new_mode", pe.id))
        else:
            mode_index = option.mode_index if option.mode_index is not None else 0
    arch.allocate_cluster(
        cluster.name,
        pe.id,
        mode_index,
        gates=cluster.area_gates,
        pins=cluster.pins,
        memory=cluster.memory,
    )
    if journal is not None:
        journal.append(
            ("alloc", cluster.name, cluster.area_gates, cluster.pins,
             cluster.memory)
        )
    # Replicate overlapping residents into the new mode (Figure 2(e)).
    for resident_name in option.replicate:
        resident = clustering.clusters[resident_name]
        pe.add_replica(
            resident_name,
            mode_index,
            gates=resident.area_gates,
            pins=resident.pins,
        )
        if journal is not None:
            journal.append(
                ("replica", pe.id, resident_name, mode_index,
                 resident.area_gates, resident.pins)
            )
    link_type = choose_link_type(arch, link_strategy)
    _connect_cluster_edges(
        arch, cluster, pe, clustering, spec, link_type, journal=journal
    )
    return pe


def apply_option_cow(
    option: AllocationOption,
    arch: Architecture,
    cluster: Cluster,
    clustering: ClusteringResult,
    spec: SystemSpec,
    link_strategy: str = "cheapest",
):
    """Apply ``option`` to ``arch`` *in place* as a revertible overlay.

    Returns an :class:`~repro.perf.cow.AppliedOption` handle; call
    ``revert()`` to restore the pre-apply state exactly, or keep the
    architecture as-is to commit.  A failed application is rolled back
    before the exception propagates.
    """
    from repro.perf.cow import AppliedOption, undo_journal

    journal: list = []
    try:
        pe = apply_option(
            option, arch, cluster, clustering, spec, link_strategy,
            journal=journal,
        )
    except Exception:
        undo_journal(arch, journal)
        raise
    return AppliedOption(arch, journal, pe)


@dataclass
class EvalResult:
    """Verdict on one candidate architecture."""

    arch: Architecture
    schedule: Schedule
    report: DeadlineReport
    cost: float

    @property
    def feasible(self) -> bool:
        """Deadlines met and no resource overloaded."""
        return self.report.all_met

    def badness(self) -> tuple:
        """(infeasibility, cost) ordering for fallback selection."""
        misses, lateness = self.report.badness()
        return (misses, lateness, self.cost)


def evaluate_architecture(
    spec: SystemSpec,
    assoc: AssociationArray,
    clustering: ClusteringResult,
    arch: Architecture,
    priorities: Dict[str, Dict[str, float]],
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None,
    preemption: bool = True,
    graphs: Optional[List[str]] = None,
    tracer: Tracer = NULL_TRACER,
    engine=None,
    bound: Optional[tuple] = None,
) -> EvalResult:
    """Schedule ``arch`` and wrap the finish-time verdict.

    ``graphs`` restricts scheduling and verification to a subset (the
    fast inner-loop path); the driver always re-validates the final
    architecture with the full graph set.  ``engine`` (an
    :class:`~repro.perf.engine.IncrementalEngine`) reuses cached
    per-component schedule fragments; the verdict is byte-identical to
    the from-scratch path either way.  ``bound`` (an incumbent badness
    tuple) enables bounded search: scheduling raises
    :class:`~repro.sched.scheduler.ScheduleAbort` the moment the
    candidate provably loses to the incumbent -- callers passing a
    bound must be prepared to discard the candidate on that exception.
    """
    tracer.incr("alloc.evaluations")
    if graphs is not None:
        tracer.incr("alloc.evaluations.scoped")
        scoped_spec, scoped_assoc = _scope(spec, assoc, graphs, tracer)
    else:
        scoped_spec, scoped_assoc = spec, assoc
    if engine is not None:
        schedule, report = engine.evaluate(
            scoped_spec, scoped_assoc, clustering, arch, priorities,
            boot_time_fn, preemption, tracer, bound=bound,
        )
    else:
        request = ScheduleRequest(
            spec=scoped_spec,
            assoc=scoped_assoc,
            clustering=clustering,
            arch=arch,
            priorities=priorities,
            boot_time_fn=boot_time_fn,
            preemption=preemption,
            tracer=tracer,
            bound=bound,
        )
        schedule = build_schedule(request)
        report = evaluate_deadlines(schedule, scoped_spec, scoped_assoc)
    return EvalResult(arch=arch, schedule=schedule, report=report, cost=arch.cost)


#: Per-spec bound on memoized subset specifications; pathological
#: coupled-set churn evicts least-recently-used entries instead of
#: growing without bound.
SCOPE_CACHE_MAX_ENTRIES = 64

_scope_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_scope_lock = threading.Lock()


def _scope(
    spec: SystemSpec,
    assoc: AssociationArray,
    graphs: List[str],
    tracer: Tracer = NULL_TRACER,
):
    """A sub-specification (and matching association array) covering
    only ``graphs``; memoized per specification because the inner loop
    asks repeatedly for the same subsets.

    The per-spec table is an LRU bounded by
    :data:`SCOPE_CACHE_MAX_ENTRIES`; traffic shows up as
    ``scope.hits`` / ``scope.misses`` / ``scope.evictions`` counters.
    """
    key = tuple(sorted(graphs))
    with _scope_lock:
        per_spec = _scope_cache.get(spec)
        if per_spec is None:
            per_spec = OrderedDict()
            _scope_cache[spec] = per_spec
        hit = per_spec.get(key)
        if hit is not None:
            per_spec.move_to_end(key)
            tracer.incr("scope.hits")
            return hit
    tracer.incr("scope.misses")
    scoped = SystemSpec(
        name=spec.name + "/subset",
        graphs=[spec.graph(g) for g in sorted(set(graphs))],
        compatibility=None,
        boot_time_requirement=spec.boot_time_requirement,
    )
    scoped_assoc = AssociationArray(
        scoped, max_explicit_copies=assoc.max_explicit_copies
    )
    entry = (scoped, scoped_assoc)
    with _scope_lock:
        per_spec[key] = entry
        while len(per_spec) > SCOPE_CACHE_MAX_ENTRIES:
            per_spec.popitem(last=False)
            tracer.incr("scope.evictions")
    return entry
