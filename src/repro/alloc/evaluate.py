"""Applying and evaluating allocation options (the inner loop).

``apply_option`` realizes one allocation-array entry on a (cloned)
architecture, including the link-library connections the new placement
needs; ``evaluate_architecture`` runs the scheduler and finish-time
estimation and wraps the verdict for the allocation-evaluation step,
which compares candidates on total dollar cost (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.errors import AllocationError
from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resources.link import LinkType
from repro.sched.finish_time import DeadlineReport, evaluate_deadlines
from repro.sched.scheduler import Schedule, ScheduleRequest, build_schedule
from repro.alloc.array import AllocationKind, AllocationOption


def choose_link_type(arch: Architecture, strategy: str = "cheapest") -> LinkType:
    """The link type new connections use.

    ``"cheapest"`` minimizes instance-plus-two-ports dollar cost;
    ``"fastest"`` minimizes the transfer time of a representative
    256-byte message.  The CRUSADE driver retries a failed cluster
    with the fastest strategy before giving up.
    """
    links = arch.library.links_by_cost()
    if not links:
        raise AllocationError("resource library has no link types")
    if strategy == "fastest":
        return min(links, key=lambda l: (l.comm_time(256), l.name))
    if strategy == "cheapest":
        return min(
            links, key=lambda l: (l.instance_cost(2), l.name)
        )
    raise AllocationError("unknown link strategy %r" % (strategy,))


def _connect_cluster_edges(
    arch: Architecture,
    cluster: Cluster,
    pe: PEInstance,
    clustering: ClusteringResult,
    spec: SystemSpec,
    link_type: LinkType,
) -> None:
    """Ensure links exist for every allocated inter-PE edge touching
    the cluster."""
    graph = spec.graph(cluster.graph)
    member = set(cluster.task_names)
    neighbours: Set[str] = set()
    for task_name in cluster.task_names:
        for other in graph.predecessors(task_name):
            if other not in member:
                neighbours.add(other)
        for other in graph.successors(task_name):
            if other not in member:
                neighbours.add(other)
    peer_pe_ids: Set[str] = set()
    for other in sorted(neighbours):
        other_cluster = clustering.cluster_of(cluster.graph, other)
        if not arch.is_allocated(other_cluster.name):
            continue
        peer_id, _ = arch.placement_of(other_cluster.name)
        if peer_id != pe.id:
            peer_pe_ids.add(peer_id)
    for peer_id in sorted(peer_pe_ids):
        arch.connect(pe.id, peer_id, link_type)


def apply_option(
    option: AllocationOption,
    arch: Architecture,
    cluster: Cluster,
    clustering: ClusteringResult,
    spec: SystemSpec,
    link_strategy: str = "cheapest",
) -> PEInstance:
    """Realize ``option`` on ``arch`` (typically a clone).

    Returns the PE instance now hosting the cluster.
    """
    if option.kind is AllocationKind.NEW_PE:
        pe_type = arch.library.pe_type(option.pe_type_name)
        pe = arch.new_pe(pe_type)
        mode_index = 0
    else:
        pe = arch.pe(option.pe_id)
        if option.kind is AllocationKind.NEW_MODE:
            mode_index = pe.new_mode().index
        else:
            mode_index = option.mode_index if option.mode_index is not None else 0
    arch.allocate_cluster(
        cluster.name,
        pe.id,
        mode_index,
        gates=cluster.area_gates,
        pins=cluster.pins,
        memory=cluster.memory,
    )
    # Replicate overlapping residents into the new mode (Figure 2(e)).
    for resident_name in option.replicate:
        resident = clustering.clusters[resident_name]
        pe.add_replica(
            resident_name,
            mode_index,
            gates=resident.area_gates,
            pins=resident.pins,
        )
    link_type = choose_link_type(arch, link_strategy)
    _connect_cluster_edges(arch, cluster, pe, clustering, spec, link_type)
    return pe


@dataclass
class EvalResult:
    """Verdict on one candidate architecture."""

    arch: Architecture
    schedule: Schedule
    report: DeadlineReport
    cost: float

    @property
    def feasible(self) -> bool:
        """Deadlines met and no resource overloaded."""
        return self.report.all_met

    def badness(self) -> tuple:
        """(infeasibility, cost) ordering for fallback selection."""
        misses, lateness = self.report.badness()
        return (misses, lateness, self.cost)


def evaluate_architecture(
    spec: SystemSpec,
    assoc: AssociationArray,
    clustering: ClusteringResult,
    arch: Architecture,
    priorities: Dict[str, Dict[str, float]],
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None,
    preemption: bool = True,
    graphs: Optional[List[str]] = None,
    tracer: Tracer = NULL_TRACER,
) -> EvalResult:
    """Schedule ``arch`` and wrap the finish-time verdict.

    ``graphs`` restricts scheduling and verification to a subset (the
    fast inner-loop path); the driver always re-validates the final
    architecture with the full graph set.
    """
    tracer.incr("alloc.evaluations")
    if graphs is not None:
        tracer.incr("alloc.evaluations.scoped")
        scoped_spec, scoped_assoc = _scope(spec, assoc, graphs)
    else:
        scoped_spec, scoped_assoc = spec, assoc
    request = ScheduleRequest(
        spec=scoped_spec,
        assoc=scoped_assoc,
        clustering=clustering,
        arch=arch,
        priorities=priorities,
        boot_time_fn=boot_time_fn,
        preemption=preemption,
        tracer=tracer,
    )
    schedule = build_schedule(request)
    report = evaluate_deadlines(schedule, scoped_spec, scoped_assoc)
    return EvalResult(arch=arch, schedule=schedule, report=report, cost=arch.cost)


import weakref

_scope_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _scope(spec: SystemSpec, assoc: AssociationArray, graphs: List[str]):
    """A sub-specification (and matching association array) covering
    only ``graphs``; memoized per specification because the inner loop
    asks repeatedly for the same subsets."""
    per_spec = _scope_cache.setdefault(spec, {})
    key = tuple(sorted(graphs))
    hit = per_spec.get(key)
    if hit is not None:
        return hit
    scoped = SystemSpec(
        name=spec.name + "/subset",
        graphs=[spec.graph(g) for g in sorted(set(graphs))],
        compatibility=None,
        boot_time_requirement=spec.boot_time_requirement,
    )
    scoped_assoc = AssociationArray(
        scoped, max_explicit_copies=assoc.max_explicit_copies
    )
    per_spec[key] = (scoped, scoped_assoc)
    return scoped, scoped_assoc
