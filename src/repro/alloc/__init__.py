"""Allocation: mapping clusters onto PE instances (Section 4.2, 5).

For each cluster (in decreasing priority order) CRUSADE builds an
*allocation array* of candidate placements -- existing PE instances,
new configuration modes of existing programmable PEs, and fresh PE
instances from the library -- ordered by increasing incremental dollar
cost.  Each candidate is applied to a trial architecture, scheduled,
and kept only if finish-time estimation shows every deadline met.
"""

from repro.alloc.capacity import (
    exclusion_conflict,
    fits_new_pe_type,
    fits_on_asic,
    fits_on_processor,
    fits_in_ppe_mode,
)
from repro.alloc.array import AllocationKind, AllocationOption, build_allocation_array
from repro.alloc.evaluate import EvalResult, apply_option, evaluate_architecture

__all__ = [
    "exclusion_conflict",
    "fits_new_pe_type",
    "fits_on_asic",
    "fits_on_processor",
    "fits_in_ppe_mode",
    "AllocationKind",
    "AllocationOption",
    "build_allocation_array",
    "EvalResult",
    "apply_option",
    "evaluate_architecture",
]
