"""Allocation-array construction (Sections 4.2 and 5).

The allocation array for a cluster enumerates every candidate
placement at the current point of co-synthesis:

* onto an existing PE instance (processors/ASICs, or an existing
  configuration mode of a programmable PE -- the Figure 4(e) case
  where overlapping cluster C3 joins C1's mode);
* into a *new* mode of an existing programmable PE, allowed only when
  the cluster's task graph is compatible (non-overlapping) with every
  graph already configured into the device's other modes -- the
  Figure 4(d) case;
* onto a fresh instance of every library PE type the cluster can run
  on.

Options are ordered by increasing incremental dollar cost, with the
cluster's preference weight and determinism tie-breaks, matching the
paper's cost-driven inner loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.delay.model import DelayPolicy
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.resources.pe import PpeType, ProcessorType
from repro.alloc.capacity import (
    exclusion_conflict,
    fits_in_ppe_mode,
    fits_new_pe_type,
    fits_on_asic,
    fits_on_processor,
)


class AllocationKind(enum.Enum):
    """How an allocation option places the cluster."""

    EXISTING_PE = "existing-pe"
    EXISTING_MODE = "existing-mode"
    NEW_MODE = "new-mode"
    NEW_PE = "new-pe"


@dataclass(frozen=True)
class AllocationOption:
    """One candidate placement of a cluster.

    ``pe_id`` names an existing instance for the existing/new-mode
    kinds; ``pe_type_name`` names a library type for NEW_PE.
    ``mode_index`` is the target mode for EXISTING_MODE placements.
    ``pollution`` counts resident graphs the cluster could instead
    time-share with: placing a cluster beside graphs it is compatible
    with wastes simultaneous silicon on functions that never run
    together and poisons later PPE merging, so such joins sort last
    among equal-cost options.
    """

    kind: AllocationKind
    est_cost: float
    preference: float
    pe_id: Optional[str] = None
    pe_type_name: Optional[str] = None
    mode_index: Optional[int] = None
    pollution: int = 0
    #: NEW_MODE only: resident clusters whose circuits are replicated
    #: into the new mode because their graphs overlap the cluster's.
    replicate: Tuple[str, ...] = ()

    @property
    def sort_key(self) -> tuple:
        order = {
            AllocationKind.EXISTING_PE: 0,
            AllocationKind.EXISTING_MODE: 0,
            AllocationKind.NEW_MODE: 1,
            AllocationKind.NEW_PE: 2,
        }[self.kind]
        return (
            self.est_cost,
            self.pollution,
            -self.preference,
            order,
            self.pe_id or "",
            self.pe_type_name or "",
            self.mode_index if self.mode_index is not None else -1,
        )

    def describe(self) -> str:
        """Human-readable one-liner for traces and reports."""
        if self.kind is AllocationKind.NEW_PE:
            return "new %s ($%.0f)" % (self.pe_type_name, self.est_cost)
        if self.kind is AllocationKind.NEW_MODE:
            return "new mode of %s" % (self.pe_id,)
        if self.kind is AllocationKind.EXISTING_MODE:
            return "%s mode %d" % (self.pe_id, self.mode_index)
        return "existing %s" % (self.pe_id,)


def _memory_upgrade_cost(cluster: Cluster, pe: PEInstance) -> float:
    """Incremental DRAM-bank cost of adding the cluster's memory."""
    processor = pe.pe_type
    if not isinstance(processor, ProcessorType):
        return 0.0
    before = pe.memory_bank()
    demand = pe.memory_demand.total + cluster.memory.total
    after = processor.smallest_bank_for(demand) if demand > 0 else None
    before_cost = before.cost if before is not None else 0.0
    after_cost = after.cost if after is not None else 0.0
    return max(0.0, after_cost - before_cost)


def _graphs_in_mode(pe: PEInstance, mode_index: int, clustering) -> set:
    """Graphs whose circuits are configured into a mode (replicas
    included)."""
    return {
        clustering.clusters[name].graph
        for name in pe.clusters()
        if mode_index in pe.modes_of_cluster(name)
    }


def _new_mode_plan(
    cluster: Cluster,
    pe: PEInstance,
    clustering: ClusteringResult,
    compat: Optional[CompatibilityAnalysis],
    policy: DelayPolicy,
) -> Optional[Tuple[str, ...]]:
    """Whether a new mode may host the cluster, and which residents
    must be replicated into it.

    A resident whose graph is *compatible* with the cluster's never
    runs at the same time -- it simply lives in its own modes.  A
    resident whose graph *overlaps* must stay loaded while the cluster
    runs, so its circuit is replicated into the new mode (Figure 2(e):
    T1 is present in both configurations).  Returns the sorted replica
    list, or None when the new mode is not allowed -- because
    reconfiguration is off, the replicas don't fit beside the cluster
    under the ERUF/EPUF caps, or a resident already spans several
    modes (nested replication is not explored).
    """
    if compat is None:
        return None
    if pe.pe_type.name not in cluster.allowed_pe_types:
        return None
    replicate = []
    gates = cluster.area_gates
    pins = cluster.pins
    for resident_name in pe.clusters():
        resident = clustering.clusters[resident_name]
        if resident.graph != cluster.graph and compat.compatible(
            cluster.graph, resident.graph
        ):
            continue
        # Overlapping (or same-graph) resident: replicate it.
        if pe.replica_modes.get(resident_name):
            return None
        replicate.append(resident_name)
        gates += resident.area_gates
        pins += resident.pins
    if not policy.admits(pe.pe_type, gates, pins):
        return None
    return tuple(sorted(replicate))


def _mode_join_allowed(
    cluster: Cluster,
    pe: PEInstance,
    mode_index: int,
    clustering: ClusteringResult,
    compat: Optional[CompatibilityAnalysis],
) -> bool:
    """Whether the cluster may join an *existing* mode.

    Physically, the device sits in mode ``mode_index`` whenever the
    cluster executes, so every graph configured into the device's
    *other* modes must be compatible (non-overlapping) with the
    cluster's graph -- this is how Figure 4's C3 joins C1's mode while
    C2 lives in its own.  Conversely, when the cluster is compatible
    with everything in the host mode too, joining would waste
    simultaneous silicon on functions that never run together; the
    new-mode option covers that case, so the join is not offered.
    """
    for other_mode in pe.modes:
        if other_mode.index == mode_index:
            continue
        for graph_name in _graphs_in_mode(pe, other_mode.index, clustering):
            if graph_name == cluster.graph:
                return False
            if compat is None or not compat.compatible(cluster.graph, graph_name):
                return False
    if compat is not None:
        host_graphs = _graphs_in_mode(pe, mode_index, clustering)
        if host_graphs and all(
            g != cluster.graph and compat.compatible(cluster.graph, g)
            for g in host_graphs
        ):
            return False
    return True


def build_allocation_array(
    cluster: Cluster,
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
    policy: DelayPolicy,
    compat: Optional[CompatibilityAnalysis] = None,
    max_existing_options: int = 12,
    allow_new_modes: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> List[AllocationOption]:
    """Enumerate candidate placements for ``cluster``, cheapest first.

    ``compat=None`` (or ``allow_new_modes=False``) disables dynamic
    reconfiguration: no new-mode options are generated, which is
    exactly the paper's baseline ("each programmable device had only
    one mode").  ``max_existing_options`` bounds how many existing-
    instance candidates are kept (cheapest, then most free capacity)
    to keep the inner loop tractable on large systems.
    """
    graph = spec.graph(cluster.graph)
    existing: List[AllocationOption] = []
    new_modes: List[AllocationOption] = []
    tracer.incr("alloc.array.builds")

    for pe in sorted(arch.pes.values(), key=lambda p: p.id):
        pe_type = pe.pe_type
        preference = cluster.preference_weight(pe_type.name, graph)
        if preference <= 0.0:
            continue
        if isinstance(pe_type, ProcessorType):
            if not fits_on_processor(cluster, pe, clustering):
                tracer.incr("alloc.rejects.processor_capacity")
            else:
                existing.append(
                    AllocationOption(
                        kind=AllocationKind.EXISTING_PE,
                        est_cost=_memory_upgrade_cost(cluster, pe),
                        preference=preference,
                        pe_id=pe.id,
                        mode_index=0,
                    )
                )
        elif isinstance(pe_type, PpeType):
            for mode in pe.modes:
                if not fits_in_ppe_mode(
                    cluster, pe, mode.index, clustering, policy
                ):
                    tracer.incr("alloc.rejects.ppe_mode_capacity")
                elif not _mode_join_allowed(
                    cluster, pe, mode.index, clustering, compat
                ):
                    tracer.incr("alloc.rejects.mode_join")
                else:
                    # Pollution: graphs already configured into this
                    # mode that the cluster could instead time-share
                    # with -- co-locating them wastes simultaneous
                    # silicon.
                    pollution = 0
                    if compat is not None:
                        pollution = sum(
                            1
                            for g in _graphs_in_mode(pe, mode.index, clustering)
                            if compat.compatible(cluster.graph, g)
                        )
                    existing.append(
                        AllocationOption(
                            kind=AllocationKind.EXISTING_MODE,
                            est_cost=0.0,
                            preference=preference,
                            pe_id=pe.id,
                            mode_index=mode.index,
                            pollution=pollution,
                        )
                    )
            if allow_new_modes:
                plan = _new_mode_plan(cluster, pe, clustering, compat, policy)
                if plan is None:
                    tracer.incr("alloc.rejects.new_mode")
                elif exclusion_conflict(cluster, pe, clustering):
                    tracer.incr("alloc.rejects.exclusion")
                else:
                    new_modes.append(
                        AllocationOption(
                            kind=AllocationKind.NEW_MODE,
                            est_cost=0.0,
                            preference=preference,
                            pe_id=pe.id,
                            mode_index=None,
                            # Each replicated circuit duplicates
                            # silicon and boot-image storage; prefer
                            # replica-free placements at equal cost.
                            pollution=len(plan),
                            replicate=plan,
                        )
                    )
        else:  # ASIC
            if not fits_on_asic(cluster, pe, clustering):
                tracer.incr("alloc.rejects.asic_capacity")
            else:
                existing.append(
                    AllocationOption(
                        kind=AllocationKind.EXISTING_PE,
                        est_cost=0.0,
                        preference=preference,
                        pe_id=pe.id,
                        mode_index=0,
                    )
                )

    existing.sort(key=lambda o: o.sort_key)
    existing = existing[:max_existing_options]
    new_modes.sort(key=lambda o: o.sort_key)
    new_modes = new_modes[:max_existing_options]

    fresh: List[AllocationOption] = []
    for pe_type in arch.library.all_pe_types_by_cost():
        preference = cluster.preference_weight(pe_type.name, graph)
        if preference <= 0.0:
            continue
        if not fits_new_pe_type(cluster, pe_type, policy):
            tracer.incr("alloc.rejects.new_pe_capacity")
            continue
        cost = pe_type.cost
        if isinstance(pe_type, ProcessorType) and cluster.memory.total > 0:
            bank = pe_type.smallest_bank_for(cluster.memory.total)
            if bank is not None:
                cost += bank.cost
        fresh.append(
            AllocationOption(
                kind=AllocationKind.NEW_PE,
                est_cost=cost,
                preference=preference,
                pe_type_name=pe_type.name,
            )
        )

    options = existing + new_modes + fresh
    options.sort(key=lambda o: o.sort_key)
    tracer.incr("alloc.array.options", len(options))
    return options
