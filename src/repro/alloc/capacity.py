"""Capacity checks for cluster placement.

While allocating a cluster to a hardware module it is made sure that
the module capacity related to pin count, gate count etc. is not
exceeded; for general-purpose processors the memory capacity is
checked (Section 5).  Programmable devices additionally respect the
ERUF/EPUF utilization caps of the delay-management policy
(Section 4.5).  Exclusion vectors forbid co-locating flagged task
pairs on one PE (Section 2.2).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import Cluster, ClusteringResult
from repro.delay.model import DelayPolicy
from repro.resources.pe import AsicType, PpeType, ProcessorType


def exclusion_conflict(
    cluster: Cluster, pe: PEInstance, clustering: ClusteringResult
) -> bool:
    """True when placing ``cluster`` on ``pe`` violates any exclusion
    vector -- in either direction -- against tasks already there."""
    resident_tasks = set()
    resident_exclusions = set()
    for resident_name in pe.clusters():
        resident = clustering.clusters[resident_name]
        resident_tasks.update(resident.task_names)
        resident_exclusions.update(resident.exclusions)
    if resident_tasks & cluster.exclusions:
        return True
    if resident_exclusions & set(cluster.task_names):
        return True
    return False


def fits_on_processor(
    cluster: Cluster, pe: PEInstance, clustering: ClusteringResult
) -> bool:
    """Memory-capacity and exclusion check for a processor placement."""
    processor = pe.pe_type
    if not isinstance(processor, ProcessorType):
        return False
    if processor.name not in cluster.allowed_pe_types:
        return False
    demand = pe.memory_demand.total + cluster.memory.total
    if demand > processor.max_memory_bytes and demand > 0:
        return False
    return not exclusion_conflict(cluster, pe, clustering)


def fits_on_asic(
    cluster: Cluster, pe: PEInstance, clustering: ClusteringResult
) -> bool:
    """Gate/pin capacity and exclusion check for an ASIC placement."""
    asic = pe.pe_type
    if not isinstance(asic, AsicType):
        return False
    if asic.name not in cluster.allowed_pe_types:
        return False
    mode = pe.mode(0)
    if mode.gates_used + cluster.area_gates > asic.gates:
        return False
    if mode.pins_used + cluster.pins > asic.pins:
        return False
    return not exclusion_conflict(cluster, pe, clustering)


def fits_in_ppe_mode(
    cluster: Cluster,
    pe: PEInstance,
    mode_index: Optional[int],
    clustering: ClusteringResult,
    policy: DelayPolicy,
) -> bool:
    """ERUF/EPUF-capped capacity check for a programmable placement.

    ``mode_index=None`` checks a hypothetical fresh mode (empty usage).
    """
    ppe = pe.pe_type
    if not isinstance(ppe, PpeType):
        return False
    if ppe.name not in cluster.allowed_pe_types:
        return False
    gates_used = 0
    pins_used = 0
    if mode_index is not None:
        mode = pe.mode(mode_index)
        gates_used = mode.gates_used
        pins_used = mode.pins_used
    if not policy.admits(
        ppe, gates_used + cluster.area_gates, pins_used + cluster.pins
    ):
        return False
    return not exclusion_conflict(cluster, pe, clustering)


def fits_new_pe_type(cluster: Cluster, pe_type, policy: DelayPolicy) -> bool:
    """Would ``cluster`` fit alone on a fresh instance of ``pe_type``?"""
    if pe_type.name not in cluster.allowed_pe_types:
        return False
    if isinstance(pe_type, ProcessorType):
        demand = cluster.memory.total
        return demand <= pe_type.max_memory_bytes or demand == 0
    if isinstance(pe_type, AsicType):
        return (
            cluster.area_gates <= pe_type.gates and cluster.pins <= pe_type.pins
        )
    if isinstance(pe_type, PpeType):
        return policy.admits(pe_type, cluster.area_gates, cluster.pins)
    return False
