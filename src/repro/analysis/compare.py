"""Architecture comparison: explain where reconfiguration saved money.

Given two co-synthesis results for the same specification (typically
the with/without-reconfiguration pair of Table 2), compute a
structured diff: per-PE-type instance deltas, per-category cost
deltas, and the headline numbers the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.cost import cost_breakdown
from repro.core.report import CoSynthesisResult
from repro.errors import SpecificationError


@dataclass
class ArchitectureDiff:
    """Structured comparison of two architectures (baseline vs other)."""

    baseline_cost: float
    other_cost: float
    #: PE type name -> (baseline instances, other instances)
    pe_counts: Dict[str, tuple] = field(default_factory=dict)
    #: cost category -> (baseline dollars, other dollars)
    cost_categories: Dict[str, tuple] = field(default_factory=dict)
    baseline_modes: int = 0
    other_modes: int = 0
    baseline_links: int = 0
    other_links: int = 0

    @property
    def savings(self) -> float:
        """Dollar saving of `other` relative to the baseline."""
        return self.baseline_cost - self.other_cost

    @property
    def savings_pct(self) -> float:
        """Percentage saving (the paper's last column)."""
        if self.baseline_cost <= 0:
            return 0.0
        return self.savings / self.baseline_cost * 100.0

    def eliminated_types(self) -> List[str]:
        """PE types with fewer instances in the other architecture."""
        return sorted(
            name
            for name, (base, other) in self.pe_counts.items()
            if other < base
        )

    def render(self) -> str:
        """Human-readable multi-line diff."""
        lines = [
            "cost: $%.0f -> $%.0f (%.1f%% saved)"
            % (self.baseline_cost, self.other_cost, self.savings_pct),
            "modes: %d -> %d;  links: %d -> %d"
            % (self.baseline_modes, self.other_modes,
               self.baseline_links, self.other_links),
            "PE instances:",
        ]
        for name in sorted(self.pe_counts):
            base, other = self.pe_counts[name]
            marker = ""
            if other < base:
                marker = "  (-%d)" % (base - other)
            elif other > base:
                marker = "  (+%d)" % (other - base)
            lines.append("  %-14s %2d -> %2d%s" % (name, base, other, marker))
        lines.append("cost categories:")
        for name, (base, other) in sorted(self.cost_categories.items()):
            lines.append("  %-11s $%8.0f -> $%8.0f" % (name, base, other))
        return "\n".join(lines)


def _count_types(result: CoSynthesisResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for pe in result.arch.pes.values():
        counts[pe.pe_type.name] = counts.get(pe.pe_type.name, 0) + 1
    return counts


def compare_results(
    baseline: CoSynthesisResult, other: CoSynthesisResult
) -> ArchitectureDiff:
    """Diff two results for the same specification.

    Raises when the results synthesized different systems -- comparing
    across specifications is a bug in the caller.
    """
    if baseline.spec.name != other.spec.name:
        raise SpecificationError(
            "comparing results of different systems: %r vs %r"
            % (baseline.spec.name, other.spec.name)
        )
    base_counts = _count_types(baseline)
    other_counts = _count_types(other)
    pe_counts = {
        name: (base_counts.get(name, 0), other_counts.get(name, 0))
        for name in set(base_counts) | set(other_counts)
    }
    base_break = cost_breakdown(baseline.arch).as_dict()
    other_break = cost_breakdown(other.arch).as_dict()
    categories = {
        name: (base_break.get(name, 0.0), other_break.get(name, 0.0))
        for name in set(base_break) | set(other_break)
        if name != "total"
    }
    return ArchitectureDiff(
        baseline_cost=baseline.cost,
        other_cost=other.cost,
        pe_counts=pe_counts,
        cost_categories=categories,
        baseline_modes=baseline.n_modes,
        other_modes=other.n_modes,
        baseline_links=baseline.n_links,
        other_links=other.n_links,
    )
