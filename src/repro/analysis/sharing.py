"""Mode-sharing analysis: how dynamic reconfiguration is being used.

Quantifies, for one synthesized system, the temporal-sharing structure
the paper's Section 3 motivates: how many devices are multi-mode,
which task graphs share silicon through reconfiguration, how much
gate area the sharing avoided buying, and the run-time reconfiguration
load (switches and boot time per hyperperiod).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.core.report import CoSynthesisResult
from repro.units import GATES_PER_PFU


@dataclass
class DeviceSharing:
    """Sharing structure of one programmable device."""

    pe_id: str
    pe_type: str
    n_modes: int
    #: graphs configured per mode (replicas included)
    graphs_per_mode: List[Set[str]] = field(default_factory=list)
    #: gates the device would need to host every mode simultaneously
    gates_if_flat: int = 0
    #: worst single-mode gate usage (what it actually needs)
    gates_worst_mode: int = 0

    @property
    def shared(self) -> bool:
        """True when the device carries more than one configuration."""
        return self.n_modes > 1

    @property
    def gates_avoided(self) -> int:
        """Gate capacity reconfiguration avoided having to buy."""
        return max(0, self.gates_if_flat - self.gates_worst_mode)


@dataclass
class ModeSharingReport:
    """System-level mode-sharing summary."""

    devices: List[DeviceSharing] = field(default_factory=list)
    reconfigurations: int = 0
    boot_time_total: float = 0.0
    hyperperiod: float = 0.0

    @property
    def n_shared_devices(self) -> int:
        return sum(1 for d in self.devices if d.shared)

    @property
    def total_gates_avoided(self) -> int:
        return sum(d.gates_avoided for d in self.devices)

    def sharing_pairs(self) -> List[Tuple[str, str]]:
        """Graph pairs time-sharing some device through different
        modes (sorted, deduplicated)."""
        pairs = set()
        for device in self.devices:
            for i, graphs_a in enumerate(device.graphs_per_mode):
                for graphs_b in device.graphs_per_mode[i + 1 :]:
                    for a in graphs_a:
                        for b in graphs_b:
                            if a != b:
                                pairs.add(tuple(sorted((a, b))))
        return sorted(pairs)

    def render(self) -> str:
        lines = [
            "%d programmable devices, %d carrying multiple modes"
            % (len(self.devices), self.n_shared_devices),
            "gate capacity avoided by time sharing: %d gates (~%d PFUs)"
            % (self.total_gates_avoided, self.total_gates_avoided // GATES_PER_PFU),
            "run-time reconfigurations per hyperperiod: %d (%.4fs booting)"
            % (self.reconfigurations, self.boot_time_total),
        ]
        for device in self.devices:
            if not device.shared:
                continue
            modes = "; ".join(
                "mode %d: %s" % (i, ",".join(sorted(graphs)) or "-")
                for i, graphs in enumerate(device.graphs_per_mode)
            )
            lines.append("  %s (%s): %s" % (device.pe_id, device.pe_type, modes))
        return "\n".join(lines)


def mode_sharing_report(result: CoSynthesisResult) -> ModeSharingReport:
    """Analyse the mode-sharing structure of a synthesized system."""
    report = ModeSharingReport()
    clustering = result.clustering
    for pe in result.arch.programmable_pes():
        graphs_per_mode: List[Set[str]] = [set() for _ in pe.modes]
        for cluster_name in pe.clusters():
            graph = clustering.clusters[cluster_name].graph
            for mode_index in pe.modes_of_cluster(cluster_name):
                graphs_per_mode[mode_index].add(graph)
        gates_flat = sum(mode.gates_used for mode in pe.modes)
        gates_worst = max((mode.gates_used for mode in pe.modes), default=0)
        report.devices.append(
            DeviceSharing(
                pe_id=pe.id,
                pe_type=pe.pe_type.name,
                n_modes=pe.n_modes,
                graphs_per_mode=graphs_per_mode,
                gates_if_flat=gates_flat,
                gates_worst_mode=gates_worst,
            )
        )
    for timeline in result.schedule.ppe_timelines.values():
        report.reconfigurations += timeline.reconfigurations
        report.boot_time_total += timeline.boot_time_total
    from repro.graph.hyperperiod import hyperperiod_of

    report.hyperperiod = hyperperiod_of(result.spec)
    return report
