"""Post-synthesis analysis: comparing and explaining architectures.

The paper's evaluation is comparative (with versus without dynamic
reconfiguration); this package provides the machinery to make such
comparisons explainable -- which devices the reconfigurable run
eliminated, how mode sharing is distributed, and where the dollars
went.
"""

from repro.analysis.compare import ArchitectureDiff, compare_results
from repro.analysis.sharing import ModeSharingReport, mode_sharing_report

__all__ = [
    "ArchitectureDiff",
    "compare_results",
    "ModeSharingReport",
    "mode_sharing_report",
]
