"""Communication-link types.

Each link type is characterized per Section 2.2: the maximum number of
ports it supports, an access-time vector (access time as a function of
the number of ports sharing the link), the number of information bytes
per packet, and the packet transmission time.  The *communication
vector* of a task-graph edge -- its transfer time on every link type --
is computed from these characteristics, first with an assumed average
port count and again after each allocation with the actual port count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ResourceLibraryError


@dataclass(frozen=True)
class LinkType:
    """A link type from the link library.

    Parameters
    ----------
    name:
        Identifier, unique within the library.
    cost:
        Dollar cost of instantiating the link (transceivers, wiring,
        arbitration logic), plus ``cost_per_port`` per attached port.
    max_ports:
        Maximum number of PEs attachable (2 for point-to-point).
    access_times:
        Access/arbitration time in seconds indexed by port count: entry
        ``i`` applies when ``i + 1`` ports share the link.  Length must
        equal ``max_ports``; monotone non-decreasing (more contenders,
        longer arbitration).
    bytes_per_packet:
        Information bytes carried per packet.
    packet_tx_time:
        Time to transmit one packet, in seconds.
    cost_per_port:
        Incremental dollar cost per attached port.
    assumed_ports:
        Average port count used to compute communication vectors before
        allocation fixes the actual topology (Section 2.2).
    """

    name: str
    cost: float
    max_ports: int
    access_times: Tuple[float, ...]
    bytes_per_packet: int
    packet_tx_time: float
    cost_per_port: float = 0.0
    assumed_ports: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ResourceLibraryError("link type name must be non-empty")
        if self.cost < 0 or self.cost_per_port < 0:
            raise ResourceLibraryError(
                "link %r costs must be non-negative" % (self.name,)
            )
        if self.max_ports < 2:
            raise ResourceLibraryError(
                "link %r must support at least 2 ports" % (self.name,)
            )
        if len(self.access_times) != self.max_ports:
            raise ResourceLibraryError(
                "link %r access-time vector must have max_ports=%d entries, got %d"
                % (self.name, self.max_ports, len(self.access_times))
            )
        previous = -1.0
        for access in self.access_times:
            if access < 0:
                raise ResourceLibraryError(
                    "link %r access times must be non-negative" % (self.name,)
                )
            if access < previous:
                raise ResourceLibraryError(
                    "link %r access-time vector must be non-decreasing"
                    % (self.name,)
                )
            previous = access
        if self.bytes_per_packet <= 0:
            raise ResourceLibraryError(
                "link %r bytes per packet must be positive" % (self.name,)
            )
        if self.packet_tx_time <= 0:
            raise ResourceLibraryError(
                "link %r packet time must be positive" % (self.name,)
            )
        if not 2 <= self.assumed_ports <= self.max_ports:
            raise ResourceLibraryError(
                "link %r assumed_ports must be in [2, max_ports]" % (self.name,)
            )

    # ------------------------------------------------------------------
    def access_time(self, ports: int) -> float:
        """Access time when ``ports`` PEs share the link."""
        if ports < 1:
            raise ResourceLibraryError(
                "port count must be at least 1, got %r" % (ports,)
            )
        index = min(ports, self.max_ports) - 1
        return self.access_times[index]

    def packets_for(self, bytes_: int) -> int:
        """Packets needed to move ``bytes_`` information bytes."""
        if bytes_ < 0:
            raise ResourceLibraryError("byte count must be non-negative")
        if bytes_ == 0:
            return 0
        return math.ceil(bytes_ / self.bytes_per_packet)

    def comm_time(self, bytes_: int, ports: int = 0) -> float:
        """Transfer time for ``bytes_`` bytes with ``ports`` sharers.

        ``ports=0`` uses :attr:`assumed_ports` -- the pre-allocation
        estimate the paper prescribes.  Zero-byte transfers take zero
        time (pure precedence edges).
        """
        if bytes_ == 0:
            return 0.0
        if ports <= 0:
            ports = self.assumed_ports
        return self.access_time(ports) + self.packets_for(bytes_) * self.packet_tx_time

    def instance_cost(self, ports: int) -> float:
        """Dollar cost of one instance of this link with ``ports``
        attachments."""
        if ports < 1:
            raise ResourceLibraryError("instance needs at least one port")
        return self.cost + self.cost_per_port * ports

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Steady-state payload bandwidth, for reporting."""
        return self.bytes_per_packet / self.packet_tx_time
