"""The default 1997-era resource catalog.

Section 7 of the paper lists the PE library used for the experiments:
Motorola 68360/68040/68060/PowerQUICC processors (each with and without
a 256 KB second-level cache), sixteen ASICs, XILINX 3195A / 4025 / 6700
series FPGAs, ATMEL AT6000-series FPGAs, XILINX XC9500 and XC7300
CPLDs, ORCA 2T15 and 2T40 FPGAs, four DRAM bank options up to 64 MB
(60 ns parts), and a link library with 680X0 and PowerQUICC buses, a
10 Mb/s LAN, and a 31 Mb/s serial link.

The original dollar costs are proprietary (15 k/year volume pricing).
This module reconstructs the catalog with the same part names and
capacity figures from period datasheets and *plausible relative* costs;
only relative cost/speed/capacity ratios drive allocation decisions, so
the reproduction preserves the algorithmic behaviour (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.resources.library import ResourceLibrary
from repro.resources.link import LinkType
from repro.resources.pe import (
    AsicType,
    MemoryBank,
    PEKind,
    PpeType,
    ProcessorType,
)
from repro.units import KB, MB, MS, US

#: The four DRAM bank options the paper evaluates per processor
#: (60 ns parts, up to 64 MB).
DRAM_BANKS: Tuple[MemoryBank, ...] = (
    MemoryBank(size_bytes=16 * MB, cost=40.0),
    MemoryBank(size_bytes=32 * MB, cost=70.0),
    MemoryBank(size_bytes=48 * MB, cost=100.0),
    MemoryBank(size_bytes=64 * MB, cost=125.0),
)

#: (name, speed, cost, comm_ports, context_switch, preemption_overhead)
_PROCESSOR_SPECS = (
    # 25 MHz CPU32+ core with integrated comm controllers.
    ("MC68360", 1.0, 45.0, 4, 18 * US, 45 * US),
    # 33 MHz 68040: roughly 2.6x a 68360 on control code.
    ("MC68040", 2.6, 80.0, 2, 12 * US, 30 * US),
    # 66 MHz 68060: superscalar, ~5x a 68360.
    ("MC68060", 5.0, 165.0, 2, 8 * US, 22 * US),
    # MPC860 PowerQUICC: PowerPC core + CPM, ~3.4x a 68360.
    ("PowerQUICC", 3.4, 95.0, 4, 10 * US, 26 * US),
)

#: Speedup factor and added cost for the 256 KB L2 cache variants.
_CACHE_SPEEDUP = 1.3
_CACHE_COST = 45.0

#: Sixteen ASICs: (gate capacity, pins, cost).  Gate counts span the
#: small glue parts through large cell-based designs of the era; cost
#: grows superlinearly with area (die + package + NRE amortized over
#: 15 k/year volume).
_ASIC_SPECS = (
    (5_000, 84, 14.0),
    (8_000, 100, 18.0),
    (12_000, 120, 24.0),
    (18_000, 144, 32.0),
    (25_000, 160, 42.0),
    (33_000, 184, 54.0),
    (42_000, 208, 68.0),
    (52_000, 240, 84.0),
    (64_000, 240, 102.0),
    (78_000, 280, 124.0),
    (95_000, 304, 150.0),
    (115_000, 352, 182.0),
    (140_000, 388, 222.0),
    (170_000, 432, 270.0),
    (210_000, 472, 330.0),
    (260_000, 503, 405.0),
)

#: Programmable PEs: (name, kind, pfus, flip_flops, pins,
#: config_bits_per_pfu, partial_reconfig, cost).
_PPE_SPECS = (
    # XILINX XC3000 family flagship: 484 CLBs.
    ("XC3195A", PEKind.FPGA, 484, 1320, 176, 270, False, 96.0),
    # XILINX XC4025: 1024 CLBs, 25 k gates class.
    ("XC4025", PEKind.FPGA, 1024, 2560, 256, 422, False, 210.0),
    # "6700 series" partially reconfigurable XILINX part (XC6200 class).
    ("XC6700", PEKind.FPGA, 4096, 4096, 240, 96, True, 165.0),
    # ATMEL AT6000 series: fine-grained, partially reconfigurable.
    ("AT6005", PEKind.FPGA, 3136, 3136, 120, 64, True, 72.0),
    ("AT6010", PEKind.FPGA, 6400, 6400, 160, 64, True, 118.0),
    # XILINX CPLDs: in-system programmable via the test port.
    ("XC9536", PEKind.CPLD, 36, 36, 44, 900, False, 9.0),
    ("XC95108", PEKind.CPLD, 108, 108, 108, 900, False, 22.0),
    ("XC7336", PEKind.CPLD, 36, 36, 44, 850, False, 8.0),
    ("XC7372", PEKind.CPLD, 72, 72, 84, 850, False, 15.0),
    # Lucent ORCA FPGAs.
    ("ORCA2T15", PEKind.FPGA, 400, 1600, 208, 480, False, 125.0),
    ("ORCA2T40", PEKind.FPGA, 900, 3600, 304, 480, False, 245.0),
)


def _build_processors() -> List[ProcessorType]:
    processors = []
    for name, speed, cost, ports, ctx, preempt in _PROCESSOR_SPECS:
        processors.append(
            ProcessorType(
                name=name,
                cost=cost,
                speed=speed,
                memory_banks=DRAM_BANKS,
                context_switch_time=ctx,
                preemption_overhead=preempt,
                comm_ports=ports,
                cache_bytes=0,
            )
        )
        processors.append(
            ProcessorType(
                name=name + "+L2",
                cost=cost + _CACHE_COST,
                speed=speed * _CACHE_SPEEDUP,
                memory_banks=DRAM_BANKS,
                context_switch_time=ctx,
                preemption_overhead=preempt,
                comm_ports=ports,
                cache_bytes=256 * KB,
            )
        )
    return processors


def _build_asics() -> List[AsicType]:
    return [
        AsicType(name="ASIC%02d" % (i + 1), cost=cost, gates=gates, pins=pins)
        for i, (gates, pins, cost) in enumerate(_ASIC_SPECS)
    ]


def _build_ppes() -> List[PpeType]:
    return [
        PpeType(
            name=name,
            cost=cost,
            device_kind=kind,
            pfus=pfus,
            flip_flops=ffs,
            pins=pins,
            config_bits_per_pfu=cbits,
            partial_reconfig=partial,
        )
        for name, kind, pfus, ffs, pins, cbits, partial, cost in _PPE_SPECS
    ]


def _build_links() -> List[LinkType]:
    return [
        # Shared processor buses: fast, few ports, arbitration grows
        # with the number of masters.
        LinkType(
            name="bus680X0",
            cost=6.0,
            max_ports=8,
            access_times=(1 * US, 1 * US, 2 * US, 3 * US, 4 * US, 6 * US, 8 * US, 10 * US),
            bytes_per_packet=32,
            packet_tx_time=4 * US,
            cost_per_port=2.0,
            assumed_ports=4,
        ),
        LinkType(
            name="busQUICC",
            cost=8.0,
            max_ports=8,
            access_times=(0.5 * US, 0.5 * US, 1 * US, 1.5 * US, 2 * US, 3 * US, 4 * US, 5 * US),
            bytes_per_packet=64,
            packet_tx_time=3 * US,
            cost_per_port=3.0,
            assumed_ports=4,
        ),
        # 10 Mb/s LAN: many ports, long access (CSMA), big packets.
        LinkType(
            name="lan10",
            cost=20.0,
            max_ports=32,
            access_times=tuple(50 * US + 12 * US * i for i in range(32)),
            bytes_per_packet=1500,
            packet_tx_time=1.2 * MS,
            cost_per_port=8.0,
            assumed_ports=8,
        ),
        # 31 Mb/s serial link: point-to-point.
        LinkType(
            name="serial31",
            cost=12.0,
            max_ports=2,
            access_times=(2 * US, 2 * US),
            bytes_per_packet=256,
            packet_tx_time=66 * US,
            cost_per_port=4.0,
            assumed_ports=2,
        ),
    ]


def default_library() -> ResourceLibrary:
    """Build the default 1997-era resource library of Section 7.

    Returns a fresh :class:`~repro.resources.library.ResourceLibrary`
    each call, so callers may extend their copy without aliasing.
    """
    library = ResourceLibrary()
    for processor in _build_processors():
        library.add_pe_type(processor)
    for asic in _build_asics():
        library.add_pe_type(asic)
    for ppe in _build_ppes():
        library.add_pe_type(ppe)
    for link in _build_links():
        library.add_link_type(link)
    library.validate()
    return library


def processor_names(with_cache_variants: bool = True) -> List[str]:
    """Names of catalog processors, for workload generators."""
    names = []
    for name, *_ in _PROCESSOR_SPECS:
        names.append(name)
        if with_cache_variants:
            names.append(name + "+L2")
    return names


def ppe_names() -> List[str]:
    """Names of catalog programmable PEs."""
    return [spec[0] for spec in _PPE_SPECS]


def asic_names() -> List[str]:
    """Names of catalog ASICs."""
    return ["ASIC%02d" % (i + 1) for i in range(len(_ASIC_SPECS))]
