"""The resource library: PE library plus link library.

Embedded-system specifications are mapped to elements of a resource
library (Section 2.2).  :class:`ResourceLibrary` is an immutable-after-
construction registry with deterministic, cost-ordered accessors used
by allocation-array construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ResourceLibraryError
from repro.resources.link import LinkType
from repro.resources.pe import AsicType, PEKind, PEType, PpeType, ProcessorType


class ResourceLibrary:
    """Registry of PE types and link types available to co-synthesis."""

    def __init__(
        self,
        pe_types: Iterable[PEType] = (),
        link_types: Iterable[LinkType] = (),
    ) -> None:
        self._pe_types: Dict[str, PEType] = {}
        self._link_types: Dict[str, LinkType] = {}
        for pe_type in pe_types:
            self.add_pe_type(pe_type)
        for link_type in link_types:
            self.add_link_type(link_type)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pe_type(self, pe_type: PEType) -> None:
        """Register a PE type; duplicate names are rejected."""
        if pe_type.name in self._pe_types:
            raise ResourceLibraryError("duplicate PE type %r" % (pe_type.name,))
        self._pe_types[pe_type.name] = pe_type

    def add_link_type(self, link_type: LinkType) -> None:
        """Register a link type; duplicate names are rejected."""
        if link_type.name in self._link_types:
            raise ResourceLibraryError("duplicate link type %r" % (link_type.name,))
        self._link_types[link_type.name] = link_type

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def has_pe_type(self, name: str) -> bool:
        """True when a PE type with this name is registered."""
        return name in self._pe_types

    def pe_type(self, name: str) -> PEType:
        """Look up a PE type by name."""
        try:
            return self._pe_types[name]
        except KeyError:
            raise ResourceLibraryError("no PE type %r in library" % (name,)) from None

    def link_type(self, name: str) -> LinkType:
        """Look up a link type by name."""
        try:
            return self._link_types[name]
        except KeyError:
            raise ResourceLibraryError(
                "no link type %r in library" % (name,)
            ) from None

    @property
    def pe_types(self) -> Dict[str, PEType]:
        """All PE types by name (do not mutate)."""
        return self._pe_types

    @property
    def link_types(self) -> Dict[str, LinkType]:
        """All link types by name (do not mutate)."""
        return self._link_types

    # ------------------------------------------------------------------
    # classified, deterministic views
    # ------------------------------------------------------------------
    def _sorted(self, kinds: Iterable[PEKind]) -> List[PEType]:
        wanted = set(kinds)
        members = [p for p in self._pe_types.values() if p.kind in wanted]
        members.sort(key=lambda p: (p.cost, p.name))
        return members

    def processors(self) -> List[ProcessorType]:
        """General-purpose processors, cheapest first."""
        return self._sorted([PEKind.PROCESSOR])  # type: ignore[return-value]

    def asics(self) -> List[AsicType]:
        """ASICs, cheapest first."""
        return self._sorted([PEKind.ASIC])  # type: ignore[return-value]

    def ppes(self) -> List[PpeType]:
        """Programmable PEs (FPGAs and CPLDs), cheapest first."""
        return self._sorted([PEKind.FPGA, PEKind.CPLD])  # type: ignore[return-value]

    def all_pe_types_by_cost(self) -> List[PEType]:
        """Every PE type, cheapest first (deterministic tiebreak)."""
        return self._sorted(list(PEKind))

    def links_by_cost(self) -> List[LinkType]:
        """Every link type, cheapest first."""
        members = list(self._link_types.values())
        members.sort(key=lambda l: (l.cost, l.name))
        return members

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Sanity-check the library as a whole.

        Raises :class:`ResourceLibraryError` when the library cannot
        support co-synthesis at all (no PEs or no links).
        """
        if not self._pe_types:
            raise ResourceLibraryError("resource library has no PE types")
        if not self._link_types:
            raise ResourceLibraryError("resource library has no link types")

    def __repr__(self) -> str:
        return "ResourceLibrary(%d PE types, %d link types)" % (
            len(self._pe_types),
            len(self._link_types),
        )
