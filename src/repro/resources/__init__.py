"""Resource library: processing elements and communication links.

The PE library holds general-purpose processors, ASICs, and
programmable PEs (FPGAs/CPLDs); the link library holds point-to-point,
bus and LAN link types (Section 2.2).  :mod:`repro.resources.catalog`
rebuilds the 1997-era commercial catalog the paper evaluates with.
"""

from repro.resources.pe import (
    AsicType,
    MemoryBank,
    PEKind,
    PEType,
    PpeType,
    ProcessorType,
)
from repro.resources.link import LinkType
from repro.resources.library import ResourceLibrary
from repro.resources.catalog import default_library

__all__ = [
    "AsicType",
    "MemoryBank",
    "PEKind",
    "PEType",
    "PpeType",
    "ProcessorType",
    "LinkType",
    "ResourceLibrary",
    "default_library",
]
