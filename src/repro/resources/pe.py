"""Processing-element types.

The PE library consists of general-purpose processors, ASICs and
programmable PEs (PPEs: FPGAs and CPLDs), each characterized per
Section 2.2 of the paper:

* FPGA/CPLD -- number of gates/flip-flops/PFUs, boot memory
  requirement, number of pins;
* ASIC -- number of gates, number of pins;
* general-purpose processor -- memory hierarchy information,
  communication-port characteristics, context-switch time.

All types are immutable value objects; the architecture model
instantiates them (see :mod:`repro.arch.pe_instance`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ResourceLibraryError
from repro.units import GATES_PER_PFU


class PEKind(enum.Enum):
    """Broad category of a processing element."""

    PROCESSOR = "processor"
    ASIC = "asic"
    FPGA = "fpga"
    CPLD = "cpld"

    @property
    def is_programmable(self) -> bool:
        """True for run-time reprogrammable devices (FPGA/CPLD)."""
        return self in (PEKind.FPGA, PEKind.CPLD)

    @property
    def is_hardware(self) -> bool:
        """True for hardware mappings (ASIC/FPGA/CPLD)."""
        return self is not PEKind.PROCESSOR


@dataclass(frozen=True)
class MemoryBank:
    """One DRAM bank option attachable to a general-purpose processor.

    The paper evaluates four DRAM banks providing up to 64 MB per
    processor; allocation picks the smallest bank covering the mapped
    tasks' memory vectors and adds its cost to the architecture.
    """

    size_bytes: int
    cost: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ResourceLibraryError("memory bank size must be positive")
        if self.cost < 0:
            raise ResourceLibraryError("memory bank cost must be non-negative")


@dataclass(frozen=True)
class PEType:
    """Common base for all PE types: a name and a dollar cost."""

    name: str
    cost: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ResourceLibraryError("PE type name must be non-empty")
        if self.cost < 0:
            raise ResourceLibraryError(
                "PE type %r cost must be non-negative" % (self.name,)
            )

    @property
    def kind(self) -> PEKind:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def is_programmable(self) -> bool:
        """True for FPGAs and CPLDs."""
        return self.kind.is_programmable

    @property
    def is_hardware(self) -> bool:
        """True for ASIC/FPGA/CPLD mappings."""
        return self.kind.is_hardware


@dataclass(frozen=True)
class ProcessorType(PEType):
    """A general-purpose processor.

    Parameters
    ----------
    speed:
        Relative throughput (1.0 = the slowest catalog part); used by
        workload generators to derive execution-time vectors, never by
        the co-synthesis algorithms themselves.
    memory_banks:
        DRAM bank options attachable to this processor, smallest first.
    context_switch_time:
        Operating-system context-switch time in seconds.
    preemption_overhead:
        Total overhead charged per preemption (interrupt entry +
        context switch + scheduler), in seconds (Section 5).
    comm_ports:
        Number of simultaneous link attachments the communication
        processor supports.
    cache_bytes:
        Second-level cache size (0 when the variant has none).
    """

    speed: float = 1.0
    memory_banks: Tuple[MemoryBank, ...] = ()
    context_switch_time: float = 20e-6
    preemption_overhead: float = 50e-6
    comm_ports: int = 2
    cache_bytes: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.speed <= 0:
            raise ResourceLibraryError(
                "processor %r speed must be positive" % (self.name,)
            )
        if self.context_switch_time < 0 or self.preemption_overhead < 0:
            raise ResourceLibraryError(
                "processor %r overheads must be non-negative" % (self.name,)
            )
        if self.comm_ports < 1:
            raise ResourceLibraryError(
                "processor %r needs at least one comm port" % (self.name,)
            )
        banks = tuple(sorted(self.memory_banks, key=lambda b: b.size_bytes))
        object.__setattr__(self, "memory_banks", banks)

    @property
    def kind(self) -> PEKind:
        return PEKind.PROCESSOR

    @property
    def max_memory_bytes(self) -> int:
        """Largest attachable DRAM bank (memory capacity ceiling)."""
        if not self.memory_banks:
            return 0
        return self.memory_banks[-1].size_bytes

    def smallest_bank_for(self, demand_bytes: int) -> Optional[MemoryBank]:
        """Cheapest bank covering ``demand_bytes`` or None if demand
        exceeds every bank."""
        if demand_bytes <= 0:
            return None
        for bank in self.memory_banks:
            if bank.size_bytes >= demand_bytes:
                return bank
        return None


@dataclass(frozen=True)
class AsicType(PEType):
    """An application-specific IC characterized by gates and pins."""

    gates: int = 0
    pins: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gates <= 0:
            raise ResourceLibraryError("ASIC %r needs positive gates" % (self.name,))
        if self.pins <= 0:
            raise ResourceLibraryError("ASIC %r needs positive pins" % (self.name,))

    @property
    def kind(self) -> PEKind:
        return PEKind.ASIC


@dataclass(frozen=True)
class PpeType(PEType):
    """A programmable PE: FPGA or CPLD.

    Parameters
    ----------
    device_kind:
        :data:`PEKind.FPGA` or :data:`PEKind.CPLD`.
    pfus:
        Programmable functional units (CLBs/logic cells/macrocells).
    flip_flops:
        Register count (informational; capacity checks use PFUs).
    pins:
        User I/O pins.
    config_bits_per_pfu:
        Configuration-stream bits per PFU; total configuration size
        drives boot time and boot-memory requirement (Section 4.4).
    partial_reconfig:
        True for devices supporting partial reconfiguration (ATMEL
        AT6000, XILINX XC6200 class): boot time scales with the number
        of PFUs actually being reconfigured rather than the device
        size.
    """

    device_kind: PEKind = PEKind.FPGA
    pfus: int = 0
    flip_flops: int = 0
    pins: int = 0
    config_bits_per_pfu: int = 360
    partial_reconfig: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.device_kind.is_programmable:
            raise ResourceLibraryError(
                "PPE %r kind must be FPGA or CPLD, got %r"
                % (self.name, self.device_kind)
            )
        if self.pfus <= 0:
            raise ResourceLibraryError("PPE %r needs positive PFUs" % (self.name,))
        if self.pins <= 0:
            raise ResourceLibraryError("PPE %r needs positive pins" % (self.name,))
        if self.config_bits_per_pfu <= 0:
            raise ResourceLibraryError(
                "PPE %r needs positive config bits per PFU" % (self.name,)
            )

    @property
    def kind(self) -> PEKind:
        return self.device_kind

    @property
    def gates(self) -> int:
        """Gate-equivalent capacity (PFUs x gates-per-PFU)."""
        return self.pfus * GATES_PER_PFU

    @property
    def config_bits(self) -> int:
        """Bits in one full configuration stream."""
        return self.pfus * self.config_bits_per_pfu

    @property
    def boot_memory_bytes(self) -> int:
        """PROM bytes needed to store one full configuration image."""
        return (self.config_bits + 7) // 8

    def config_bits_for(self, pfus_used: int) -> int:
        """Configuration bits that must be loaded to (re)program
        ``pfus_used`` PFUs.

        Full-reconfiguration devices always stream the whole image;
        partially reconfigurable devices stream only the used PFUs.
        """
        if pfus_used < 0:
            raise ResourceLibraryError("pfus_used must be non-negative")
        if self.partial_reconfig:
            return min(pfus_used, self.pfus) * self.config_bits_per_pfu
        return self.config_bits
