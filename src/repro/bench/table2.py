"""Table 2: efficacy of CRUSADE.

For each example: the architecture CRUSADE derives *without* dynamic
reconfiguration (each programmable device has one mode) versus *with*
it -- #PEs, #links, CPU seconds, dollar cost, and the cost savings
percentage.  The paper reports savings of 25.9-56.7 %.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.core.report import CoSynthesisResult
from repro.graph.spec import SystemSpec
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.bench.examples import EXAMPLE_NAMES, build_example
from repro.bench.runner import pct, render_table

#: Default example scale for benchmark runs; override with the
#: REPRO_SCALE environment variable (1.0 = the paper's task counts).
DEFAULT_SCALE = 0.05


def bench_scale() -> float:
    """The scale benchmarks run at (REPRO_SCALE env, default 0.05)."""
    return float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))


@dataclass
class Table2Row:
    """One example's with/without-reconfiguration comparison."""

    example: str
    tasks: int
    without: CoSynthesisResult
    with_reconfig: CoSynthesisResult

    @property
    def savings_pct(self) -> float:
        """Cost savings of dynamic reconfiguration, percent."""
        if self.without.cost <= 0:
            return 0.0
        return (self.without.cost - self.with_reconfig.cost) / self.without.cost * 100.0

    def cells(self) -> List[object]:
        return [
            "%s/(%d)" % (self.example, self.tasks),
            self.without.n_pes,
            self.without.n_links,
            "%.1f" % self.without.cpu_seconds,
            "%.0f" % self.without.cost,
            self.with_reconfig.n_pes,
            self.with_reconfig.n_links,
            "%.1f" % self.with_reconfig.cpu_seconds,
            "%.0f" % self.with_reconfig.cost,
            pct(self.savings_pct),
        ]


def run_table2_row(
    example: str,
    scale: Optional[float] = None,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    spec: Optional[SystemSpec] = None,
) -> Table2Row:
    """Synthesize one example with and without reconfiguration."""
    if scale is None:
        scale = bench_scale()
    if library is None:
        library = default_library()
    if config is None:
        config = CrusadeConfig()
    if spec is None:
        spec = build_example(example, scale=scale, library=library)
    baseline_config = CrusadeConfig(
        reconfiguration=False,
        clustering=config.clustering,
        max_explicit_copies=config.max_explicit_copies,
        max_cluster_size=config.max_cluster_size,
        delay_policy=config.delay_policy,
        preemption=config.preemption,
        max_existing_options=config.max_existing_options,
        fast_inner_loop=config.fast_inner_loop,
        link_strategies=config.link_strategies,
        incremental=config.incremental,
        parallel_eval=config.parallel_eval,
        prune=config.prune,
        policy=config.policy,
    )
    without = crusade(spec, library=library, config=baseline_config)
    with_reconfig = crusade(spec, library=library, config=config, baseline=without)
    return Table2Row(
        example=example,
        tasks=spec.total_tasks,
        without=without,
        with_reconfig=with_reconfig,
    )


def run_table2(
    examples: Optional[Iterable[str]] = None, scale: Optional[float] = None
) -> List[Table2Row]:
    """Run every (or the given) example row."""
    if examples is None:
        examples = EXAMPLE_NAMES
    return [run_table2_row(name, scale=scale) for name in examples]


def render_table2(rows: Iterable[Table2Row]) -> str:
    """The paper's Table 2 layout."""
    headers = [
        "Example/(tasks)",
        "PEs",
        "links",
        "CPU s",
        "Cost $",
        "PEs'",
        "links'",
        "CPU s'",
        "Cost' $",
        "Savings %",
    ]
    return render_table(
        "Table 2: Efficacy of CRUSADE "
        "(left: without dynamic reconfiguration, right: with)",
        headers,
        [row.cells() for row in rows],
    )
