"""Benchmark harness: regenerate every table and figure of the paper.

* :mod:`repro.bench.examples` -- synthetic reconstructions of the
  eight proprietary telecom examples of Tables 2/3 (A1TR ... NG XM);
* :mod:`repro.bench.table1` -- the ERUF/EPUF delay-management sweep;
* :mod:`repro.bench.table2` -- CRUSADE with vs without dynamic
  reconfiguration;
* :mod:`repro.bench.table3` -- the same comparison for CRUSADE-FT;
* :mod:`repro.bench.figure2` -- the three-task-graph motivating
  example of Figure 2;
* :mod:`repro.bench.runner` -- shared row/series rendering.
"""

from repro.bench.examples import (
    EXAMPLE_NAMES,
    ExampleProfile,
    build_example,
    example_profile,
)
from repro.bench.table1 import Table1Cell, run_table1, render_table1
from repro.bench.table2 import Table2Row, run_table2_row, render_table2
from repro.bench.table3 import Table3Row, run_table3_row, render_table3
from repro.bench.figure2 import Figure2Outcome, run_figure2

__all__ = [
    "EXAMPLE_NAMES",
    "ExampleProfile",
    "build_example",
    "example_profile",
    "Table1Cell",
    "run_table1",
    "render_table1",
    "Table2Row",
    "run_table2_row",
    "render_table2",
    "Table3Row",
    "run_table3_row",
    "render_table3",
    "Figure2Outcome",
    "run_figure2",
]
