"""Table 1: delay management through FPGAs/CPLDs.

"Increase in delay (%), EPUF = 0.80" for the ten circuits as ERUF
sweeps 0.70 to 1.00; unroutable entries print "Not routable", exactly
like the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.delay.circuits import TABLE1_CIRCUITS, table1_circuit
from repro.delay.pnr import Device, delay_increase
from repro.bench.runner import render_table

#: The ERUF sweep of the paper's columns.
ERUF_SWEEP: Tuple[float, ...] = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00)


@dataclass(frozen=True)
class Table1Cell:
    """One (circuit, ERUF) measurement."""

    circuit: str
    eruf: float
    increase_pct: Optional[float]  # None = not routable

    @property
    def routable(self) -> bool:
        return self.increase_pct is not None

    def rendered(self) -> str:
        if self.increase_pct is None:
            return "Not routable"
        return "%.1f" % (self.increase_pct,)


def run_table1(
    epuf: float = 0.80,
    erufs: Sequence[float] = ERUF_SWEEP,
    circuits: Optional[Sequence[str]] = None,
    device: Device = Device(),
) -> Dict[str, List[Table1Cell]]:
    """Measure every cell of Table 1; keyed by circuit name."""
    if circuits is None:
        circuits = TABLE1_CIRCUITS
    results: Dict[str, List[Table1Cell]] = {}
    for name in circuits:
        circuit = table1_circuit(name)
        cells = []
        for eruf in erufs:
            try:
                increase = delay_increase(circuit, eruf, epuf=epuf, device=device)
            except RoutingError:
                increase = None
            cells.append(
                Table1Cell(circuit=name, eruf=eruf, increase_pct=increase)
            )
        results[name] = cells
    return results


def render_table1(results: Dict[str, List[Table1Cell]]) -> str:
    """The paper's Table 1 layout."""
    erufs = [cell.eruf for cell in next(iter(results.values()))]
    headers = ["Circuit", "PFUs"] + ["ERUF=%.2f" % e for e in erufs]
    rows = []
    for name, cells in results.items():
        circuit = table1_circuit(name)
        rows.append([name, circuit.n_pfus] + [c.rendered() for c in cells])
    return render_table(
        "Table 1: Increase in delay (%), EPUF = 0.80", headers, rows
    )
