"""Table 3: efficacy of CRUSADE-FT.

Fault-tolerant co-synthesis with versus without dynamic
reconfiguration on the same eight examples.  The paper reports savings
of 30.7-53.2 %, with FT architectures costlier than Table 2's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.config import CrusadeConfig
from repro.core.crusade_ft import FtConfig, FtCoSynthesisResult, crusade_ft
from repro.graph.spec import SystemSpec
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.bench.examples import EXAMPLE_NAMES, build_example
from repro.bench.runner import pct, render_table
from repro.bench.table2 import bench_scale


@dataclass
class Table3Row:
    """One example's FT with/without-reconfiguration comparison."""

    example: str
    tasks: int
    without: FtCoSynthesisResult
    with_reconfig: FtCoSynthesisResult

    @property
    def savings_pct(self) -> float:
        """Cost savings of dynamic reconfiguration, percent."""
        if self.without.cost <= 0:
            return 0.0
        return (self.without.cost - self.with_reconfig.cost) / self.without.cost * 100.0

    def cells(self) -> List[object]:
        return [
            "%s/(%d)" % (self.example, self.tasks),
            self.without.n_pes,
            self.without.n_links,
            "%.1f" % self.without.cpu_seconds,
            "%.0f" % self.without.cost,
            self.with_reconfig.n_pes,
            self.with_reconfig.n_links,
            "%.1f" % self.with_reconfig.cpu_seconds,
            "%.0f" % self.with_reconfig.cost,
            pct(self.savings_pct),
        ]


def run_table3_row(
    example: str,
    scale: Optional[float] = None,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    ft_config: Optional[FtConfig] = None,
    spec: Optional[SystemSpec] = None,
) -> Table3Row:
    """Synthesize one fault-tolerant example with and without
    reconfiguration."""
    if scale is None:
        scale = bench_scale()
    if library is None:
        library = default_library()
    if config is None:
        config = CrusadeConfig()
    if ft_config is None:
        ft_config = FtConfig()
    if spec is None:
        spec = build_example(example, scale=scale, library=library)
    baseline_config = CrusadeConfig(
        reconfiguration=False,
        clustering=config.clustering,
        max_explicit_copies=config.max_explicit_copies,
        max_cluster_size=config.max_cluster_size,
        delay_policy=config.delay_policy,
        preemption=config.preemption,
        max_existing_options=config.max_existing_options,
        fast_inner_loop=config.fast_inner_loop,
        link_strategies=config.link_strategies,
        incremental=config.incremental,
        parallel_eval=config.parallel_eval,
        prune=config.prune,
    )
    without = crusade_ft(
        spec, library=library, config=baseline_config, ft_config=ft_config
    )
    with_reconfig = crusade_ft(
        spec, library=library, config=config, ft_config=ft_config, baseline=without
    )
    return Table3Row(
        example=example,
        tasks=spec.total_tasks,
        without=without,
        with_reconfig=with_reconfig,
    )


def run_table3(
    examples: Optional[Iterable[str]] = None, scale: Optional[float] = None
) -> List[Table3Row]:
    """Run every (or the given) example row."""
    if examples is None:
        examples = EXAMPLE_NAMES
    return [run_table3_row(name, scale=scale) for name in examples]


def render_table3(rows: Iterable[Table3Row]) -> str:
    """The paper's Table 3 layout."""
    headers = [
        "Example/(tasks)",
        "PEs",
        "links",
        "CPU s",
        "Cost $",
        "PEs'",
        "links'",
        "CPU s'",
        "Cost' $",
        "Savings %",
    ]
    return render_table(
        "Table 3: Efficacy of CRUSADE-FT "
        "(left: without dynamic reconfiguration, right: with)",
        headers,
        [row.cells() for row in rows],
    )
