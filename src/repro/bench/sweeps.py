"""Parameter sweeps: the scaling series behind the paper's tables.

Two series the evaluation implies but does not plot:

* **CPU time versus task count** -- Table 2's CPU-time columns grow
  monotonically with example size (19 ks to 130 ks on a
  Sparcstation-20); :func:`cpu_time_series` reproduces the shape on
  one example across scales.
* **Savings versus compatibility-group size** -- Figure 2's argument
  generalizes: the more non-overlapping functions share a device, the
  larger the saving; :func:`savings_vs_group_size` quantifies it on
  generated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.graph.generator import GeneratorConfig, generate_spec
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.bench.examples import build_example
from repro.bench.runner import render_table


@dataclass
class SweepPoint:
    """One measurement of a sweep series."""

    x: float
    tasks: int
    cost_without: float
    cost_with: float
    cpu_seconds: float
    feasible: bool

    @property
    def savings_pct(self) -> float:
        if self.cost_without <= 0:
            return 0.0
        return (self.cost_without - self.cost_with) / self.cost_without * 100.0


def cpu_time_series(
    example: str = "A1TR",
    scales: Sequence[float] = (0.1, 0.3, 0.45),
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
) -> List[SweepPoint]:
    """Synthesis CPU time (and cost) across example scales.

    The paper's shape: CPU time grows with task count, and the
    reconfiguration run is somewhat slower than the baseline (its
    columns in Table 2 are consistently higher).
    """
    if library is None:
        library = default_library()
    if config is None:
        config = CrusadeConfig()
    points = []
    for scale in scales:
        spec = build_example(example, scale=scale, library=library)
        baseline = crusade(spec, library=library, config=CrusadeConfig(
            reconfiguration=False,
            max_explicit_copies=config.max_explicit_copies,
        ))
        reconfig = crusade(
            spec, library=library, config=config, baseline=baseline
        )
        points.append(SweepPoint(
            x=scale,
            tasks=spec.total_tasks,
            cost_without=baseline.cost,
            cost_with=reconfig.cost,
            cpu_seconds=baseline.cpu_seconds + reconfig.cpu_seconds,
            feasible=baseline.feasible and reconfig.feasible,
        ))
    return points


def savings_vs_group_size(
    group_sizes: Sequence[int] = (1, 2, 3),
    seed: int = 56,
    n_graphs: int = 6,
    tasks_per_graph: int = 18,
    library: Optional[ResourceLibrary] = None,
) -> List[SweepPoint]:
    """Reconfiguration savings as a function of how many compatible
    functions share a window structure.

    Group size 1 (no compatibility) gives reconfiguration nothing to
    time-share, so savings should be ~0; larger groups let one device
    replace several.
    """
    if library is None:
        library = default_library()
    points = []
    for size in group_sizes:
        spec = generate_spec(GeneratorConfig(
            seed=seed,
            n_graphs=n_graphs - (n_graphs % size),
            tasks_per_graph=tasks_per_graph,
            compat_group_size=size,
            utilization=0.2,
            hw_only_fraction=0.4,
            mixed_fraction=0.15,
        ))
        baseline = crusade(spec, library=library, config=CrusadeConfig(
            reconfiguration=False, max_explicit_copies=2))
        reconfig = crusade(spec, library=library, config=CrusadeConfig(
            reconfiguration=True, max_explicit_copies=2), baseline=baseline)
        points.append(SweepPoint(
            x=float(size),
            tasks=spec.total_tasks,
            cost_without=baseline.cost,
            cost_with=reconfig.cost,
            cpu_seconds=baseline.cpu_seconds + reconfig.cpu_seconds,
            feasible=baseline.feasible and reconfig.feasible,
        ))
    return points


def render_sweep(title: str, x_label: str, points: List[SweepPoint]) -> str:
    """Fixed-width rendering of a sweep series."""
    return render_table(
        title,
        [x_label, "tasks", "cost w/o", "cost w/", "savings %", "cpu s"],
        [
            [
                "%g" % p.x,
                p.tasks,
                "%.0f" % p.cost_without,
                "%.0f" % p.cost_with,
                "%.1f" % p.savings_pct,
                "%.1f" % p.cpu_seconds,
            ]
            for p in points
        ],
    )
