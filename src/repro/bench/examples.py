"""The eight telecom examples of Tables 2 and 3, reconstructed.

The paper's examples are proprietary Bell Labs task graphs from a
digital cellular base station (A1TR), a video distribution router
(VDRTX), SONET/ATM systems (HROST, EST189A, HRXC, ADMR, B192G, NG XM).
We rebuild each as a composition of *sections*: fractions of the task
population organized into compatibility groups of a given size.  Group
size is what dynamic reconfiguration monetizes (a group of three
compatible functions time-shares one device that the baseline buys
three times), so the mix is chosen per example to land the published
cost-savings neighbourhood: ~26-38 % for the mixed systems and >50 %
for B192G / NG XM, whose protection-switching and provisioning planes
are heavily time-multiplexed.

``scale`` shrinks every example proportionally (the full 7 416-task
run takes CPU-hours, as the paper's Sparcstation did); structure --
section mix, group sizes, periods, utilization -- is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.generator import GeneratorConfig, generate_graph
from repro.graph.spec import SystemSpec
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary


@dataclass(frozen=True)
class Section:
    """One slice of an example: ``fraction`` of the tasks arranged in
    compatibility groups of ``group_size`` graphs."""

    fraction: float
    group_size: int

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise SpecificationError("section fraction must be in (0, 1]")
        if self.group_size < 1:
            raise SpecificationError("group size must be at least 1")


@dataclass(frozen=True)
class ExampleProfile:
    """Recipe for one Table 2/3 example."""

    name: str
    total_tasks: int
    sections: Tuple[Section, ...]
    seed: int
    tasks_per_graph: int = 28
    utilization: float = 0.22
    hw_only_fraction: float = 0.4
    mixed_fraction: float = 0.15

    def __post_init__(self) -> None:
        if abs(sum(s.fraction for s in self.sections) - 1.0) > 1e-9:
            raise SpecificationError(
                "example %r section fractions must sum to 1" % (self.name,)
            )


#: The eight examples with the paper's task counts.  Heavier weighting
#: of 3/4-graph compatibility groups drives larger reconfiguration
#: savings (B192G, NG XM in the paper save >51 %).
_PROFILES: Dict[str, ExampleProfile] = {
    profile.name: profile
    for profile in (
        ExampleProfile(
            name="A1TR",
            total_tasks=1126,
            sections=(Section(0.45, 3), Section(0.35, 2), Section(0.20, 1)),
            seed=101,
        ),
        ExampleProfile(
            name="VDRTX",
            total_tasks=1634,
            sections=(Section(0.45, 3), Section(0.30, 2), Section(0.25, 1)),
            seed=102,
        ),
        ExampleProfile(
            name="HROST",
            total_tasks=2645,
            sections=(Section(0.35, 3), Section(0.35, 2), Section(0.30, 1)),
            seed=103,
        ),
        ExampleProfile(
            name="EST189A",
            total_tasks=3826,
            sections=(Section(0.35, 3), Section(0.35, 2), Section(0.30, 1)),
            seed=104,
        ),
        ExampleProfile(
            name="HRXC",
            total_tasks=4571,
            sections=(Section(0.30, 3), Section(0.35, 2), Section(0.35, 1)),
            seed=105,
        ),
        ExampleProfile(
            name="ADMR",
            total_tasks=5419,
            sections=(Section(0.45, 3), Section(0.35, 2), Section(0.20, 1)),
            seed=106,
        ),
        ExampleProfile(
            name="B192G",
            total_tasks=6815,
            sections=(Section(0.40, 4), Section(0.40, 3), Section(0.20, 2)),
            seed=107,
        ),
        ExampleProfile(
            name="NGXM",
            total_tasks=7416,
            # The paper's biggest saver (56.7 %): provisioning and
            # protection planes almost entirely time-multiplexed, and
            # the hardware share of the datapath is the largest.
            sections=(Section(0.60, 4), Section(0.30, 3), Section(0.10, 2)),
            seed=108,
            hw_only_fraction=0.5,
            mixed_fraction=0.1,
        ),
    )
}

#: Example names in the paper's row order.
EXAMPLE_NAMES: List[str] = list(_PROFILES)


def example_profile(name: str) -> ExampleProfile:
    """Profile for one named example."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise SpecificationError(
            "unknown example %r (choose from %s)" % (name, ", ".join(EXAMPLE_NAMES))
        ) from None


def build_example(
    name: str,
    scale: float = 1.0,
    library: Optional[ResourceLibrary] = None,
) -> SystemSpec:
    """Build the named example's specification at the given scale.

    ``scale=1.0`` reproduces the paper's task count; smaller scales
    shrink every section proportionally while keeping at least one
    compatibility group per section.
    """
    if not 0.0 < scale <= 1.0:
        raise SpecificationError("scale must be in (0, 1]")
    profile = example_profile(name)
    if library is None:
        library = default_library()
    rng = random.Random(profile.seed)
    base_config = GeneratorConfig(
        seed=profile.seed,
        utilization=profile.utilization,
        hw_only_fraction=profile.hw_only_fraction,
        mixed_fraction=profile.mixed_fraction,
    )

    graphs = []
    compat_pairs: List[Tuple[str, str]] = []
    unavailability: Dict[str, float] = {}
    graph_id = 0
    for section_id, section in enumerate(profile.sections):
        # Scaling shrinks the number of compatibility groups, never the
        # graphs themselves: reconfiguration savings hinge on each
        # graph's hardware volume straining a device, which must be
        # preserved at every scale.
        section_tasks = profile.total_tasks * section.fraction * scale
        tasks_per_graph = profile.tasks_per_graph
        groups = max(
            1, int(round(section_tasks / (tasks_per_graph * section.group_size)))
        )
        for _ in range(groups):
            if section.group_size > 1:
                period = rng.choice(base_config.compat_periods)
            else:
                period = rng.choice(base_config.periods)
            window = 1.0 / section.group_size
            member_names = []
            for slot in range(section.group_size):
                graph_name = "%s.g%03d" % (name, graph_id)
                graph_id += 1
                graph = generate_graph(
                    name=graph_name,
                    n_tasks=tasks_per_graph,
                    period=period,
                    config=base_config,
                    rng=rng,
                    library=library,
                    est=slot * window * period,
                    window_fraction=window if section.group_size > 1 else 1.0,
                )
                graphs.append(graph)
                member_names.append(graph_name)
                unavailability[graph_name] = rng.choice((4.0, 12.0, 30.0))
            for i, a in enumerate(member_names):
                for b in member_names[i + 1 :]:
                    compat_pairs.append((a, b))

    return SystemSpec(
        name=name,
        graphs=graphs,
        compatibility=compat_pairs,
        boot_time_requirement=0.25,
        unavailability=unavailability,
    )
