"""EXPERIMENTS.md table refresher.

``pytest benchmarks/ --benchmark-only`` writes each rendered table to
``benchmarks/results/``; this module splices those files back into the
fenced code blocks of EXPERIMENTS.md so the document always reflects
the latest measured run.  Blocks are located by the heading that
precedes them, so the surrounding analysis text is preserved.
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, Optional, Union

from repro.errors import SpecificationError

#: EXPERIMENTS.md heading fragment -> results file(s) whose content
#: replaces the first fenced block after the heading.
_SECTION_SOURCES = {
    "## Table 1": ("table1.txt",),
    "## Table 2": ("table2.txt",),
    "## Table 3": ("table3.txt",),
    "## Figure 2": ("figure2.txt",),
    "## Implied scaling series": ("sweep_cpu_time.txt", "sweep_group_size.txt"),
}


def refresh_experiments(
    experiments_path: Union[str, pathlib.Path] = "EXPERIMENTS.md",
    results_dir: Union[str, pathlib.Path] = "benchmarks/results",
) -> Dict[str, bool]:
    """Splice the latest measured tables into EXPERIMENTS.md.

    Returns a mapping of section heading to whether it was refreshed
    (False when the results file is missing -- that benchmark has not
    run yet).  Raises when the document itself is missing.
    """
    doc_path = pathlib.Path(experiments_path)
    results = pathlib.Path(results_dir)
    if not doc_path.exists():
        raise SpecificationError("no experiments document at %s" % (doc_path,))
    text = doc_path.read_text()
    status: Dict[str, bool] = {}
    for heading, sources in _SECTION_SOURCES.items():
        contents = []
        for source in sources:
            path = results / source
            if not path.exists():
                break
            contents.append(path.read_text().strip())
        else:
            replacement = "```\n" + "\n\n".join(contents) + "\n```"
            new_text = _replace_block_after(text, heading, replacement)
            status[heading] = new_text is not None
            if new_text is not None:
                text = new_text
            continue
        status[heading] = False
    doc_path.write_text(text)
    return status


def _replace_block_after(
    text: str, heading: str, replacement: str
) -> Optional[str]:
    """Replace the first ``` fenced block after ``heading``; None when
    the heading or block is absent."""
    start = text.find(heading)
    if start < 0:
        return None
    open_fence = text.find("```", start)
    if open_fence < 0:
        return None
    close_fence = text.find("```", open_fence + 3)
    if close_fence < 0:
        return None
    end = close_fence + 3
    return text[:open_fence] + replacement + text[end:]
