"""Figure 2: the motivating dynamic-reconfiguration example.

Three task graphs T1, T2, T3; a small FPGA F1 that can host any two of
them and a large FPGA F2 that can host all three.  T2 and T3 never
overlap in time, so with dynamic reconfiguration a single F1 suffices:
mode 1 carries {T1, T2}, mode 2 carries {T1, T3}, with a reboot task
T_rc ahead of T3's window.  Without reconfiguration the architecture
needs either two F1s or one F2 -- both costlier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.core.report import CoSynthesisResult
from repro.graph.spec import SystemSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.resources.library import ResourceLibrary
from repro.resources.link import LinkType
from repro.resources.pe import PEKind, PpeType
from repro.units import MS


def figure2_library() -> ResourceLibrary:
    """The two-FPGA resource library of Figure 2(b).

    F1 can accommodate either {T1, T2} or {T1, T3} but not all three;
    F2 can accommodate all three.  F2 costs more than one F1 but less
    than two.
    """
    library = ResourceLibrary()
    library.add_pe_type(
        PpeType(
            name="F1",
            cost=100.0,
            device_kind=PEKind.FPGA,
            pfus=300,
            flip_flops=300,
            pins=64,
            config_bits_per_pfu=128,
        )
    )
    library.add_pe_type(
        PpeType(
            name="F2",
            cost=160.0,
            device_kind=PEKind.FPGA,
            pfus=460,
            flip_flops=460,
            pins=96,
            config_bits_per_pfu=128,
        )
    )
    library.add_link_type(
        LinkType(
            name="bus",
            cost=4.0,
            max_ports=4,
            access_times=(1e-6, 1e-6, 2e-6, 2e-6),
            bytes_per_packet=32,
            packet_tx_time=2e-6,
        )
    )
    return library


def figure2_spec() -> SystemSpec:
    """The three task graphs of Figure 2(a).

    T1 runs all the time (period 100 ms); T2 and T3 run in disjoint
    halves of a 200 ms frame, so they are compatible.  Gate areas are
    sized so T1 + T2 + T3 exceeds F1's 70 %-capped capacity while any
    two fit.
    """

    def graph(name: str, period: float, deadline: float, est: float, gates: int) -> TaskGraph:
        g = TaskGraph(name=name, period=period, deadline=deadline, est=est)
        g.add_task(
            Task(
                name=name + ".f",
                exec_times={"F1": 2 * MS, "F2": 2 * MS},
                area_gates=gates,
                pins=12,
            )
        )
        return g

    t1 = graph("T1", period=0.1, deadline=0.05, est=0.0, gates=800)
    t2 = graph("T2", period=0.2, deadline=0.1, est=0.0, gates=700)
    t3 = graph("T3", period=0.2, deadline=0.1, est=0.1, gates=700)
    return SystemSpec(
        name="figure2",
        graphs=[t1, t2, t3],
        compatibility=[("T2", "T3")],
        boot_time_requirement=0.05,
    )


@dataclass
class Figure2Outcome:
    """Both architectures for the Figure 2 system."""

    with_reconfig: CoSynthesisResult
    without: CoSynthesisResult

    @property
    def savings_pct(self) -> float:
        return (
            (self.without.cost - self.with_reconfig.cost) / self.without.cost * 100.0
        )

    @property
    def reconfiguration_wins(self) -> bool:
        """The paper's claim: one reconfigured F1 beats both
        single-mode options."""
        return (
            self.with_reconfig.feasible
            and self.without.feasible
            and self.with_reconfig.cost < self.without.cost
        )


def run_figure2() -> Figure2Outcome:
    """Synthesize the Figure 2 system both ways."""
    spec = figure2_spec()
    with_reconfig = crusade(
        spec, library=figure2_library(), config=CrusadeConfig(reconfiguration=True)
    )
    without = crusade(
        spec, library=figure2_library(), config=CrusadeConfig(reconfiguration=False)
    )
    return Figure2Outcome(with_reconfig=with_reconfig, without=without)
