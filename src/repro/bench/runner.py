"""Shared rendering helpers for the benchmark tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width text table in the paper's row/column layout."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in materialized
    ]
    return "\n".join([title, rule, line, rule] + body + [rule])


def pct(value: float) -> str:
    """Format a percentage with one decimal, like the paper."""
    return "%.1f" % (value,)
