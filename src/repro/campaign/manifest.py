"""Campaign manifests: the deterministic final aggregate.

The manifest is the campaign's BENCH-style artifact -- the one file
downstream tooling (CI artifact upload, EXPERIMENTS.md splicing,
cross-run diffing) consumes.  It deliberately carries **only
deterministic fields**: job parameters, statuses, and synthesis
results.  Wall-clock times and attempt counts live in the checkpoint
log (``jobs.jsonl``) and the obs event stream instead, so an
interrupted-then-resumed campaign writes a manifest byte-identical
to an uninterrupted run -- the property the resume acceptance test
compares, byte for byte.

Failed jobs appear in the manifest with their exception summary (one
line, no traceback -- tracebacks hold absolute paths and line numbers
that would break determinism across checkouts; the full text is in
the checkpoint record).  Reports quoting ``BENCH_*`` numbers from a
campaign must quote the manifest's ``summary.failed`` count alongside
them; see EXPERIMENTS.md ("Campaign methodology").
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.io.campaign_json import CAMPAIGN_SCHEMA_VERSION
from repro.bench.runner import render_table
from repro.campaign.grid import CampaignSpec
from repro.campaign.jobs import Job


def build_manifest(
    spec: CampaignSpec,
    jobs: Sequence[Job],
    records: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Aggregate terminal records into the canonical manifest payload.

    Every job must have a terminal record; entries are emitted in
    sorted-job-id order regardless of completion order.
    """
    entries: List[Dict[str, Any]] = []
    done = failed = 0
    for job in sorted(jobs, key=lambda j: j.id):
        record = records.get(job.id)
        if record is None:
            raise ValueError("job %r has no terminal record" % (job.id,))
        entry: Dict[str, Any] = {
            "id": job.id,
            "kind": job.kind,
            "example": job.example,
            "scale": job.scale,
            "variant": job.variant,
            "status": record["status"],
        }
        if record["status"] == "done":
            done += 1
            entry["result"] = record.get("result")
        else:
            failed += 1
            entry["error"] = record.get("error")
        entries.append(entry)
    return {
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "campaign": spec.to_dict(),
        "jobs": entries,
        "summary": {"jobs": len(entries), "done": done, "failed": failed},
    }


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """Fixed-width table of a manifest, in the Table 2/3 layout.

    Synthesis jobs get the paper's without/with columns (sans CPU
    seconds, which the manifest deliberately omits); other kinds get
    a compact status listing.  Failed jobs render their error summary
    in place of numbers so they are visible next to the ``BENCH_*``
    rows they would otherwise have produced.
    """
    campaign = manifest.get("campaign", {})
    title = "Campaign %s (%s): %d jobs, %d done, %d failed" % (
        campaign.get("name", "?"),
        campaign.get("kind", "?"),
        manifest["summary"]["jobs"],
        manifest["summary"]["done"],
        manifest["summary"]["failed"],
    )
    if campaign.get("kind") in ("table2", "table3"):
        headers = [
            "Job", "tasks", "PEs", "links", "Cost $",
            "PEs'", "links'", "Cost' $", "Savings %", "status",
        ]
        rows = []
        for entry in manifest["jobs"]:
            if entry["status"] == "done":
                result = entry["result"]
                without, with_ = result["without"], result["with_reconfig"]
                rows.append([
                    entry["id"], result["tasks"],
                    without["pes"], without["links"], "%.0f" % without["cost"],
                    with_["pes"], with_["links"], "%.0f" % with_["cost"],
                    "%.1f" % result["savings_pct"], "done",
                ])
            else:
                rows.append([
                    entry["id"], "-", "-", "-", "-", "-", "-", "-", "-",
                    "FAILED: %s" % (entry.get("error") or "?",),
                ])
        return render_table(title, headers, rows)
    headers = ["Job", "status", "detail"]
    rows = []
    for entry in manifest["jobs"]:
        detail = (
            entry.get("error") or ""
            if entry["status"] != "done"
            else ""
        )
        rows.append([entry["id"], entry["status"], detail])
    return render_table(title, headers, rows)


def error_summary(traceback_text: str) -> str:
    """One deterministic line naming the failure.

    The last non-empty traceback line is the ``ExceptionType:
    message`` summary -- stable across checkouts, unlike the frames
    above it.
    """
    lines = [ln.strip() for ln in traceback_text.strip().splitlines()]
    return lines[-1] if lines else "unknown error"
