"""The fault-tolerant campaign supervisor.

:func:`run_campaign` drives one campaign to completion: it expands
the grid, skips jobs the checkpoint log already settled, dispatches
the rest to persistent workers supervised by
:class:`~repro.exec.supervise.SupervisedWorker` (the execution
substrate's single crash/timeout/error state machine, over the
transport ``REPRO_EXEC_TRANSPORT`` resolves -- pipes by default),
and survives the three failure shapes a long campaign meets --

* **worker crash** (hard process death: segfault, OOM kill,
  ``os._exit``): detected via the process sentinel / a dead pipe (or,
  on the socket transport, a dropped connection or stale heartbeat);
  the worker is respawned and the job re-attempted;
* **per-job timeout**: a worker past its attempt deadline is killed
  and respawned, and the attempt counts as a failure;
* **job error** (an exception inside the job): the traceback comes
  back over the pipe and the attempt counts as a failure.

Failed attempts retry under the spec's bounded-exponential
:class:`~repro.campaign.grid.RetryPolicy`; a job that exhausts its
retries is recorded as **failed** -- with its traceback -- and the
campaign keeps going (graceful degradation), so one poisoned grid
cell cannot abort a night of synthesis.  Every terminal record is
fsynced to ``jobs.jsonl`` before the runner moves on, which is what
makes ``resume`` lossless.

Progress streams through :mod:`repro.obs`: ``campaign.*`` events
(``job.start/done/retry/failed`` with per-job wall seconds) and the
``campaign.jobs.done/failed/retried/skipped`` counters.
"""

from __future__ import annotations

import collections
import pathlib
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, List, Optional, Union

from repro.obs import JsonlSink, Tracer
from repro.obs.trace import resolve_tracer
from repro.exec import SupervisedWorker, make_job_transport
from repro.exec import supervise as _supervision
from repro.campaign.checkpoint import CampaignDir
from repro.campaign.grid import CampaignSpec, expand_jobs
from repro.campaign.jobs import Job
from repro.campaign.manifest import build_manifest, error_summary, render_manifest

#: Worker target resolved inside each worker process.
JOB_TARGET = "repro.campaign.jobs:execute_job"

#: Supervision tick: the longest the loop sleeps with work in flight.
_TICK_S = 0.25

#: Terminal-failure details for crash/timeout, shared with the
#: execution substrate.  Deliberately **policy-independent** -- no
#: attempt counts, no timeout budgets -- because ``error_summary`` of
#: this text lands in the manifest's per-job ``error`` field, and a
#: resume under ``policy_override`` must still produce byte-identical
#: manifest output.  Attempt counts live in the checkpoint record and
#: the obs events instead.
_CRASH_DETAIL = _supervision.CRASH_DETAIL
_TIMEOUT_DETAIL = _supervision.TIMEOUT_DETAIL


@dataclass
class CampaignOutcome:
    """What one ``run``/``resume`` invocation accomplished."""

    directory: pathlib.Path
    complete: bool
    done: int
    failed: int
    skipped: int
    retried: int
    #: The final manifest payload; None while jobs remain.
    manifest: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Complete with zero failed jobs."""
        return self.complete and self.failed == 0


class _Slot:
    """Parent-side supervision state for one worker."""

    __slots__ = ("worker", "job", "attempt", "started_at", "deadline")

    def __init__(self, worker: SupervisedWorker) -> None:
        """Wrap ``worker`` with idle supervision state."""
        self.worker = worker
        self.job: Optional[Job] = None
        self.attempt = 0
        self.started_at = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        """Whether a job is in flight on this slot."""
        return self.job is not None

    def clear(self) -> None:
        """Mark the slot idle."""
        self.job = None
        self.attempt = 0
        self.deadline = None


def run_campaign(
    directory: Union[str, pathlib.Path],
    spec: Optional[CampaignSpec] = None,
    workers: int = 1,
    resume: bool = False,
    retry_failed: bool = True,
    tracer: Optional[Tracer] = None,
    stop_after: Optional[int] = None,
    policy_override=None,
) -> CampaignOutcome:
    """Run (or resume) a campaign; returns what this invocation did.

    ``run`` mode needs ``spec`` and refuses a directory holding a
    different campaign; ``resume=True`` reloads the stored spec.
    Jobs with a ``done`` checkpoint record are skipped; previously
    ``failed`` jobs are re-attempted unless ``retry_failed=False``.
    ``stop_after`` stops the invocation after that many *new*
    terminal records -- the test hook simulating a mid-campaign kill
    (in-flight work is discarded exactly as a real kill would).
    ``tracer`` overrides the default tracer that streams events to
    ``events.jsonl`` in the campaign directory.  ``policy_override``
    substitutes the retry policy for *this invocation only* -- the
    stored spec, and therefore the manifest, keep the original, so
    resuming with a different timeout cannot change the final bytes.
    """
    cdir = CampaignDir(directory)
    if resume:
        spec = cdir.load_spec()
    else:
        if spec is None:
            raise ValueError("run_campaign needs a spec unless resume=True")
        cdir.write_spec(spec)
    policy = policy_override if policy_override is not None else spec.policy

    own_tracer = tracer is None
    if own_tracer:
        tracer = Tracer(sinks=[JsonlSink(cdir.events_path)])
    tracer = resolve_tracer(tracer)

    jobs = expand_jobs(spec)
    records = cdir.load_records()
    pending: "collections.deque" = collections.deque()
    skipped = 0
    for job in jobs:
        record = records.get(job.id)
        if record is not None and record["status"] == "done":
            skipped += 1
        elif (
            record is not None
            and record["status"] == "failed"
            and not retry_failed
        ):
            skipped += 1
        else:
            # (job, attempt, ready_at) -- monotonic-clock gate for
            # backoff; 0.0 means ready now.
            pending.append((job, 1, 0.0))
    tracer.incr("campaign.jobs.skipped", skipped)
    tracer.event(
        "campaign.start",
        campaign=spec.name,
        jobs=len(jobs),
        pending=len(pending),
        skipped=skipped,
        resume=resume,
    )

    counts = {"done": 0, "failed": 0, "retried": 0}
    interrupted = False
    slots: List[_Slot] = []
    try:
        if pending:
            n_workers = max(1, min(workers, len(pending)))
            slots = [
                _Slot(SupervisedWorker(
                    make_job_transport(JOB_TARGET), tracer=tracer
                ))
                for _ in range(n_workers)
            ]
            interrupted = not _supervise(
                slots, pending, policy, cdir, tracer, counts, stop_after
            )
    except KeyboardInterrupt:
        interrupted = True
    finally:
        for slot in slots:
            slot.worker.stop()
        cdir.close()

    records = cdir.load_records()
    complete = not interrupted and all(job.id in records for job in jobs)
    manifest = None
    if complete:
        manifest = build_manifest(spec, jobs, records)
        cdir.write_manifest(manifest)
        cdir.table_path.write_text(render_manifest(manifest) + "\n")
    tracer.event(
        "campaign.end",
        complete=complete,
        done=counts["done"],
        failed=counts["failed"],
    )
    if own_tracer:
        tracer.close()
    return CampaignOutcome(
        directory=pathlib.Path(directory),
        complete=complete,
        done=counts["done"],
        failed=counts["failed"],
        skipped=skipped,
        retried=counts["retried"],
        manifest=manifest,
    )


# ----------------------------------------------------------------------
def _supervise(
    slots: List[_Slot],
    pending: "collections.deque",
    policy,
    cdir: CampaignDir,
    tracer: Tracer,
    counts: Dict[str, int],
    stop_after: Optional[int],
) -> bool:
    """The dispatch/supervision loop; False if stopped early."""
    terminal_this_run = 0

    def finish(slot: _Slot, record: Dict[str, Any]) -> None:
        """Durably checkpoint a terminal record and idle the slot."""
        cdir.append_record(record)
        slot.clear()

    while pending or any(s.busy for s in slots):
        now = time.monotonic()
        # -- dispatch ready jobs onto idle workers ---------------------
        for slot in slots:
            if slot.busy or not pending:
                continue
            entry = _pop_ready(pending, now)
            if entry is None:
                break
            job, attempt, _ = entry
            if not slot.worker.alive:
                slot.worker.spawn()
            slot.job = job
            slot.attempt = attempt
            slot.started_at = now
            slot.deadline = (
                now + policy.timeout_s if policy.timeout_s else None
            )
            slot.worker.submit(job.id, attempt, job.to_dict())
            tracer.event("campaign.job.start", job=job.id, attempt=attempt)

        busy = [s for s in slots if s.busy]
        if not busy:
            # Everything pending is backing off; sleep to the nearest
            # ready time.
            wake = min(ready_at for _, _, ready_at in pending)
            time.sleep(max(0.0, min(_TICK_S, wake - now)))
            continue

        # -- wait for a reply, a death, or a deadline ------------------
        timeout = _TICK_S
        for slot in busy:
            if slot.deadline is not None:
                timeout = min(timeout, max(0.0, slot.deadline - now))
        waitables = []
        for slot in busy:
            waitables.extend(slot.worker.wait_handles())
        if waitables:
            _conn_wait(waitables, timeout=timeout)
        now = time.monotonic()

        for slot in busy:
            job, attempt = slot.job, slot.attempt
            wall_s = now - slot.started_at
            # The substrate's state machine classifies the attempt:
            # reply (ok/error), transport death (crash; the worker is
            # already replaced), or deadline (timeout; killed with the
            # escalated terminate and replaced).
            outcome = slot.worker.poll(now, deadline=slot.deadline)
            if outcome is None:
                continue
            if outcome.kind == _supervision.OK:
                finish(slot, {
                    "job": job.id,
                    "status": "done",
                    "attempts": attempt,
                    "result": outcome.value,
                    "wall_s": round(wall_s, 3),
                })
                counts["done"] += 1
                terminal_this_run += 1
                tracer.incr("campaign.jobs.done")
                tracer.event(
                    "campaign.job.done",
                    job=job.id, attempt=attempt,
                    wall_s=round(wall_s, 3),
                )
            else:
                # crash -> the policy-independent crash detail;
                # timeout -> the timeout detail; error -> traceback.
                terminal_this_run += _attempt_failed(
                    slot, outcome.kind, outcome.value,
                    pending, policy, tracer, counts, finish, wall_s,
                )
            if stop_after is not None and terminal_this_run >= stop_after:
                return False
    return True


def _pop_ready(pending: "collections.deque", now: float):
    """Pop the first queue entry whose backoff gate has passed.

    Retried jobs sit in the same FIFO as fresh ones but carry a
    future ``ready_at``; skipping over them keeps a long backoff from
    head-blocking work that is ready now.
    """
    for i in range(len(pending)):
        if pending[i][2] <= now:
            entry = pending[i]
            del pending[i]
            return entry
    return None


def _attempt_failed(
    slot: _Slot,
    reason: str,
    detail: str,
    pending: "collections.deque",
    policy,
    tracer: Tracer,
    counts: Dict[str, int],
    finish,
    wall_s: float,
) -> int:
    """Route one failed attempt: retry with backoff, or record failed.

    Returns 1 when the failure was terminal (a ``failed`` checkpoint
    record was written), 0 when the job was re-queued for another
    attempt.  Either way the slot is idle afterwards.
    """
    job, attempt = slot.job, slot.attempt
    if attempt <= policy.retries:
        delay = policy.delay(attempt + 1)
        pending.append((job, attempt + 1, time.monotonic() + delay))
        slot.clear()
        counts["retried"] += 1
        tracer.incr("campaign.jobs.retried")
        tracer.event(
            "campaign.job.retry",
            job=job.id, attempt=attempt, reason=reason,
            backoff_s=round(delay, 3),
        )
        return 0
    finish(slot, {
        "job": job.id,
        "status": "failed",
        "attempts": attempt,
        "reason": reason,
        "error": error_summary(detail),
        "traceback": detail,
        "wall_s": round(wall_s, 3),
    })
    counts["failed"] += 1
    tracer.incr("campaign.jobs.failed")
    tracer.event(
        "campaign.job.failed",
        job=job.id, attempts=attempt, reason=reason,
    )
    return 1


# ----------------------------------------------------------------------
def campaign_status(
    directory: Union[str, pathlib.Path]
) -> Dict[str, Any]:
    """Summarize a campaign directory without running anything.

    Returns total/done/failed/pending counts, the failed job ids with
    their one-line errors, and whether a final manifest exists.
    """
    cdir = CampaignDir(directory)
    spec = cdir.load_spec()
    jobs = expand_jobs(spec)
    records = cdir.load_records()
    done = [j.id for j in jobs if records.get(j.id, {}).get("status") == "done"]
    failed = {
        j.id: records[j.id].get("error", "?")
        for j in jobs
        if records.get(j.id, {}).get("status") == "failed"
    }
    pending = [j.id for j in jobs if j.id not in records]
    return {
        "name": spec.name,
        "kind": spec.kind,
        "jobs": len(jobs),
        "done": len(done),
        "failed": failed,
        "pending": pending,
        "complete": cdir.manifest_path.exists(),
    }
