"""Resumable, fault-tolerant benchmark campaigns.

A *campaign* is a declarative grid -- examples x scales x config
variants -- expanded into independent jobs and driven to completion
by a supervisor that survives worker crashes, per-job timeouts and
mid-campaign kills.  It is the harness the Table 2/Table 3 sweeps run
through once they outgrow a single in-process run: every completed
job is durably checkpointed (JSONL, fsync per record) under a
campaign directory, so a killed campaign resumes from its completed
jobs and the final manifest is byte-identical to an uninterrupted
run.

The pieces:

* :mod:`repro.campaign.grid` -- :class:`CampaignSpec`,
  :class:`Variant`, :class:`RetryPolicy` and grid expansion;
* :mod:`repro.campaign.jobs` -- the :class:`Job` unit, the worker-side
  executor, and the fault-injection hook the tests use;
* :mod:`repro.campaign.checkpoint` -- the campaign directory layout
  and the append-only checkpoint log;
* :mod:`repro.campaign.runner` -- :func:`run_campaign`: dispatch onto
  persistent worker processes (:mod:`repro.perf.procpool`),
  bounded-backoff retries, graceful degradation to failed-job
  records;
* :mod:`repro.campaign.manifest` -- the deterministic final
  aggregate and its Table 2/3-style rendering.

CLI surface: ``repro campaign run | resume | status`` (see
README.md, "Campaigns").
"""

from repro.campaign.checkpoint import CampaignDir
from repro.campaign.grid import (
    VARIANT_PRESETS,
    CampaignSpec,
    RetryPolicy,
    Variant,
    expand_jobs,
    spec_from_flags,
)
from repro.campaign.jobs import JOB_KINDS, Job, execute_job
from repro.campaign.manifest import build_manifest, render_manifest
from repro.campaign.runner import (
    CampaignOutcome,
    campaign_status,
    run_campaign,
)

__all__ = [
    "CampaignDir",
    "CampaignOutcome",
    "CampaignSpec",
    "JOB_KINDS",
    "Job",
    "RetryPolicy",
    "VARIANT_PRESETS",
    "Variant",
    "build_manifest",
    "campaign_status",
    "execute_job",
    "expand_jobs",
    "render_manifest",
    "run_campaign",
    "spec_from_flags",
]
