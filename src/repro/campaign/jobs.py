"""Campaign job units and their worker-side executor.

A :class:`Job` is one independent cell of a campaign grid; the
executor :func:`execute_job` runs inside a persistent worker process
(a :mod:`repro.exec` transport with target
``"repro.campaign.jobs:execute_job"``) and returns a compact,
JSON-able, *deterministic* result -- wall-clock times never appear in
it, so the final manifest is byte-identical across reruns and
resumes.

Job kinds
---------

``table2``
    One example's with/without-reconfiguration comparison
    (:func:`repro.bench.table2.run_table2_row`) under the variant's
    config overrides.
``table3``
    The fault-tolerant comparison
    (:func:`repro.bench.table3.run_table3_row`).
``selftest``
    A synthesis-free job whose result is a pure function of its
    parameters.  It exists so the crash/retry/resume machinery can be
    exercised in milliseconds, and it hosts the fault-injection hook.
``synthesize``
    One full co-synthesis of an embedded ``crusade-spec`` document
    (``params["spec"]``) under the job's config overrides -- the unit
    of work the synthesis service (:mod:`repro.service`) dispatches to
    its shard pool.  The result is the run-neutral ``crusade-result``
    export (``cpu_seconds``/``stats`` stripped), so a recomputation of
    the same request is byte-identical to the first -- the property
    the service's cache and coalescing layers are built on.

Fault injection
---------------

A job's ``params`` may carry an ``inject`` map consumed *inside the
worker*, keyed by the attempt number the supervisor sends along:

* ``{"crash_attempts": N}`` -- attempts ``<= N`` hard-exit the worker
  process (``os._exit``), simulating a segfault/OOM kill;
* ``{"error_attempts": N}`` -- attempts ``<= N`` raise, simulating a
  job bug (the traceback is captured in the checkpoint record);
* ``{"hang_attempts": N}`` -- attempts ``<= N`` sleep far past any
  per-job timeout, simulating a wedged job;
* ``{"ignore_sigterm": true}`` -- the worker masks SIGTERM first,
  simulating a wedged process that survives a polite ``terminate()``
  (exercises the supervisor's SIGKILL escalation);
* ``{"touch": path}`` -- touch ``path`` after the masks above are
  installed (and before any hang), so tests can wait for the worker
  to reach a known state instead of sleeping.

Injection is honoured for every kind (the hook runs before the
executor), but only tests and smoke campaigns should use it.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

#: The job kinds :func:`execute_job` understands.
JOB_KINDS = ("table2", "table3", "selftest", "synthesize")

#: The kinds a campaign grid can expand on its own: ``synthesize``
#: jobs need a per-job spec document in ``params``, which only the
#: service front end (:mod:`repro.service`) constructs.
CAMPAIGN_GRID_KINDS = ("table2", "table3", "selftest")

#: How long an injected hang sleeps; effectively forever next to any
#: sane per-job timeout, short enough that a leaked worker exits.
_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class Job:
    """One independent unit of campaign work."""

    id: str
    kind: str
    example: str
    scale: float
    variant: str
    #: CrusadeConfig keyword overrides from the variant.
    config: Mapping[str, Any] = field(default_factory=dict)
    #: Kind-specific extras (selftest payloads, ``inject`` maps).
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the worker payload and manifest key set)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "example": self.example,
            "scale": self.scale,
            "variant": self.variant,
            "config": dict(self.config),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Job":
        """Inverse of :meth:`to_dict`."""
        return cls(
            id=payload["id"],
            kind=payload["kind"],
            example=payload["example"],
            scale=float(payload["scale"]),
            variant=payload["variant"],
            config=dict(payload.get("config", {})),
            params=dict(payload.get("params", {})),
        )


# ----------------------------------------------------------------------
def _apply_injection(params: Mapping[str, Any], attempt: int) -> None:
    """Honour the job's ``inject`` map for this attempt (test hook)."""
    inject = params.get("inject")
    if not inject:
        return
    if attempt <= inject.get("crash_attempts", 0):
        os._exit(23)
    if inject.get("ignore_sigterm"):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    if inject.get("touch"):
        pathlib.Path(inject["touch"]).touch()
    if attempt <= inject.get("hang_attempts", 0):
        time.sleep(float(inject.get("hang_seconds", _HANG_SECONDS)))
    if attempt <= inject.get("error_attempts", 0):
        raise RuntimeError(
            "injected failure for %r (attempt %d)"
            % (params.get("label", "job"), attempt)
        )


def _result_side(result) -> Dict[str, Any]:
    """The deterministic slice of one CoSynthesisResult-like object."""
    return {
        "pes": result.n_pes,
        "links": result.n_links,
        "cost": round(result.cost, 2),
        "feasible": result.feasible,
    }


def _run_table2(job: Job) -> Dict[str, Any]:
    """Execute a ``table2`` job: one example, without vs. with."""
    from repro.core.config import CrusadeConfig
    from repro.bench.table2 import run_table2_row

    row = run_table2_row(
        job.example,
        scale=job.scale,
        config=CrusadeConfig(**dict(job.config)),
    )
    return {
        "example": job.example,
        "tasks": row.tasks,
        "without": _result_side(row.without),
        "with_reconfig": _result_side(row.with_reconfig),
        "savings_pct": round(row.savings_pct, 1),
    }


def _run_table3(job: Job) -> Dict[str, Any]:
    """Execute a ``table3`` job: the fault-tolerant comparison."""
    from repro.core.config import CrusadeConfig
    from repro.bench.table3 import run_table3_row

    row = run_table3_row(
        job.example,
        scale=job.scale,
        config=CrusadeConfig(**dict(job.config)),
    )
    return {
        "example": job.example,
        "tasks": row.tasks,
        "without": _result_side(row.without),
        "with_reconfig": _result_side(row.with_reconfig),
        "savings_pct": round(row.savings_pct, 1),
    }


def _run_selftest(job: Job) -> Dict[str, Any]:
    """Execute a ``selftest`` job: a pure function of its params."""
    value = job.params.get("value", job.example)
    return {
        "example": job.example,
        "echo": value,
        "checksum": sum(ord(c) for c in "%s|%s" % (job.id, value)),
    }


def _run_synthesize(job: Job) -> Dict[str, Any]:
    """Execute a ``synthesize`` job: one service synthesis request.

    ``params["spec"]`` is a ``crusade-spec`` document (already
    admission-validated by the server, but revalidated here by
    ``spec_from_dict`` -- a worker must never trust a pipe);
    ``job.config`` carries the whitelisted overrides plus the server's
    ``cache_dir``, so :func:`repro.core.crusade.crusade` itself
    read-probes and write-throughs the shared content-addressed store.
    """
    from repro.core.config import CrusadeConfig
    from repro.core.crusade import crusade
    from repro.io.result_json import result_to_dict
    from repro.io.service_json import strip_run_varying
    from repro.io.spec_json import spec_from_dict

    spec = spec_from_dict(job.params["spec"])
    result = crusade(spec, config=CrusadeConfig(**dict(job.config)))
    return {
        "system": spec.name,
        "feasible": result.feasible,
        "cost": round(result.cost, 2),
        "result": strip_run_varying(result_to_dict(result)),
    }


_EXECUTORS = {
    "table2": _run_table2,
    "table3": _run_table3,
    "selftest": _run_selftest,
    "synthesize": _run_synthesize,
}


def execute_job(payload: Mapping[str, Any], attempt: int) -> Dict[str, Any]:
    """Run one job payload inside a worker; returns its result dict.

    ``payload`` is ``Job.to_dict()`` output; ``attempt`` is 1-based
    and exists for the fault-injection hook.  Raising here is safe:
    the worker loop captures the traceback and the supervisor turns
    it into a retry or a failed-job record.
    """
    job = Job.from_dict(payload)
    _apply_injection(job.params, attempt)
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        raise ValueError("unknown job kind %r" % (job.kind,)) from None
    return executor(job)
