"""The on-disk campaign directory: spec, checkpoint log, manifest.

Layout (see :mod:`repro.io.campaign_json` for the byte-level
contracts)::

    <campaign dir>/
      campaign.json   # the canonical CampaignSpec; written by `run`
      jobs.jsonl      # append-only terminal job records (fsync/line)
      events.jsonl    # obs event stream of the latest run/resume
      manifest.json   # canonical final aggregate; only when complete
      table.txt       # human-readable rendering of the manifest

The checkpoint log is the resume contract: a record is written only
when a job reaches a *terminal* state (``done`` or ``failed`` after
retry exhaustion), and the write is flushed and fsynced before the
runner moves on, so a killed campaign loses at most in-flight work.
On load, the last record per job id wins -- a job that failed in one
invocation and succeeded on resume is superseded by its ``done``
record.  A kill landing *inside* a write leaves a newline-less
partial tail: readers drop it, and the first append of the next
invocation truncates it first so the log never fuses the fragment
with a fresh record into a corrupt line.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, Optional, Union

from repro.errors import SpecificationError
from repro.io.campaign_json import (
    CAMPAIGN_SCHEMA_VERSION,
    append_jsonl,
    canonical_dumps,
    dump_canonical,
    load_json,
    read_jsonl,
)
from repro.campaign.grid import CampaignSpec

#: Terminal job statuses recorded in the checkpoint log.
TERMINAL_STATUSES = ("done", "failed")


class CampaignDir:
    """Owns one campaign directory's files and invariants."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        """Bind to ``root`` (created lazily by :meth:`write_spec`)."""
        self.root = pathlib.Path(root)
        self._log_fh = None

    # -- paths ---------------------------------------------------------
    @property
    def spec_path(self) -> pathlib.Path:
        """``campaign.json``."""
        return self.root / "campaign.json"

    @property
    def log_path(self) -> pathlib.Path:
        """``jobs.jsonl`` (the checkpoint log)."""
        return self.root / "jobs.jsonl"

    @property
    def events_path(self) -> pathlib.Path:
        """``events.jsonl`` (the obs stream of the latest invocation)."""
        return self.root / "events.jsonl"

    @property
    def manifest_path(self) -> pathlib.Path:
        """``manifest.json``."""
        return self.root / "manifest.json"

    @property
    def table_path(self) -> pathlib.Path:
        """``table.txt``."""
        return self.root / "table.txt"

    # -- spec ----------------------------------------------------------
    def write_spec(self, spec: CampaignSpec) -> None:
        """Persist the campaign spec, creating the directory.

        Refuses to overwrite a *different* spec: two campaigns must
        not share a directory, and ``resume`` relies on the stored
        spec being the one that produced the checkpoint log.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        new_bytes = canonical_dumps(spec.to_dict())
        if self.spec_path.exists():
            old_bytes = self.spec_path.read_text()
            if old_bytes != new_bytes:
                raise SpecificationError(
                    "%s already holds a different campaign; use a fresh "
                    "--dir or `repro campaign resume`" % (self.root,)
                )
            return
        dump_canonical(spec.to_dict(), self.spec_path)

    def load_spec(self) -> CampaignSpec:
        """Load the stored campaign spec."""
        if not self.spec_path.exists():
            raise SpecificationError(
                "%s is not a campaign directory (no campaign.json)"
                % (self.root,)
            )
        return CampaignSpec.from_dict(load_json(self.spec_path))

    # -- checkpoint log ------------------------------------------------
    def append_record(self, record: Dict[str, Any]) -> None:
        """Durably append one terminal job record."""
        if record.get("status") not in TERMINAL_STATUSES:
            raise ValueError(
                "checkpoint records must be terminal, got %r"
                % (record.get("status"),)
            )
        if self._log_fh is None:
            self._repair_partial_tail()
            self._log_fh = open(self.log_path, "a")
        append_jsonl(self._log_fh, dict(record, v=CAMPAIGN_SCHEMA_VERSION))

    def _repair_partial_tail(self) -> None:
        """Truncate a partial trailing line left by a mid-write kill.

        :func:`~repro.io.campaign_json.read_jsonl` tolerates a
        partial tail on load, but appending directly after it would
        fuse the fragment and the next record into one malformed line
        *followed by* valid ones -- the shape ``read_jsonl`` rejects
        as corruption -- so the tail is cut back to the last complete
        line before the log is reopened for append.
        """
        if not self.log_path.exists():
            return
        with open(self.log_path, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            fh.truncate(data.rfind(b"\n") + 1)
            fh.flush()
            os.fsync(fh.fileno())

    def load_records(self) -> Dict[str, Dict[str, Any]]:
        """The last terminal record per job id (empty if no log)."""
        if not self.log_path.exists():
            return {}
        records: Dict[str, Dict[str, Any]] = {}
        for record in read_jsonl(self.log_path):
            job = record.get("job")
            if job is not None and record.get("status") in TERMINAL_STATUSES:
                records[job] = record
        return records

    def close(self) -> None:
        """Close the checkpoint log handle (safe to call twice)."""
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None

    # -- manifest ------------------------------------------------------
    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Atomically write the canonical final manifest."""
        dump_canonical(manifest, self.manifest_path)

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        """The final manifest, or None while the campaign is unfinished."""
        if not self.manifest_path.exists():
            return None
        return load_json(self.manifest_path)
