"""Declarative campaign grids and their expansion into jobs.

A campaign is a grid -- examples x scales x config variants -- plus a
retry/timeout policy.  :func:`expand_jobs` turns the grid into its
list of independent :class:`~repro.campaign.jobs.Job` units in a
deterministic order (examples outermost, then scales, then variants),
each with a stable human-readable id like
``table2:A1TR@0.05:pruned``.  Job ids are the keys of the checkpoint
log, so expansion refuses grids that would produce duplicates.

Variants map onto :class:`repro.core.config.CrusadeConfig` knobs; the
named presets in :data:`VARIANT_PRESETS` cover the kill-switch
matrix (pruning and the incremental engine on/off) that the
benchmark ablations sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SpecificationError
from repro.io.campaign_json import CAMPAIGN_SCHEMA_VERSION
from repro.campaign.jobs import JOB_KINDS, Job

#: Named config variants: CrusadeConfig knob overrides per name.
#: ``largest-first`` is expressed purely through the pipeline's policy
#: hooks (see :mod:`repro.core.stages.policies`): it re-orders cluster
#: allocation biggest-first instead of by priority.
VARIANT_PRESETS: Dict[str, Dict[str, Any]] = {
    "default": {},
    "pruned": {"prune": True, "incremental": True},
    "no-prune": {"prune": False},
    "no-incremental": {"incremental": False},
    "from-scratch": {"prune": False, "incremental": False},
    "largest-first": {"policy": "largest-first"},
}


@dataclass(frozen=True)
class Variant:
    """One named configuration column of the grid."""

    name: str
    #: CrusadeConfig keyword overrides (e.g. ``{"prune": False}``).
    config: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def preset(cls, name: str) -> "Variant":
        """The named preset from :data:`VARIANT_PRESETS`."""
        try:
            return cls(name=name, config=dict(VARIANT_PRESETS[name]))
        except KeyError:
            raise SpecificationError(
                "unknown variant preset %r (choose from %s)"
                % (name, ", ".join(sorted(VARIANT_PRESETS)))
            ) from None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"name": self.name, "config": dict(self.config)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Variant":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"], config=dict(payload.get("config", {}))
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job fault-tolerance policy for one campaign.

    ``retries`` counts *re*-attempts, so a job runs at most
    ``retries + 1`` times before it is recorded as failed.  Backoff
    between attempts is bounded exponential:
    ``min(cap, backoff_s * 2**(attempt-1))``.  ``timeout_s`` is the
    per-attempt wall-clock budget (``None`` = no timeout); a timed-out
    worker is killed and respawned, and the attempt counts as a
    failure.
    """

    retries: int = 2
    backoff_s: float = 0.5
    backoff_cap_s: float = 30.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        """Reject nonsensical policies."""
        if self.retries < 0:
            raise SpecificationError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise SpecificationError("backoff must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecificationError("timeout_s must be positive")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt`` (2-based)."""
        return min(self.backoff_cap_s, self.backoff_s * 2 ** max(0, attempt - 2))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(
            retries=payload.get("retries", 2),
            backoff_s=payload.get("backoff_s", 0.5),
            backoff_cap_s=payload.get("backoff_cap_s", 30.0),
            timeout_s=payload.get("timeout_s"),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: a grid plus its retry policy.

    ``kind`` picks the job executor (``table2``, ``table3`` or the
    synthesis-free ``selftest`` used by the fault-injection tests);
    ``params`` carries kind-specific extras keyed by job id --
    notably ``inject`` maps for the fault-injection hook (see
    :mod:`repro.campaign.jobs`).
    """

    name: str
    kind: str
    examples: Tuple[str, ...]
    scales: Tuple[float, ...]
    variants: Tuple[Variant, ...] = (Variant("default"),)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate the grid axes."""
        if self.kind not in JOB_KINDS:
            raise SpecificationError(
                "unknown campaign kind %r (choose from %s)"
                % (self.kind, ", ".join(sorted(JOB_KINDS)))
            )
        if not self.examples:
            raise SpecificationError("a campaign needs at least one example")
        if not self.scales:
            raise SpecificationError("a campaign needs at least one scale")
        if not self.variants:
            raise SpecificationError("a campaign needs at least one variant")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what ``campaign.json`` stores)."""
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "name": self.name,
            "kind": self.kind,
            "examples": list(self.examples),
            "scales": list(self.scales),
            "variants": [v.to_dict() for v in self.variants],
            "policy": self.policy.to_dict(),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        schema = payload.get("schema", CAMPAIGN_SCHEMA_VERSION)
        if schema != CAMPAIGN_SCHEMA_VERSION:
            raise SpecificationError(
                "campaign schema %r unsupported (this build reads %d)"
                % (schema, CAMPAIGN_SCHEMA_VERSION)
            )
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            examples=tuple(payload["examples"]),
            scales=tuple(float(s) for s in payload["scales"]),
            variants=tuple(
                Variant.from_dict(v) for v in payload.get("variants", [])
            ) or (Variant("default"),),
            policy=RetryPolicy.from_dict(payload.get("policy", {})),
            params=dict(payload.get("params", {})),
        )


def job_id(kind: str, example: str, scale: float, variant: str) -> str:
    """The stable id of one grid cell, e.g. ``table2:A1TR@0.05:pruned``."""
    return "%s:%s@%g:%s" % (kind, example, scale, variant)


def expand_jobs(spec: CampaignSpec) -> List[Job]:
    """Expand a campaign grid into its ordered list of jobs.

    Order is deterministic -- examples outermost, then scales, then
    variants -- and duplicate job ids (e.g. two variants with the same
    name) are a specification error.
    """
    jobs: List[Job] = []
    seen: Dict[str, None] = {}
    per_job_params = spec.params.get("jobs", {})
    for example in spec.examples:
        for scale in spec.scales:
            for variant in spec.variants:
                jid = job_id(spec.kind, example, scale, variant.name)
                if jid in seen:
                    raise SpecificationError("duplicate job id %r" % (jid,))
                seen[jid] = None
                jobs.append(Job(
                    id=jid,
                    kind=spec.kind,
                    example=example,
                    scale=scale,
                    variant=variant.name,
                    config=dict(variant.config),
                    params=dict(per_job_params.get(jid, {})),
                ))
    return jobs


def spec_from_flags(
    name: str,
    kind: str,
    examples: Sequence[str],
    scales: Sequence[float],
    variant_names: Sequence[str] = ("default",),
    policy: Optional[RetryPolicy] = None,
) -> CampaignSpec:
    """Build a campaign from CLI-style flags using variant presets."""
    return CampaignSpec(
        name=name,
        kind=kind,
        examples=tuple(examples),
        scales=tuple(float(s) for s in scales),
        variants=tuple(Variant.preset(v) for v in variant_names),
        policy=policy if policy is not None else RetryPolicy(),
    )
