"""TCP socket transport: framed messages, heartbeats, dial-in workers.

Two ways a socket worker comes to exist:

* **local spawn** -- :class:`SocketTransport` opens a private
  loopback listener, forks the child with the address, and the child
  connects back.  Process-level supervision (sentinel, SIGTERM ->
  SIGKILL escalation) still applies, which is what makes this mode a
  drop-in stand-in for the pipe transport in tests and benchmarks.
* **adoption** -- a remote ``repro worker --connect HOST:PORT``
  process dials a :class:`WorkerListener`, sends a hello frame, and
  the adopting pool answers with a *welcome* frame naming the role
  (``job`` or ``score``) and its arguments.  The resulting
  :meth:`SocketTransport.adopted` transport has no local process:
  liveness is heartbeat freshness, and "kill" is closing the
  connection (the remote worker exits on EOF).

Liveness: every worker child runs a daemon thread sending a
``("hb",)`` frame each :data:`HEARTBEAT_S`; the parent transport
consumes them invisibly and tracks ``last_seen``.  A worker silent
longer than ``heartbeat_timeout_s`` is declared dead
(:class:`~repro.exec.transport.TransportDead`), which supervision
converts into a typed ``crash`` verdict -- a remote host that
vanishes mid-job can therefore never hang a caller.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.exec.frames import FrameConnection, FrameError, RecvTimeout
from repro.exec.transport import (
    TransportDead,
    WorkerTransport,
    pool_context,
    terminate_process,
)

#: Seconds between heartbeat frames sent by every socket worker child.
HEARTBEAT_S = 1.0

#: Parent-side staleness threshold: a socket worker silent this long
#: (no frames of any kind) is declared dead.
HEARTBEAT_TIMEOUT_S = 15.0

#: Seconds a dialing worker (or a locally spawning transport) waits
#: for the TCP connection + handshake to complete.
CONNECT_TIMEOUT_S = 10.0

#: Hello-frame magic; a connector that says anything else is refused.
HELLO_MAGIC = "repro-worker"

#: Version of the hello/welcome handshake.
PROTOCOL_VERSION = 1


def _is_heartbeat(message: Any) -> bool:
    """Whether a decoded frame is the heartbeat marker."""
    return (
        isinstance(message, (list, tuple))
        and len(message) == 1
        and message[0] == "hb"
    )


class SocketTransport(WorkerTransport):
    """A worker reached over framed TCP (see module docstring).

    Build with the constructor for local spawn mode, or with
    :meth:`adopted` for a dialed-in remote worker.
    """

    kind = "socket"

    def __init__(
        self,
        role: str,
        kwargs: Optional[Dict[str, Any]] = None,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
        ctx=None,
    ) -> None:
        """Configure an unspawned local socket worker for ``role``
        (``"job"`` | ``"score"``) with role arguments ``kwargs``."""
        self.role = role
        self.role_kwargs = dict(kwargs or {})
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._ctx = ctx if ctx is not None else pool_context()
        self._proc = None
        self._conn: Optional[FrameConnection] = None
        self._pending: List[Any] = []
        self._last_seen = 0.0
        self._remote: Optional[str] = None

    @classmethod
    def adopted(
        cls,
        conn: FrameConnection,
        remote: str,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
    ) -> "SocketTransport":
        """Wrap an already-welcomed dial-in connection from ``remote``
        (a ``host:port`` label for diagnostics)."""
        transport = cls("adopted", heartbeat_timeout_s=heartbeat_timeout_s)
        transport._conn = conn
        transport._remote = remote
        transport._last_seen = time.monotonic()
        return transport

    # ------------------------------------------------------------------
    @property
    def is_remote(self) -> bool:
        """Whether this transport adopted a dial-in worker."""
        return self._remote is not None

    @property
    def can_respawn(self) -> bool:
        """Local spawns can be replaced; adopted remotes cannot."""
        return not self.is_remote

    def spawn(self) -> None:
        """Start the local worker child and accept its connection.

        No-op while alive.  Raises :class:`TransportDead` for an
        adopted transport (the parent cannot restart a remote host's
        process) and on a child that never connects back.
        """
        if self.is_remote:
            if self._conn is None or self._conn.closed:
                raise TransportDead(
                    "adopted worker %s cannot be respawned" % (self._remote,)
                )
            return
        if self.alive:
            return
        if self._proc is not None or self._conn is not None:
            self.kill()  # reap a dead-while-idle worker first
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            listener.settimeout(CONNECT_TIMEOUT_S)
            host, port = listener.getsockname()
            from repro.exec.worker import socket_child_main

            proc = self._ctx.Process(
                target=socket_child_main,
                args=(host, port, self.role, self.role_kwargs),
                daemon=True,
            )
            proc.start()
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                terminate_process(proc)
                raise TransportDead(
                    "socket worker never connected back"
                ) from None
        finally:
            listener.close()
        self._proc = proc
        self._conn = FrameConnection(sock)
        self._pending = []
        self._last_seen = time.monotonic()

    # ------------------------------------------------------------------
    def send(self, message: Any) -> None:
        """Send one frame; an unreachable peer is a dead worker."""
        if self._conn is None or self._conn.closed:
            raise TransportDead("socket worker is not connected")
        try:
            self._conn.send(message)
        except (OSError, FrameError) as exc:
            raise TransportDead(
                "socket worker unreachable: %s" % (exc,)
            ) from exc

    def _drain(self) -> None:
        """Consume every complete pending frame; heartbeats refresh
        ``last_seen``, everything else queues for :meth:`try_recv`."""
        conn = self._conn
        if conn is None or conn.closed:
            raise TransportDead("socket worker is not connected")
        while conn.poll(0):
            try:
                message = conn.recv(timeout=conn.body_timeout_s)
            except RecvTimeout:  # pragma: no cover - poll said readable
                break
            except (EOFError, OSError) as exc:
                raise TransportDead(
                    "socket worker dropped the connection"
                ) from exc
            except FrameError as exc:
                raise TransportDead(
                    "torn frame from socket worker: %s" % (exc,)
                ) from exc
            self._last_seen = time.monotonic()
            if _is_heartbeat(message):
                continue
            self._pending.append(message)

    def try_recv(self) -> Optional[Any]:
        """The next queued application message, or ``None``."""
        self._drain()
        if self._pending:
            return self._pending.pop(0)
        return None

    def wait_handles(self) -> List[Any]:
        """The framed socket (+ the child sentinel when local)."""
        handles: List[Any] = []
        if self._conn is not None and not self._conn.closed:
            handles.append(self._conn)
        if self._proc is not None:
            handles.append(self._proc.sentinel)
        return handles

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Connection open, process (if local) running, heartbeat
        fresh.  Pending frames are drained first so a worker that just
        spoke is never misjudged stale."""
        if self._conn is None or self._conn.closed:
            return False
        if self._proc is not None and not self._proc.is_alive():
            return False
        try:
            self._drain()
        except TransportDead:
            return False
        return (
            time.monotonic() - self._last_seen <= self.heartbeat_timeout_s
        )

    def kill(self) -> None:
        """Hard stop: escalated terminate for a local child, then
        close the connection (a remote worker exits on the EOF)."""
        terminate_process(self._proc)
        self._proc = None
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._pending = []

    def describe(self) -> Dict[str, Any]:
        """Socket summary: kind, liveness, locality, peer."""
        info = super().describe()
        info["remote"] = self._remote
        return info


class WorkerListener:
    """Accept loop for ``repro worker --connect`` dial-ins.

    Binds immediately (so :attr:`port` is known even with ``port=0``),
    accepts on a daemon thread, validates each connector's hello
    frame, and hands ``(FrameConnection, hello_dict, "host:port")`` to
    ``on_worker`` -- typically a thread-safe trampoline into the
    adopting pool.  A connector that fails the handshake is dropped
    without disturbing the pool.
    """

    def __init__(
        self,
        host: str,
        port: int,
        on_worker: Callable[[FrameConnection, Dict[str, Any], str], None],
    ) -> None:
        """Bind ``host:port`` (0 = ephemeral) and remember the hook."""
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._on_worker = on_worker
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> None:
        """Start the accept thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-listener",
            daemon=True,
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        """Accept, handshake, hand off; forever until closed."""
        while not self._closed:
            try:
                sock, addr = self._sock.accept()
            except OSError:
                return  # listener closed
            conn = FrameConnection(sock)
            try:
                hello = conn.recv(timeout=CONNECT_TIMEOUT_S)
            except (RecvTimeout, EOFError, OSError, FrameError):
                conn.close()
                continue
            if (
                not isinstance(hello, dict)
                or hello.get("hello") != HELLO_MAGIC
                or hello.get("v") != PROTOCOL_VERSION
            ):
                conn.close()
                continue
            try:
                self._on_worker(conn, hello, "%s:%s" % (addr[0], addr[1]))
            except Exception:
                conn.close()

    def close(self) -> None:
        """Stop accepting (idempotent; the thread exits on its own)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
