"""Length-prefixed canonical-JSON framing for socket transports.

Every message on a :class:`FrameConnection` is one *frame*: a 4-byte
big-endian length header followed by that many bytes of canonical
JSON (sorted keys, compact separators, UTF-8).  Canonical encoding
means the same message always produces the same bytes, so frames can
be logged, diffed and replayed deterministically.

Two escape hatches keep the substrate able to carry everything the
pipe transport carries today:

* raw ``bytes`` values (the scorer's pickled generation blobs) become
  ``{"__bytes_b64__": <base64>}``;
* any other non-JSON value (the scorer's allocation-option chunks)
  becomes ``{"__pickle_b64__": <base64 of its pickle>}``.

The pickle hatch means frames are only safe between mutually trusted
processes -- the same trust domain the pipe transport already
implies; ``docs/SERVICE.md`` spells this out for remote workers.

Tuples serialize as JSON arrays and come back as lists; consumers
normalize where tuple-ness matters (the scorer re-tuples badness and
floor vectors on receipt).

Reads are *exact*: :meth:`FrameConnection.recv` never reads past the
end of one frame, so the underlying socket file descriptor stays
usable with ``multiprocessing.connection.wait`` -- readability always
means "a new frame has started".  A frame that starts but never
finishes (the half-written-frame fault) trips
:data:`FRAME_BODY_TIMEOUT_S` and raises :class:`FrameError` instead
of hanging.
"""

from __future__ import annotations

import base64
import json
import pickle
import select
import socket
import struct
import threading
from typing import Any, Optional

#: 4-byte big-endian unsigned frame-length header.
_HEADER = struct.Struct(">I")

#: Hard cap on one frame's body; a peer announcing more is corrupt or
#: hostile and the connection is declared dead rather than buffered.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Longest a reader waits for the *rest* of a frame whose header (or
#: first bytes) already arrived.  A peer that stalls mid-frame is
#: dead-or-wedged either way; this converts the hang into a typed
#: :class:`FrameError`.
FRAME_BODY_TIMEOUT_S = 30.0

_BYTES_KEY = "__bytes_b64__"
_PICKLE_KEY = "__pickle_b64__"


class FrameError(RuntimeError):
    """A protocol violation on a framed connection (oversize frame,
    torn frame, undecodable body)."""


class RecvTimeout(Exception):
    """No frame started within the ``timeout`` passed to ``recv``."""


def _encode_default(value: Any) -> Any:
    """``json.dumps`` fallback: bytes and opaque objects get wrapped."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_BYTES_KEY: base64.b64encode(bytes(value)).decode("ascii")}
    return {
        _PICKLE_KEY: base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }


def _decode_hook(obj: dict) -> Any:
    """``json.loads`` object hook: unwrap the two escape hatches."""
    if len(obj) == 1:
        if _BYTES_KEY in obj:
            return base64.b64decode(obj[_BYTES_KEY])
        if _PICKLE_KEY in obj:
            return pickle.loads(base64.b64decode(obj[_PICKLE_KEY]))
    return obj


def encode_frame(message: Any) -> bytes:
    """One message -> header + canonical-JSON body bytes."""
    body = json.dumps(
        message,
        sort_keys=True,
        separators=(",", ":"),
        default=_encode_default,
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            "frame of %d bytes exceeds the %d-byte cap"
            % (len(body), MAX_FRAME_BYTES)
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """One frame body's bytes -> the message it encodes."""
    try:
        return json.loads(body.decode("utf-8"), object_hook=_decode_hook)
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError("undecodable frame body: %s" % (exc,)) from exc


class FrameConnection:
    """A message connection over one TCP socket, one frame at a time.

    Mirrors the subset of ``multiprocessing.Connection`` the worker
    loops use -- :meth:`send`, :meth:`recv`, :meth:`poll`,
    :meth:`fileno`, :meth:`close` -- so a child worker loop runs
    unchanged over either.  ``send`` is serialized by a lock so a
    heartbeat thread can interleave frames with the main loop's
    replies without tearing either.
    """

    def __init__(
        self, sock: socket.socket,
        body_timeout_s: float = FRAME_BODY_TIMEOUT_S,
    ) -> None:
        """Wrap ``sock``; ``body_timeout_s`` bounds mid-frame stalls."""
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a unix socketpair standing in for one)
        self._sock: Optional[socket.socket] = sock
        self._send_lock = threading.Lock()
        self.body_timeout_s = body_timeout_s

    # ------------------------------------------------------------------
    def fileno(self) -> int:
        """The socket fd (waitable; readable == a frame has started)."""
        if self._sock is None:
            raise OSError("framed connection is closed")
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._sock is None

    # ------------------------------------------------------------------
    def send(self, message: Any) -> None:
        """Frame and send one message (thread-safe).

        Raises ``OSError``/``BrokenPipeError`` when the peer is gone,
        exactly as a dead pipe would.
        """
        data = encode_frame(message)
        with self._send_lock:
            if self._sock is None:
                raise OSError("framed connection is closed")
            self._sock.sendall(data)

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame has started arriving within ``timeout``."""
        if self._sock is None:
            return False
        ready, _, _ = select.select([self._sock], [], [], timeout)
        return bool(ready)

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Read exactly one frame and decode it.

        Blocks up to ``timeout`` (``None`` = forever) for the frame to
        *start*; once the first byte has arrived the rest must follow
        within :attr:`body_timeout_s`.  Raises :class:`RecvTimeout`
        when no frame starts in time, :class:`EOFError` on a clean
        peer close at a frame boundary, and :class:`FrameError` on a
        torn/oversize/undecodable frame.
        """
        header = self._read_exact(_HEADER.size, boundary_timeout=timeout)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                "peer announced a %d-byte frame (cap %d)"
                % (length, MAX_FRAME_BYTES)
            )
        body = self._read_exact(length)
        return decode_body(body)

    def _read_exact(self, n: int, boundary_timeout=False) -> bytes:
        """Read exactly ``n`` bytes or raise.

        ``boundary_timeout`` other than ``False`` marks a read that
        starts at a frame boundary: there, a timeout is a clean
        :class:`RecvTimeout` and EOF a clean :class:`EOFError`.
        Inside a frame, a stall or EOF is a torn frame
        (:class:`FrameError`).
        """
        if self._sock is None:
            raise EOFError("framed connection is closed")
        chunks = []
        got = 0
        at_boundary = boundary_timeout is not False
        while got < n:
            clean = at_boundary and got == 0
            self._sock.settimeout(
                boundary_timeout if clean else self.body_timeout_s
            )
            try:
                chunk = self._sock.recv(n - got)
            except socket.timeout:
                if clean:
                    raise RecvTimeout() from None
                raise FrameError(
                    "frame stalled after %d of %d bytes" % (got, n)
                ) from None
            except OSError as exc:
                raise EOFError("connection lost: %s" % (exc,)) from exc
            if not chunk:
                if clean:
                    raise EOFError("peer closed the connection")
                raise FrameError(
                    "peer closed mid-frame after %d of %d bytes" % (got, n)
                )
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the socket (idempotent)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
