"""The ``WorkerTransport`` abstraction and the pipe implementation.

A *transport* owns exactly one worker: how it starts (a forked local
process, or a remote process that dialed in), how messages travel
(pickle pipe, or canonical-JSON frames over TCP), how liveness is
judged (process sentinel, or heartbeat freshness) and how it dies
(the single SIGTERM -> SIGKILL escalation that used to be
reimplemented per layer).  The supervision state machine
(:mod:`repro.exec.supervise`) and the scorer wave loop are written
against this interface only, so the three call sites --
``ProcessPoolScorer``, the campaign runner and the service
``ShardPool`` -- share one substrate and one fault model.

Contract highlights:

* :meth:`WorkerTransport.try_recv` never blocks past one in-flight
  frame; it returns ``None`` when no complete application message is
  available.  Heartbeat frames are consumed internally and never
  surface.
* :meth:`WorkerTransport.wait_handles` returns objects usable with
  ``multiprocessing.connection.wait`` whose readability means "calling
  :meth:`try_recv` may yield progress".
* Every receive-side failure -- dead pipe, dropped connection, torn
  frame, stale heartbeat -- surfaces as :class:`TransportDead`, the
  one exception supervision maps to a ``crash`` verdict.

The transport *kind* is selected per call site (``exec_transport``
config, ``--exec-transport`` flags) and globally overridable with the
``REPRO_EXEC_TRANSPORT`` environment variable -- the kill switch that
forces everything back onto pipes if the socket path misbehaves.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional

#: Seconds a kill waits after SIGTERM before escalating to an
#: unignorable SIGKILL.  This is the *only* escalation implementation;
#: every layer's kill goes through :func:`terminate_process`.
TERM_GRACE_S = 5.0

#: Transport kinds :func:`resolve_transport_name` accepts.
TRANSPORT_KINDS = ("pipe", "socket")

#: Environment kill switch: force every transport selection to this
#: kind regardless of config or flags.
TRANSPORT_ENV = "REPRO_EXEC_TRANSPORT"


class TransportDead(RuntimeError):
    """The worker behind a transport is gone (process death, dropped
    connection, torn frame, or stale heartbeat)."""


def resolve_transport_name(requested: Optional[str] = None) -> str:
    """The effective transport kind for a call site.

    ``REPRO_EXEC_TRANSPORT`` (when set) beats ``requested``; an unset
    ``requested`` means ``"pipe"``.  Unknown kinds raise ``ValueError``
    so a typo'd kill switch fails loudly instead of silently running
    the wrong substrate.
    """
    name = os.environ.get(TRANSPORT_ENV) or requested or "pipe"
    if name not in TRANSPORT_KINDS:
        raise ValueError(
            "unknown exec transport %r (expected one of %s)"
            % (name, ", ".join(TRANSPORT_KINDS))
        )
    return name


def pool_context():
    """The multiprocessing context every local worker uses: ``fork``
    where available (workers inherit the warm interpreter), ``spawn``
    otherwise."""
    return multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


def terminate_process(proc, grace_s: Optional[float] = None) -> None:
    """The one SIGTERM -> SIGKILL escalation.

    SIGTERM first; a process still alive after ``grace_s`` (default
    :data:`TERM_GRACE_S` -- masked signal, uninterruptible state) gets
    an unignorable SIGKILL, so a wedged worker can never be leaked to
    run on beside its respawned replacement.  Safe on an
    already-dead process.
    """
    if proc is None:
        return
    if proc.is_alive():
        proc.terminate()
    proc.join(timeout=TERM_GRACE_S if grace_s is None else grace_s)
    if proc.is_alive():
        proc.kill()
        proc.join()


class WorkerTransport(ABC):
    """One worker's lifecycle + message channel, transport-agnostic.

    Implementations: :class:`PipeTransport` (fork + duplex pickle
    pipe, today's semantics byte-for-byte) and
    :class:`~repro.exec.sockets.SocketTransport` (length-prefixed
    canonical-JSON frames over TCP with heartbeat liveness, local
    spawn or adopted remote).
    """

    #: Transport kind string ("pipe" | "socket").
    kind: str = "?"

    @abstractmethod
    def spawn(self) -> None:
        """Start the worker (idempotent while alive)."""

    @abstractmethod
    def send(self, message: Any) -> None:
        """Send one message; :class:`TransportDead` if the worker is
        unreachable."""

    @abstractmethod
    def try_recv(self) -> Optional[Any]:
        """The next application message, or ``None`` when no complete
        one is available.  Never blocks longer than one in-flight
        frame body; raises :class:`TransportDead` on a dead worker."""

    @abstractmethod
    def wait_handles(self) -> List[Any]:
        """Objects for ``multiprocessing.connection.wait``; readiness
        of any of them means :meth:`try_recv`/:attr:`alive` may have
        news."""

    @property
    @abstractmethod
    def alive(self) -> bool:
        """Whether the worker is currently considered live."""

    @property
    def can_respawn(self) -> bool:
        """Whether this transport can start a replacement worker
        itself (false for adopted remote workers)."""
        return True

    @abstractmethod
    def kill(self) -> None:
        """Hard-stop the worker and release the channel (idempotent)."""

    def stop(self) -> None:
        """Politely stop the worker, then :meth:`kill` whatever is
        left (the polite half is best-effort)."""
        try:
            self.send(("stop",))
        except (TransportDead, OSError):
            pass
        self.kill()

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Block up to ``timeout`` for the next application message.

        Built on :meth:`try_recv` + :meth:`wait_handles`; raises
        :class:`TransportDead` when the worker dies while waiting and
        ``TimeoutError`` when ``timeout`` elapses first.
        """
        from multiprocessing.connection import wait as _conn_wait
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            message = self.try_recv()
            if message is not None:
                return message
            if not self.alive:
                # One last drain: the worker may have replied and then
                # exited before we looked.
                message = self.try_recv()
                if message is not None:
                    return message
                raise TransportDead("worker died while awaited")
            slice_s = 0.5
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise TimeoutError("no message within %.3fs" % timeout)
                slice_s = min(slice_s, remaining)
            _conn_wait(self.wait_handles(), timeout=slice_s)

    def describe(self) -> Dict[str, Any]:
        """A JSON-able summary for ``/stats`` and trace events."""
        return {"kind": self.kind, "alive": self.alive}


class PipeTransport(WorkerTransport):
    """Today's fork + duplex-pipe worker, behind the transport ABC.

    ``main`` is a picklable module-level callable executed in the
    child as ``main(child_conn, *args)``; crash detection rides the
    process sentinel and messages travel the usual pickle pipe, so
    semantics (and synthesis bytes) are identical to the
    pre-``repro.exec`` code.
    """

    kind = "pipe"

    def __init__(self, main, args: tuple = (), ctx=None) -> None:
        """Configure an unspawned pipe worker running ``main``."""
        self._main = main
        self._args = tuple(args)
        self._ctx = ctx if ctx is not None else pool_context()
        self._proc = None
        self._conn = None

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Fork the worker process and keep the parent pipe end."""
        if self.alive:
            return
        if self._proc is not None:
            self.kill()  # reap a dead-while-idle worker and its pipe
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=self._main,
            args=(child_conn,) + self._args,
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn

    def send(self, message: Any) -> None:
        """Send over the pipe; a broken pipe is a dead worker."""
        if self._conn is None:
            raise TransportDead("pipe worker is not spawned")
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise TransportDead("pipe worker is gone: %s" % (exc,)) from exc

    def try_recv(self) -> Optional[Any]:
        """One pending message, or ``None``; EOF means a dead worker."""
        if self._conn is None:
            raise TransportDead("pipe worker is not spawned")
        try:
            if not self._conn.poll(0):
                return None
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportDead(
                "pipe worker died before replying"
            ) from exc

    def wait_handles(self) -> List[Any]:
        """The pipe connection plus the process sentinel."""
        handles: List[Any] = []
        if self._conn is not None:
            handles.append(self._conn)
        if self._proc is not None:
            handles.append(self._proc.sentinel)
        return handles

    @property
    def alive(self) -> bool:
        """Whether the worker process exists and is running."""
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        """The worker's pid while spawned (for tests/diagnostics)."""
        return self._proc.pid if self._proc is not None else None

    def kill(self) -> None:
        """Escalated terminate (:func:`terminate_process`) + close."""
        terminate_process(self._proc)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._proc = None
        self._conn = None

    def describe(self) -> Dict[str, Any]:
        """Pipe summary: kind, liveness, pid."""
        info = super().describe()
        info["pid"] = self.pid
        return info
