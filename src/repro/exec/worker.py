"""Worker-side entry points: child loops and the dial-in client.

Three ways a worker process starts, all converging on the same role
loops:

* :func:`job_worker_main` / the scorer's ``score_worker_main`` run
  directly over a forked pipe (``PipeTransport``);
* :func:`socket_child_main` is the local socket spawn: the child
  connects back to its parent transport's private loopback listener,
  starts the heartbeat thread, and runs its role loop over frames;
* :func:`connect_and_serve` is ``repro worker --connect HOST:PORT``:
  dial a pool's :class:`~repro.exec.sockets.WorkerListener`, send the
  hello frame, let the *welcome* frame name the role (``job`` or
  ``score``) and its arguments, then serve until the pool closes the
  connection.

Because role loops only use ``recv``/``send``/``close``, the very
same functions run over a ``multiprocessing`` pipe connection and a
:class:`~repro.exec.frames.FrameConnection` -- which is what makes
the pipe and socket transports byte-equivalent in behavior.
"""

from __future__ import annotations

import importlib
import os
import socket
import sys
import threading
import traceback
from typing import Any, Dict, Optional

from repro.exec.frames import FrameConnection, FrameError, RecvTimeout
from repro.exec.sockets import (
    CONNECT_TIMEOUT_S,
    HEARTBEAT_S,
    HELLO_MAGIC,
    PROTOCOL_VERSION,
)


def job_worker_main(conn, target: str) -> None:
    """Generic persistent-worker loop executing ``fn(payload, attempt)``.

    Resolves ``target`` (a ``"module:function"`` dotted name, so it
    survives the ``spawn`` start method) and executes one job per
    ``("job", job_id, attempt, payload)`` message, replying
    ``("ok", job_id, result)`` or ``("error", job_id, traceback)``.
    Anything that escapes this loop entirely -- ``os._exit``, a
    segfault, a kill -- is what the parent's supervision exists for.
    """
    module_name, _, fn_name = target.partition(":")
    fn = getattr(importlib.import_module(module_name), fn_name)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, FrameError):
            break
        if msg[0] == "stop":
            break
        _, job_id, attempt, payload = msg
        try:
            result = fn(payload, attempt)
        except BaseException:
            conn.send(("error", job_id, traceback.format_exc()))
        else:
            conn.send(("ok", job_id, result))
    conn.close()


def _serve_role(conn, role: str, kwargs: Dict[str, Any]) -> None:
    """Dispatch one connection to its role loop."""
    if role == "job":
        job_worker_main(conn, kwargs["target"])
    elif role == "score":
        from repro.perf.procpool import score_worker_main

        score_worker_main(
            conn,
            bool(kwargs.get("use_engine", True)),
            kwargs.get("timeline", "auto"),
        )
    else:
        conn.close()
        raise ValueError("unknown worker role %r" % (role,))


def start_heartbeat(conn: FrameConnection,
                    interval_s: float = HEARTBEAT_S) -> threading.Thread:
    """Start the daemon thread that keeps ``conn``'s peer convinced
    this worker is alive; it exits when the connection dies."""

    def beat() -> None:
        """Send ``("hb",)`` every ``interval_s`` until the peer dies."""
        import time

        while True:
            time.sleep(interval_s)
            try:
                conn.send(("hb",))
            except (OSError, FrameError):
                return

    thread = threading.Thread(
        target=beat, name="repro-worker-heartbeat", daemon=True
    )
    thread.start()
    return thread


def socket_child_main(
    host: str, port: int, role: str, kwargs: Dict[str, Any]
) -> None:
    """Local socket spawn: connect back to the parent and serve."""
    sock = socket.create_connection((host, port), timeout=CONNECT_TIMEOUT_S)
    conn = FrameConnection(sock)
    start_heartbeat(conn)
    _serve_role(conn, role, kwargs)


def connect_and_serve(
    host: str,
    port: int,
    connect_timeout_s: float = CONNECT_TIMEOUT_S,
    log=None,
) -> int:
    """Dial a pool and serve whatever role its welcome assigns.

    The ``repro worker --connect`` entry: returns a process exit code
    -- 0 after a clean stop (the pool said ``stop`` or closed the
    connection), 1 when the dial or handshake fails.  ``log`` is a
    ``print``-like hook for progress lines (default: stderr).
    """
    emit = log if log is not None else (
        lambda line: print(line, file=sys.stderr)
    )
    try:
        sock = socket.create_connection(
            (host, port), timeout=connect_timeout_s
        )
    except OSError as exc:
        emit("repro worker: cannot connect to %s:%d: %s" % (host, port, exc))
        return 1
    conn = FrameConnection(sock)
    try:
        conn.send({
            "hello": HELLO_MAGIC,
            "v": PROTOCOL_VERSION,
            "pid": os.getpid(),
        })
        welcome = conn.recv(timeout=connect_timeout_s)
    except (RecvTimeout, EOFError, OSError, FrameError) as exc:
        emit("repro worker: handshake with %s:%d failed: %s"
             % (host, port, exc))
        conn.close()
        return 1
    if not isinstance(welcome, dict) or "role" not in welcome:
        emit("repro worker: %s:%d sent an invalid welcome" % (host, port))
        conn.close()
        return 1
    role = welcome["role"]
    kwargs = {k: v for k, v in welcome.items() if k != "role"}
    emit("repro worker: joined %s:%d as a %r worker" % (host, port, role))
    start_heartbeat(conn)
    try:
        _serve_role(conn, role, kwargs)
    except ValueError as exc:
        emit("repro worker: %s" % (exc,))
        return 1
    emit("repro worker: pool at %s:%d released this worker" % (host, port))
    return 0


def welcome_message(role: str, **kwargs: Any) -> Dict[str, Any]:
    """The welcome frame a pool sends when adopting a dial-in."""
    message: Dict[str, Any] = {"role": role}
    message.update(kwargs)
    return message
