"""The one crash/timeout/error/retry supervision state machine.

Before ``repro.exec``, three layers each hand-rolled this machine
over a pipe-coupled worker: the campaign runner's ``_Slot`` loop, the
service ``ShardPool``'s attempt loop, and the ``JobWorker`` primitive
they shared.  :class:`SupervisedWorker` is the single implementation,
written against :class:`~repro.exec.transport.WorkerTransport` only,
so every call site gets the same verdicts over every transport:

* **crash** -- the transport died mid-job (process death, dropped
  connection, torn frame, stale heartbeat); the worker is replaced
  when the transport can respawn.
* **timeout** -- the attempt outlived its deadline; the worker is
  killed (the single SIGTERM -> SIGKILL escalation for local
  processes; connection close for remotes) and replaced when
  possible.
* **error** -- the job itself raised; the traceback travels back as
  the outcome detail.
* **ok** -- the job's result travels back as the outcome value.

Two consumption styles cover all call sites: the campaign's
multiplexed loop calls the non-blocking :meth:`SupervisedWorker.poll`
each tick, and the service's per-shard coroutines run the blocking
:meth:`SupervisedWorker.attempt` on an executor thread.

The crash/timeout detail strings are deliberately policy-independent
(no attempt counts, no budgets): they land in campaign manifests and
service failure documents, and resuming under a different retry
policy must still produce byte-identical output.
"""

from __future__ import annotations

import time
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, NamedTuple, Optional

from repro.obs.trace import Tracer, resolve_tracer
from repro.exec.transport import TransportDead, WorkerTransport

#: Outcome kinds, shared vocabulary across campaign + service.
OK = "ok"
CRASH = "crash"
TIMEOUT = "timeout"
ERROR = "error"

#: Policy-independent failure details (see module docstring).
CRASH_DETAIL = "worker process died before replying"
TIMEOUT_DETAIL = "attempt exceeded the per-job timeout"

#: Longest single blocking wait inside :meth:`SupervisedWorker.attempt`;
#: shorter slices keep kill latency bounded without busy-polling.
WAIT_SLICE_S = 0.5


class AttemptOutcome(NamedTuple):
    """One attempt's verdict: ``kind`` is ok/crash/timeout/error and
    ``value`` is the result (ok) or the failure detail string."""

    kind: str
    value: Any

    @property
    def ok(self) -> bool:
        """Whether the attempt succeeded."""
        return self.kind == OK


class SupervisedWorker:
    """One worker under the unified supervision state machine.

    Wraps a :class:`~repro.exec.transport.WorkerTransport` with the
    job protocol (``("job", id, attempt, payload)`` out;
    ``("ok"|"error", id, value)`` back), busy-tracking, deadline
    enforcement and crash recovery.  A worker holds at most one job
    at a time, which keeps supervision exact: a dead busy worker
    names exactly the job that must be retried.

    ``exec.workers.*`` counters (``spawned``, ``restarts``,
    ``transport.<kind>``) land on ``tracer`` so pool owners (the
    service's ``/stats``) can report substrate health without
    reaching into transports.
    """

    def __init__(
        self, transport: WorkerTransport, tracer: Optional[Tracer] = None
    ) -> None:
        """Supervise ``transport``; counters land on ``tracer``."""
        self.transport = transport
        self.tracer = resolve_tracer(tracer)
        #: (job_id, attempt, payload) of the in-flight job, or None.
        self.busy: Optional[tuple] = None
        #: Times this worker was replaced after a crash or timeout.
        self.restarts = 0
        #: Jobs this worker completed with an ``ok`` reply.
        self.jobs_done = 0
        #: Whether this supervisor ever started its worker (a first
        #: spawn is not a restart).
        self._spawned = False

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the underlying transport judges the worker live."""
        return self.transport.alive

    @property
    def can_respawn(self) -> bool:
        """Whether a replacement can be started (false for remotes)."""
        return self.transport.can_respawn

    def spawn(self) -> None:
        """Start the worker (idempotent while alive)."""
        self.transport.spawn()
        self.busy = None
        self._spawned = True
        self.tracer.incr("exec.workers.spawned")
        self.tracer.incr("exec.workers.transport.%s" % self.transport.kind)

    def respawn(self) -> None:
        """Kill whatever is left and start a replacement."""
        self.transport.kill()
        self.transport.spawn()
        self.busy = None
        self._spawned = True
        self.restarts += 1
        self.tracer.incr("exec.workers.restarts")

    def kill(self) -> None:
        """Hard-stop the worker (escalated for local processes)."""
        self.transport.kill()
        self.busy = None

    def stop(self) -> None:
        """Politely stop, then hard-stop whatever is left."""
        self.transport.stop()
        self.busy = None

    def describe(self) -> Dict[str, Any]:
        """A JSON-able health row for ``/stats``."""
        info = self.transport.describe()
        info["restarts"] = self.restarts
        info["jobs_done"] = self.jobs_done
        info["busy"] = self.busy is not None
        return info

    # ------------------------------------------------------------------
    def submit(self, job_id: str, attempt: int, payload: Any) -> None:
        """Send one job to the (idle, live) worker."""
        if self.busy is not None:
            raise RuntimeError(
                "worker already holds job %r" % (self.busy[0],)
            )
        self.transport.send(("job", job_id, attempt, payload))
        self.busy = (job_id, attempt, payload)

    def wait_handles(self) -> list:
        """Waitables for a multiplexed supervisor loop."""
        return self.transport.wait_handles()

    def poll(
        self, now: Optional[float] = None, deadline: Optional[float] = None
    ) -> Optional[AttemptOutcome]:
        """Non-blocking: the in-flight attempt's outcome, or ``None``.

        Checks, in order: a reply (``ok``/``error``), transport death
        (``crash`` -- the worker is replaced when possible), then the
        ``deadline`` (``timeout`` -- the worker is killed, escalated,
        and replaced when possible).  After any non-``None`` return
        the worker is idle.
        """
        if self.busy is None:
            return None
        try:
            reply = self.transport.try_recv()
        except TransportDead:
            return self._crashed()
        if reply is not None:
            self.busy = None
            if reply[0] == "ok":
                self.jobs_done += 1
                return AttemptOutcome(OK, reply[2])
            return AttemptOutcome(ERROR, reply[2])
        if not self.transport.alive:
            return self._crashed()
        if deadline is not None:
            if now is None:
                now = time.monotonic()
            if now >= deadline:
                self.transport.kill()
                self._maybe_respawn()
                self.busy = None
                return AttemptOutcome(TIMEOUT, TIMEOUT_DETAIL)
        return None

    def _crashed(self) -> AttemptOutcome:
        """Mark the in-flight attempt crashed and replace the worker."""
        self.transport.kill()
        self._maybe_respawn()
        self.busy = None
        return AttemptOutcome(CRASH, CRASH_DETAIL)

    def _maybe_respawn(self) -> None:
        """Start a replacement when the transport supports it."""
        if self.transport.can_respawn:
            self.transport.spawn()
            self.restarts += 1
            self.tracer.incr("exec.workers.restarts")

    # ------------------------------------------------------------------
    def attempt(
        self,
        job_id: str,
        attempt: int,
        payload: Any,
        timeout_s: Optional[float] = None,
        slice_s: float = WAIT_SLICE_S,
    ) -> AttemptOutcome:
        """Blocking: run one attempt to its typed outcome.

        Spawns/replaces a dead worker first (``crash`` immediately if
        it cannot be replaced), submits, then waits in bounded slices
        so a deadline overrun kills the worker within ``slice_s`` of
        the deadline.  Never hangs: every exit path is a typed
        :class:`AttemptOutcome`.
        """
        if not self.alive:
            try:
                if self._spawned:
                    self.respawn()
                else:
                    self.spawn()
            except TransportDead:
                return AttemptOutcome(CRASH, CRASH_DETAIL)
        try:
            self.submit(job_id, attempt, payload)
        except TransportDead:
            return self._crashed()
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            now = time.monotonic()
            outcome = self.poll(now, deadline)
            if outcome is not None:
                return outcome
            wait_s = slice_s
            if deadline is not None:
                wait_s = min(wait_s, max(0.0, deadline - now))
            handles = self.wait_handles()
            if handles:
                _conn_wait(handles, timeout=wait_s)
            else:  # pragma: no cover - killed mid-attempt
                time.sleep(min(wait_s, 0.05))
