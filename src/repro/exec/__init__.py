"""The execution substrate: transport-abstract supervised workers.

``repro.exec`` is the one home for "run jobs in worker processes and
survive their failures".  It factors what three layers used to
reimplement -- the scorer's wave pool, the campaign runner's slot
loop and the service's shard pool -- into:

* :class:`~repro.exec.transport.WorkerTransport` -- how one worker
  starts, speaks, proves liveness and dies;
* :class:`~repro.exec.transport.PipeTransport` -- fork + duplex
  pickle pipe, byte-identical to the pre-refactor behavior;
* :class:`~repro.exec.sockets.SocketTransport` -- length-prefixed
  canonical-JSON frames over TCP with heartbeat liveness, covering
  both locally spawned children and remote ``repro worker --connect``
  dial-ins (adopted via :class:`~repro.exec.sockets.WorkerListener`);
* :class:`~repro.exec.supervise.SupervisedWorker` -- the single
  crash/timeout/error/retry/escalation state machine.

Transport selection is per call site (``exec_transport`` config,
``--exec-transport`` flags) with the ``REPRO_EXEC_TRANSPORT``
environment variable as the global kill switch.
"""

from repro.exec.frames import (
    FrameConnection,
    FrameError,
    MAX_FRAME_BYTES,
    RecvTimeout,
    decode_body,
    encode_frame,
)
from repro.exec.transport import (
    PipeTransport,
    TERM_GRACE_S,
    TRANSPORT_ENV,
    TRANSPORT_KINDS,
    TransportDead,
    WorkerTransport,
    pool_context,
    resolve_transport_name,
    terminate_process,
)
from repro.exec.sockets import (
    HEARTBEAT_S,
    HEARTBEAT_TIMEOUT_S,
    SocketTransport,
    WorkerListener,
)
from repro.exec.supervise import (
    AttemptOutcome,
    CRASH,
    CRASH_DETAIL,
    ERROR,
    OK,
    SupervisedWorker,
    TIMEOUT,
    TIMEOUT_DETAIL,
)
from repro.exec.worker import (
    connect_and_serve,
    job_worker_main,
    welcome_message,
)


def make_job_transport(target: str, kind=None) -> WorkerTransport:
    """A job-role transport of the resolved kind for ``target``.

    ``target`` is the ``"module:function"`` job executor; ``kind`` is
    ``"pipe"`` / ``"socket"`` / ``None`` (resolve the default), always
    subject to the ``REPRO_EXEC_TRANSPORT`` override.
    """
    kind = resolve_transport_name(kind)
    if kind == "socket":
        return SocketTransport("job", {"target": target})
    return PipeTransport(job_worker_main, (target,))


__all__ = [
    "AttemptOutcome",
    "CRASH",
    "CRASH_DETAIL",
    "ERROR",
    "FrameConnection",
    "FrameError",
    "HEARTBEAT_S",
    "HEARTBEAT_TIMEOUT_S",
    "MAX_FRAME_BYTES",
    "OK",
    "PipeTransport",
    "RecvTimeout",
    "SocketTransport",
    "SupervisedWorker",
    "TERM_GRACE_S",
    "TIMEOUT",
    "TIMEOUT_DETAIL",
    "TRANSPORT_ENV",
    "TRANSPORT_KINDS",
    "TransportDead",
    "WorkerListener",
    "WorkerTransport",
    "connect_and_serve",
    "decode_body",
    "encode_frame",
    "job_worker_main",
    "make_job_transport",
    "pool_context",
    "resolve_transport_name",
    "terminate_process",
    "welcome_message",
]
