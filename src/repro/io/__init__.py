"""Specification and result serialization.

Specifications round-trip through a stable JSON format so workloads
can be authored, archived, and shared outside Python; synthesis
results export to JSON for downstream tooling (dashboards, diffing
architectures across runs).
"""

from repro.io.spec_json import (
    load_spec,
    load_spec_file,
    save_spec_file,
    spec_from_dict,
    spec_to_dict,
)
from repro.io.result_json import (
    result_to_dict,
    save_result_file,
    stats_from_result_dict,
)

__all__ = [
    "load_spec",
    "load_spec_file",
    "save_spec_file",
    "spec_from_dict",
    "spec_to_dict",
    "result_to_dict",
    "save_result_file",
    "stats_from_result_dict",
]
