"""Specification and result serialization.

Specifications round-trip through a stable JSON format so workloads
can be authored, archived, and shared outside Python; synthesis
results export to JSON for downstream tooling (dashboards, diffing
architectures across runs).  Campaign checkpoints and manifests
(:mod:`repro.io.campaign_json`) add canonical-bytes JSON and an
fsynced JSONL log for the fault-tolerant campaign runner; the
synthesis service's versioned request/response/error documents live
in :mod:`repro.io.service_json`.
"""

from repro.io.campaign_json import (
    CAMPAIGN_SCHEMA_VERSION,
    canonical_dumps,
    dump_canonical,
    read_jsonl,
)
from repro.io.spec_json import (
    load_spec,
    load_spec_file,
    save_spec_file,
    spec_from_dict,
    spec_to_dict,
)
from repro.io.result_json import (
    result_to_dict,
    save_result_file,
    stats_from_result_dict,
)
from repro.io.service_json import (
    SERVICE_SCHEMA_VERSION,
    RequestValidationError,
    build_request,
    validate_request,
)

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "RequestValidationError",
    "build_request",
    "validate_request",
    "CAMPAIGN_SCHEMA_VERSION",
    "canonical_dumps",
    "dump_canonical",
    "read_jsonl",
    "load_spec",
    "load_spec_file",
    "save_spec_file",
    "spec_from_dict",
    "spec_to_dict",
    "result_to_dict",
    "save_result_file",
    "stats_from_result_dict",
]
