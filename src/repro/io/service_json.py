"""Request/response schemas of the synthesis service (:mod:`repro.service`).

The service speaks canonical JSON (:func:`repro.io.campaign_json.
canonical_dumps`) in both directions, and every document carries a
``format`` name and schema ``version`` stamp so clients can detect
incompatible servers before trusting a payload.  Three document
shapes exist:

``crusade-request``
    What ``POST /synthesize`` accepts: an embedded ``crusade-spec``
    document (:mod:`repro.io.spec_json`), an optional ``config`` map
    of whitelisted :class:`~repro.core.config.CrusadeConfig` overrides
    (:data:`SERVICE_CONFIG_FIELDS`), and an optional ``catalog`` name
    (only ``"default"`` exists today).  Store-plumbing knobs
    (``cache_dir``, ``warm_start``) are *rejected*, not ignored: the
    server owns its store, and silently dropping a key a client
    believed in would be worse than a 400.

``crusade-response``
    What the server returns for an admitted request: ``status``
    (``"done"`` or ``"failed"``), the content-address ``key`` triple
    (spec/catalog/config digests -- the dedupe identity of the
    request), ``cache_hit``/``coalesced`` provenance flags, and either
    a run-neutral ``result`` payload (the ``crusade-result`` export
    with the run-varying ``cpu_seconds``/``stats`` fields stripped, so
    a computed response and a later cache-served response of the same
    request are byte-identical) or a structured ``error``.

``crusade-error``
    What admission failures return (400/404/405/413/503): an ``error``
    object with a machine-readable ``kind`` and a human ``detail``,
    plus a flat ``errors`` list for validation failures so a client
    can surface every problem at once.

Validation happens *here*, before anything touches the synthesis
engine: :func:`validate_request` either returns the parsed
``(spec, config overrides)`` pair or raises
:class:`RequestValidationError` carrying the full error list.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.io.spec_json import spec_from_dict, spec_to_dict

#: Format names stamped into every service document.
REQUEST_FORMAT = "crusade-request"
RESPONSE_FORMAT = "crusade-response"
ERROR_FORMAT = "crusade-error"

#: Bumped only when a key of any service document changes meaning.
SERVICE_SCHEMA_VERSION = 1

#: Resource catalogs a request may name; the paper's part library is
#: the only one shipped.
KNOWN_CATALOGS = ("default",)

#: ``CrusadeConfig`` fields a request's ``config`` map may override:
#: every JSON-scalar knob of the synthesis semantics plus the proven
#: byte-identity-preserving performance knobs.  Deliberately absent:
#: ``cache_dir``/``warm_start`` (the server owns its store),
#: ``delay_policy``/``link_strategies`` (structured values with no
#: JSON contract yet).  Maps field name to the accepted JSON types.
SERVICE_CONFIG_FIELDS: Dict[str, tuple] = {
    "reconfiguration": (bool,),
    "clustering": (bool,),
    "max_explicit_copies": (int,),
    "max_cluster_size": (int,),
    "preemption": (bool,),
    "max_existing_options": (int,),
    "fast_inner_loop": (bool, type(None)),
    "fast_threshold_tasks": (int,),
    "combine_modes": (bool,),
    "interface_retries": (int,),
    "incremental": (bool,),
    "parallel_eval": (int,),
    "prune": (bool,),
    "timeline": (str,),
    "bound_abort": (bool,),
    "pool_batch": (int,),
    "policy": (str,),
}

#: ``error.kind`` values admission can produce, mapped to the HTTP
#: status the server sends them with (the failure-mode table in
#: docs/SERVICE.md documents each).
ERROR_KINDS = {
    "invalid-json": 400,
    "bad-request": 400,
    "not-found": 404,
    "method-not-allowed": 405,
    "payload-too-large": 413,
    "internal": 500,
    "draining": 503,
}


class RequestValidationError(ValueError):
    """A ``crusade-request`` document failed admission validation.

    ``errors`` holds every problem found (not just the first), in a
    stable order, so one 400 round-trip surfaces them all.
    """

    def __init__(self, errors: List[str]) -> None:
        """Wrap the full ``errors`` list; the message shows them all."""
        super().__init__("; ".join(errors))
        self.errors = list(errors)


# ----------------------------------------------------------------------
# request side
# ----------------------------------------------------------------------
def build_request(
    spec: SystemSpec,
    config: Optional[Mapping[str, Any]] = None,
    catalog: str = "default",
) -> Dict[str, Any]:
    """A ``crusade-request`` document for ``spec`` (the client side).

    ``config`` is passed through as given -- the *server* validates it
    against :data:`SERVICE_CONFIG_FIELDS`, so a stale client cannot
    silently drop a knob a newer server would honour.
    """
    payload: Dict[str, Any] = {
        "format": REQUEST_FORMAT,
        "version": SERVICE_SCHEMA_VERSION,
        "catalog": catalog,
        "spec": spec_to_dict(spec),
    }
    if config:
        payload["config"] = dict(config)
    return payload


def request_from_spec_payload(
    spec_payload: Mapping[str, Any],
    config: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """A ``crusade-request`` wrapping an already-serialized spec doc.

    The ``repro submit`` client reads spec JSON files straight from
    disk; round-tripping them through :class:`SystemSpec` here would
    only mask file errors the server must diagnose anyway.
    """
    payload: Dict[str, Any] = {
        "format": REQUEST_FORMAT,
        "version": SERVICE_SCHEMA_VERSION,
        "catalog": "default",
        "spec": dict(spec_payload),
    }
    if config:
        payload["config"] = dict(config)
    return payload


def _check_config(config: Any, errors: List[str]) -> Dict[str, Any]:
    """Validate the ``config`` map; returns the accepted overrides."""
    if config is None:
        return {}
    if not isinstance(config, dict):
        errors.append("config: expected an object, got %s" % _typename(config))
        return {}
    accepted: Dict[str, Any] = {}
    for key in sorted(config):
        value = config[key]
        allowed = SERVICE_CONFIG_FIELDS.get(key)
        if allowed is None:
            errors.append("config.%s: unknown or non-overridable field" % key)
            continue
        # bool is an int subclass; an int-typed knob must not accept
        # JSON true/false.
        if isinstance(value, bool) and bool not in allowed:
            errors.append("config.%s: expected %s, got boolean"
                          % (key, _typenames(allowed)))
            continue
        if not isinstance(value, allowed):
            errors.append("config.%s: expected %s, got %s"
                          % (key, _typenames(allowed), _typename(value)))
            continue
        accepted[key] = value
    return accepted


def _typename(value: Any) -> str:
    """The JSON-ish name of ``value``'s type for error messages."""
    return {
        bool: "boolean", int: "integer", float: "number", str: "string",
        list: "array", dict: "object", type(None): "null",
    }.get(type(value), type(value).__name__)


def _typenames(allowed: tuple) -> str:
    """Human list of accepted types for one config field."""
    names = {
        bool: "boolean", int: "integer", str: "string", type(None): "null",
    }
    return "/".join(names.get(t, t.__name__) for t in allowed)


def validate_request(
    payload: Any,
) -> Tuple[SystemSpec, Dict[str, Any]]:
    """Admission-validate one ``crusade-request`` document.

    Returns ``(spec, config overrides)`` on success; raises
    :class:`RequestValidationError` listing *every* problem found
    otherwise.  Nothing here touches the synthesis engine -- a
    malformed request is rejected before it can cost anything.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        raise RequestValidationError(
            ["request: expected an object, got %s" % _typename(payload)]
        )
    if payload.get("format") != REQUEST_FORMAT:
        errors.append("format: expected %r, got %r"
                      % (REQUEST_FORMAT, payload.get("format")))
    if payload.get("version") != SERVICE_SCHEMA_VERSION:
        errors.append("version: expected %d, got %r"
                      % (SERVICE_SCHEMA_VERSION, payload.get("version")))
    catalog = payload.get("catalog", "default")
    if catalog not in KNOWN_CATALOGS:
        errors.append("catalog: unknown catalog %r (known: %s)"
                      % (catalog, ", ".join(KNOWN_CATALOGS)))
    overrides = _check_config(payload.get("config"), errors)
    spec = None
    spec_payload = payload.get("spec")
    if not isinstance(spec_payload, dict):
        errors.append("spec: expected a crusade-spec object, got %s"
                      % _typename(spec_payload))
    else:
        try:
            spec = spec_from_dict(spec_payload)
        except SpecificationError as exc:
            errors.append("spec: %s" % exc)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            errors.append("spec: malformed document (%s: %s)"
                          % (type(exc).__name__, exc))
    if errors:
        raise RequestValidationError(errors)
    assert spec is not None
    return spec, overrides


# ----------------------------------------------------------------------
# response side
# ----------------------------------------------------------------------
def strip_run_varying(result_payload: Dict[str, Any]) -> Dict[str, Any]:
    """A run-neutral copy of a ``crusade-result`` export.

    Drops ``cpu_seconds`` and the traced ``stats`` block -- the only
    legitimately run-varying fields -- so a computed response and a
    cache-served response of the same request carry byte-identical
    ``result`` payloads (the service's headline contract, asserted by
    the CI service-smoke job).
    """
    neutral = dict(result_payload)
    neutral.pop("cpu_seconds", None)
    neutral.pop("stats", None)
    return neutral


def done_response(
    key: Mapping[str, str],
    result_payload: Dict[str, Any],
    cache_hit: bool,
    coalesced: bool,
) -> Dict[str, Any]:
    """A successful ``crusade-response`` document."""
    return {
        "format": RESPONSE_FORMAT,
        "version": SERVICE_SCHEMA_VERSION,
        "status": "done",
        "cache_hit": bool(cache_hit),
        "coalesced": bool(coalesced),
        "key": dict(key),
        "result": strip_run_varying(result_payload),
    }


def failed_response(
    key: Mapping[str, str],
    kind: str,
    detail: str,
    coalesced: bool = False,
) -> Dict[str, Any]:
    """A ``crusade-response`` for a job that failed after admission.

    ``kind`` names the supervision verdict (``"crash"``, ``"timeout"``
    or ``"error"``); ``detail`` carries the traceback or supervisor
    message.  This is the structured degradation contract: a worker
    crash becomes a parseable document, never a hung connection.
    """
    return {
        "format": RESPONSE_FORMAT,
        "version": SERVICE_SCHEMA_VERSION,
        "status": "failed",
        "cache_hit": False,
        "coalesced": bool(coalesced),
        "key": dict(key),
        "error": {"kind": kind, "detail": detail},
    }


def error_body(
    kind: str, detail: str, errors: Optional[List[str]] = None
) -> Dict[str, Any]:
    """A ``crusade-error`` document for an admission failure.

    ``kind`` must be one of :data:`ERROR_KINDS`; the server pairs it
    with that table's HTTP status.
    """
    if kind not in ERROR_KINDS:
        raise ValueError("unknown service error kind %r" % (kind,))
    body: Dict[str, Any] = {
        "format": ERROR_FORMAT,
        "version": SERVICE_SCHEMA_VERSION,
        "error": {"kind": kind, "detail": detail},
    }
    if errors:
        body["error"]["errors"] = list(errors)
    return body


def result_bytes(response: Mapping[str, Any]) -> bytes:
    """Canonical bytes of a response's ``result`` payload.

    The comparison primitive of the byte-identity contract: two
    responses for the same request -- computed, cache-served, or
    coalesced -- must agree under this function exactly.
    """
    return json.dumps(
        response.get("result"), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
