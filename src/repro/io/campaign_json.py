"""Campaign checkpoint and manifest serialization.

The campaign runner (:mod:`repro.campaign`) persists three kinds of
artifacts under a campaign directory, all built from the helpers here:

``campaign.json``
    The expanded campaign specification, written once by
    ``repro campaign run`` and required unchanged by ``resume``.
    Canonical JSON (see :func:`canonical_dumps`).
``jobs.jsonl``
    The append-only checkpoint log: one compact JSON object per
    *terminal* job record (``done`` or ``failed``), flushed and
    fsynced per line so a killed campaign loses at most the job it
    was writing.  Readers tolerate a trailing partial line (the
    signature of a mid-write kill) and take the *last* record per job
    id, so a failed job that later succeeds on resume is superseded.
``manifest.json``
    The final aggregate, written atomically only once every job is
    terminal.  Canonical JSON restricted to deterministic fields
    (no wall-clock times, no attempt counts), so an interrupted
    campaign that is resumed produces a manifest byte-identical to an
    uninterrupted run.

Canonical form means: keys sorted, two-space indent, fixed
separators, ASCII-only, single trailing newline.  Two semantically
equal payloads always serialize to the same bytes, which is what the
resume-determinism acceptance test compares.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import IO, Any, Dict, List, Union

#: Schema version stamped into campaign.json, jobs.jsonl records and
#: manifest.json; bumped only when a key changes meaning.
CAMPAIGN_SCHEMA_VERSION = 1

PathLike = Union[str, pathlib.Path]


def canonical_dumps(payload: Any) -> str:
    """Serialize ``payload`` to canonical JSON text.

    Sorted keys, two-space indent, fixed separators and a trailing
    newline: equal payloads yield identical bytes.
    """
    return (
        json.dumps(
            payload,
            sort_keys=True,
            indent=2,
            separators=(",", ": "),
            ensure_ascii=True,
        )
        + "\n"
    )


def dump_canonical(payload: Any, path: PathLike) -> None:
    """Atomically write ``payload`` as canonical JSON to ``path``.

    Writes to a sibling temp file, fsyncs, then ``os.replace``s into
    place so readers never observe a half-written document.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(canonical_dumps(payload))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_json(path: PathLike) -> Any:
    """Load one JSON document from ``path``."""
    with open(path) as fh:
        return json.load(fh)


def append_jsonl(fh: IO[str], payload: Dict[str, Any]) -> None:
    """Append one compact JSON line to an open log and fsync it.

    The flush + fsync per record is the durability contract of the
    checkpoint log: once this returns, the record survives a kill.
    """
    fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    fh.write("\n")
    fh.flush()
    os.fsync(fh.fileno())


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Read every complete record of a JSON-lines checkpoint log.

    A trailing line that does not parse (a mid-write kill) is
    silently dropped; a malformed line *followed by* valid ones is a
    corrupt log and raises ``ValueError``.
    """
    records: List[Dict[str, Any]] = []
    bad_at = -1
    with open(path) as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if bad_at >= 0:
                    raise ValueError(
                        "%s: corrupt checkpoint line %d" % (path, bad_at + 1)
                    )
                bad_at = lineno
                continue
            if bad_at >= 0:
                raise ValueError(
                    "%s: corrupt checkpoint line %d" % (path, bad_at + 1)
                )
    return records
