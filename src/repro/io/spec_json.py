"""JSON (de)serialization of system specifications.

The format is versioned and deliberately explicit -- every vector of
the paper's execution model appears under its own key -- so task
graphs can be authored by hand or emitted by external tools:

.. code-block:: json

    {
      "format": "crusade-spec",
      "version": 1,
      "name": "demo",
      "boot_time_requirement": 0.25,
      "compatibility": [["ga", "gb"]],
      "unavailability": {"ga": 12.0},
      "graphs": [
        {
          "name": "ga", "period": 0.01, "deadline": 0.008, "est": 0.0,
          "tasks": [
            {"name": "t0",
             "exec_times": {"MC68360": 0.0004},
             "preference": {"MC68360": 1.0},
             "exclusions": [],
             "memory": {"program": 8192, "data": 2048, "stack": 512},
             "area_gates": 0, "pins": 0, "deadline": null,
             "error_transparent": false,
             "assertions": [
               {"name": "parity", "coverage": 0.95,
                "exec_times": {"MC68360": 6e-05}, "comm_bytes": 16}
             ]}
          ],
          "edges": [{"src": "t0", "dst": "t1", "bytes": 256}]
        }
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.graph.task import AssertionSpec, MemoryRequirement, Task
from repro.graph.taskgraph import TaskGraph

FORMAT_NAME = "crusade-spec"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def _assertion_to_dict(assertion: AssertionSpec) -> Dict[str, Any]:
    return {
        "name": assertion.name,
        "coverage": assertion.coverage,
        "exec_times": dict(assertion.exec_times),
        "comm_bytes": assertion.comm_bytes,
    }


def _task_to_dict(task: Task) -> Dict[str, Any]:
    return {
        "name": task.name,
        "exec_times": dict(task.exec_times),
        "preference": dict(task.preference),
        "exclusions": sorted(task.exclusions),
        "memory": {
            "program": task.memory.program,
            "data": task.memory.data,
            "stack": task.memory.stack,
        },
        "area_gates": task.area_gates,
        "pins": task.pins,
        "deadline": task.deadline,
        "error_transparent": task.error_transparent,
        "assertions": [_assertion_to_dict(a) for a in task.assertions],
    }


def _graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "period": graph.period,
        "deadline": graph.deadline,
        "est": graph.est,
        "tasks": [_task_to_dict(graph.task(n)) for n in graph.topological_order()],
        "edges": [
            {"src": e.src, "dst": e.dst, "bytes": e.bytes_}
            for e in graph.iter_edges()
        ],
    }


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize one task graph to plain JSON-ready structures.

    Tasks appear in topological order and every scheduling-visible
    vector appears under its own key, so the payload doubles as the
    canonical content the persistent store's per-graph digests hash
    (:mod:`repro.perf.store.digests`).
    """
    return _graph_to_dict(graph)


def spec_to_dict(spec: SystemSpec) -> Dict[str, Any]:
    """Serialize a specification to plain JSON-ready structures."""
    compatibility = None
    if spec.has_explicit_compatibility:
        names = spec.graph_names()
        compatibility = [
            [a, b]
            for i, a in enumerate(names)
            for b in names[i + 1 :]
            if spec.compatible(a, b)
        ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": spec.name,
        "boot_time_requirement": spec.boot_time_requirement,
        "compatibility": compatibility,
        "unavailability": dict(spec.unavailability),
        "graphs": [_graph_to_dict(spec.graph(n)) for n in spec.graph_names()],
    }


def save_spec_file(spec: SystemSpec, path: Union[str, pathlib.Path]) -> None:
    """Write a specification to a JSON file."""
    payload = spec_to_dict(spec)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


# ----------------------------------------------------------------------
# deserialization
# ----------------------------------------------------------------------
def _task_from_dict(data: Dict[str, Any]) -> Task:
    memory = data.get("memory") or {}
    assertions = tuple(
        AssertionSpec(
            name=a["name"],
            coverage=a["coverage"],
            exec_times=dict(a.get("exec_times") or {}),
            comm_bytes=a.get("comm_bytes", 64),
        )
        for a in data.get("assertions") or ()
    )
    return Task(
        name=data["name"],
        exec_times=dict(data["exec_times"]),
        preference=dict(data.get("preference") or {}),
        exclusions=frozenset(data.get("exclusions") or ()),
        memory=MemoryRequirement(
            program=memory.get("program", 0),
            data=memory.get("data", 0),
            stack=memory.get("stack", 0),
        ),
        area_gates=data.get("area_gates", 0),
        pins=data.get("pins", 0),
        deadline=data.get("deadline"),
        assertions=assertions,
        error_transparent=data.get("error_transparent", False),
    )


def _graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    graph = TaskGraph(
        name=data["name"],
        period=data["period"],
        deadline=data.get("deadline"),
        est=data.get("est", 0.0),
    )
    for task_data in data.get("tasks") or ():
        graph.add_task(_task_from_dict(task_data))
    for edge_data in data.get("edges") or ():
        graph.add_edge(
            edge_data["src"], edge_data["dst"], bytes_=edge_data.get("bytes", 0)
        )
    return graph


def spec_from_dict(data: Dict[str, Any]) -> SystemSpec:
    """Rebuild a specification from its JSON structures."""
    if data.get("format") != FORMAT_NAME:
        raise SpecificationError(
            "not a %s document (format=%r)" % (FORMAT_NAME, data.get("format"))
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise SpecificationError(
            "unsupported %s version %r (supported: %d)"
            % (FORMAT_NAME, version, FORMAT_VERSION)
        )
    compatibility = data.get("compatibility")
    if compatibility is not None:
        compatibility = [tuple(pair) for pair in compatibility]
    return SystemSpec(
        name=data["name"],
        graphs=[_graph_from_dict(g) for g in data.get("graphs") or ()],
        compatibility=compatibility,
        boot_time_requirement=data.get("boot_time_requirement", 0.2),
        unavailability=data.get("unavailability") or {},
    )


def load_spec(text: str) -> SystemSpec:
    """Parse a specification from a JSON string."""
    return spec_from_dict(json.loads(text))


def load_spec_file(path: Union[str, pathlib.Path]) -> SystemSpec:
    """Read a specification from a JSON file."""
    return load_spec(pathlib.Path(path).read_text())
