"""JSON export of co-synthesis results.

One-way (results are not reloaded as live objects): the export captures
everything a downstream consumer needs to audit or visualize a
synthesized system -- the architecture with its modes and replicas,
the cluster allocation, link topology, the schedule of the
representative hyperperiod, the deadline report, and the programming
interfaces.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.arch.cost import cost_breakdown
from repro.core.report import CoSynthesisResult
from repro.obs.report import SynthesisStats, stats_from_dict


def _arch_to_dict(result: CoSynthesisResult) -> Dict[str, Any]:
    arch = result.arch
    pes = []
    for pe_id in sorted(arch.pes):
        pe = arch.pes[pe_id]
        bank = pe.memory_bank()
        pes.append({
            "id": pe.id,
            "type": pe.pe_type.name,
            "kind": pe.pe_type.kind.value,
            "cost": pe.cost,
            "memory_bank_bytes": bank.size_bytes if bank else 0,
            "modes": [
                {
                    "index": mode.index,
                    "gates_used": mode.gates_used,
                    "pins_used": mode.pins_used,
                    "clusters": sorted(mode.clusters),
                }
                for mode in pe.modes
            ],
            "replicas": {
                name: sorted(modes)
                for name, modes in sorted(pe.replica_modes.items())
            },
        })
    links = [
        {
            "id": link.id,
            "type": link.link_type.name,
            "cost": link.cost,
            "attached": link.attached_sorted(),
        }
        for link_id, link in sorted(arch.links.items())
    ]
    return {
        "pes": pes,
        "links": links,
        "allocation": {
            cluster: {"pe": pe_id, "mode": mode}
            for cluster, (pe_id, mode) in sorted(arch.cluster_alloc.items())
        },
        "cost_breakdown": cost_breakdown(arch).as_dict(),
    }


def _schedule_to_dict(result: CoSynthesisResult) -> Dict[str, Any]:
    tasks = []
    for key in sorted(result.schedule.tasks):
        placed = result.schedule.tasks[key]
        graph, copy, task = key
        tasks.append({
            "graph": graph,
            "copy": copy,
            "task": task,
            "pe": placed.pe_id,
            "mode": placed.mode,
            "start": placed.start,
            "finish": placed.finish,
            "preempted": placed.preempted,
        })
    edges = []
    for key in sorted(result.schedule.edges):
        placed = result.schedule.edges[key]
        graph, copy, src, dst = key
        edges.append({
            "graph": graph,
            "copy": copy,
            "src": src,
            "dst": dst,
            "link": placed.link_id,
            "start": placed.start,
            "finish": placed.finish,
        })
    windows = {
        pe_id: [
            {"mode": w.mode, "start": w.start, "end": w.end, "boot_time": w.boot_time}
            for w in timeline.windows
        ]
        for pe_id, timeline in sorted(result.schedule.ppe_timelines.items())
    }
    return {
        "tasks": tasks,
        "edges": edges,
        "mode_windows": windows,
        "reconfigurations": result.reconfigurations,
        "preemptions": result.schedule.preemptions,
    }


def result_to_dict(result: CoSynthesisResult) -> Dict[str, Any]:
    """Serialize a co-synthesis result to JSON-ready structures."""
    interfaces = {}
    if result.interface is not None:
        for pe_id, device in sorted(result.interface.devices.items()):
            interfaces[pe_id] = {
                "option": device.option.name,
                "storage_bytes": device.storage_bytes,
                "chained_with": list(device.chained_with),
                "cost_share": device.cost_share,
                "runtime_boot_times": dict(device.runtime_boot_times),
            }
    payload = {
        "format": "crusade-result",
        "version": 1,
        "system": result.spec.name,
        "feasible": result.feasible,
        "cost": result.cost,
        "cpu_seconds": result.cpu_seconds,
        "reconfiguration_enabled": result.reconfiguration_enabled,
        "merge_stats": dict(result.merge_stats),
        "deadlines": {
            "all_met": result.report.all_met,
            "missed": result.report.n_missed,
            "max_lateness": result.report.max_lateness,
            "overloaded": dict(result.report.overloaded),
        },
        "architecture": _arch_to_dict(result),
        "schedule": _schedule_to_dict(result),
        "interfaces": interfaces,
    }
    # Untraced runs keep the historical export byte-for-byte: the
    # stats block appears only when a tracer collected one.
    if result.stats is not None:
        payload["stats"] = result.stats.to_dict()
    return payload


def canonical_result_json(result: CoSynthesisResult) -> str:
    """Deterministic JSON text of a result, timing stripped.

    Two synthesis runs on the same inputs must produce byte-identical
    canonical text: ``cpu_seconds`` and the traced ``stats`` block (the
    only legitimately run-varying fields) are removed, keys are sorted,
    and the text ends with a single newline.  This is what the golden
    regression fixtures under ``tests/core/golden/`` store.
    """
    payload = result_to_dict(result)
    payload.pop("cpu_seconds", None)
    payload.pop("stats", None)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def stats_from_result_dict(payload: Dict[str, Any]) -> Union[SynthesisStats, None]:
    """The stats block of an exported result, or None for untraced
    runs (inverse of the ``"stats"`` key written by
    :func:`result_to_dict`)."""
    block = payload.get("stats")
    if block is None:
        return None
    return stats_from_dict(block)


def save_result_file(
    result: CoSynthesisResult, path: Union[str, pathlib.Path]
) -> None:
    """Write a result export to a JSON file."""
    payload = result_to_dict(result)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
