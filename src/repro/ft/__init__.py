"""Fault tolerance: the CRUSADE-FT extension (Section 6).

Fault detection is added to the specification itself -- assertion
tasks where the task offers one, duplicate-and-compare otherwise --
with the *error-transparency* property exploited to share checks along
transparent chains.  Dependability is analysed with Markov models of
*service modules* (groups of PEs replaced as a unit) and error
recovery is enabled by allocating spare PEs until each task graph's
availability requirement holds.
"""

from repro.ft.transparency import check_points
from repro.ft.assertions import FtTransform, transform_spec_for_ft
from repro.ft.clustering import fault_tolerance_levels, ft_cluster_spec
from repro.ft.availability import (
    ServiceModule,
    module_unavailability,
    steady_state_unavailability,
)
from repro.ft.recovery import SpareAllocation, allocate_spares, service_modules_of

__all__ = [
    "check_points",
    "FtTransform",
    "transform_spec_for_ft",
    "fault_tolerance_levels",
    "ft_cluster_spec",
    "ServiceModule",
    "module_unavailability",
    "steady_state_unavailability",
    "SpareAllocation",
    "allocate_spares",
    "service_modules_of",
]
