"""Error transparency analysis (Section 6).

A task that transmits any error at its inputs to its outputs is
*error-transparent*; a check placed downstream of a transparent chain
detects faults anywhere along it, so CRUSADE-FT checks only the chain
ends instead of every task -- the paper's main lever for low fault-
tolerance overhead (inherited from COFTA).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.taskgraph import TaskGraph


def check_points(graph: TaskGraph) -> List[str]:
    """Tasks that need their own fault check.

    A task may *defer* its check when it is error-transparent and every
    one of its successors is (transitively) checked -- any error it
    produces flows through to a checked point.  Sinks can never defer.
    Computed in reverse topological order; returns sorted task names.
    """
    needs_check: Set[str] = set()
    covered: Dict[str, bool] = {}
    for task_name in reversed(graph.topological_order()):
        task = graph.task(task_name)
        successors = graph.successors(task_name)
        if not successors:
            needs_check.add(task_name)
            covered[task_name] = True
            continue
        if task.error_transparent:
            # Errors propagate: covered iff every downstream path hits
            # a check, which holds because every successor is covered
            # (inductively true -- every task ends covered).
            covered[task_name] = all(covered[s] for s in successors)
            if not covered[task_name]:  # pragma: no cover - defensive
                needs_check.add(task_name)
                covered[task_name] = True
        else:
            # Opaque task: an input error may vanish into a wrong-but-
            # plausible output, so the task must be checked directly.
            needs_check.add(task_name)
            covered[task_name] = True
    return sorted(needs_check)


def transparent_chain_savings(graph: TaskGraph) -> int:
    """How many checks error transparency eliminated for ``graph``."""
    return len(graph) - len(check_points(graph))
