"""Markov dependability analysis (Section 6).

"Markov models are used to evaluate the availability of service
modules and the distributed architecture."  A *service module* is a
set of PEs replaced as a unit, protected by ``spares`` standby units.
We model it as the classic machine-repair birth-death chain:

* states k = number of failed units, k in [0, n + s];
* failure rate from state k: ``(n + s - k) * lambda`` (all powered
  units age);
* repair rate: ``min(k, crews) * mu`` with a single repair crew by
  default (MTTR = 1/mu);
* the module is *down* whenever more units have failed than there are
  spares (fewer than n workers remain).

FIT rates (failures per 1e9 hours) come from the architecture's
modules, Bellcore-style; MTTR defaults to the paper's two hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import DependabilityError
from repro.units import fit_to_lambda


@dataclass(frozen=True)
class ServiceModule:
    """A replaceable group of identical PEs with standby spares."""

    name: str
    n_active: int
    spares: int
    fit_per_unit: float
    mttr_hours: float = 2.0

    def __post_init__(self) -> None:
        if self.n_active < 1:
            raise DependabilityError("service module needs an active unit")
        if self.spares < 0:
            raise DependabilityError("spares must be non-negative")
        if self.fit_per_unit < 0:
            raise DependabilityError("FIT must be non-negative")
        if self.mttr_hours <= 0:
            raise DependabilityError("MTTR must be positive")

    def with_spares(self, spares: int) -> "ServiceModule":
        """Copy with a different spare count."""
        return ServiceModule(
            name=self.name,
            n_active=self.n_active,
            spares=spares,
            fit_per_unit=self.fit_per_unit,
            mttr_hours=self.mttr_hours,
        )


def steady_state_unavailability(
    n_active: int,
    spares: int,
    lambda_per_hour: float,
    mu_per_hour: float,
    repair_crews: int = 1,
) -> float:
    """Steady-state probability that fewer than ``n_active`` units work.

    Solves the birth-death chain analytically via the product-form
    stationary distribution.
    """
    if n_active < 1 or spares < 0:
        raise DependabilityError("invalid module shape")
    if lambda_per_hour < 0 or mu_per_hour <= 0 or repair_crews < 1:
        raise DependabilityError("invalid rates")
    if lambda_per_hour == 0.0:
        return 0.0
    total = n_active + spares
    # pi_k proportional to prod_{i<k} birth(i)/death(i+1).
    weights: List[float] = [1.0]
    for k in range(1, total + 1):
        birth = (total - (k - 1)) * lambda_per_hour
        death = min(k, repair_crews) * mu_per_hour
        weights.append(weights[-1] * birth / death)
    norm = sum(weights)
    down = sum(weights[k] for k in range(spares + 1, total + 1))
    return down / norm


def module_unavailability(module: ServiceModule, repair_crews: int = 1) -> float:
    """Unavailability of one service module."""
    lam = fit_to_lambda(module.fit_per_unit)
    mu = 1.0 / module.mttr_hours
    return steady_state_unavailability(
        module.n_active, module.spares, lam, mu, repair_crews
    )


def system_unavailability(modules: List[ServiceModule]) -> float:
    """Unavailability of a set of modules in series (all needed).

    1 - prod(availability); exact under independence.
    """
    availability = 1.0
    for module in modules:
        availability *= 1.0 - module_unavailability(module)
    return 1.0 - availability


def minutes_per_year(unavailability: float) -> float:
    """Convert a fraction to downtime minutes per year for reports."""
    from repro.units import MINUTES_PER_YEAR

    return unavailability * MINUTES_PER_YEAR
