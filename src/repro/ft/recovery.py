"""Error recovery: service modules and spare allocation (Section 6).

"Error recovery is enabled through a few spare PEs.  In the event of
failure of any service module a switch to a standby module is made."
Service modules are derived from the architecture automatically: every
PE type in use forms one module whose active count is its instance
count (the paper permits architectural hints; grouping by part type is
the automated fallback it describes).  Spares of the worst module are
added greedily until every task graph's availability requirement
holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import DependabilityError
from repro.arch.architecture import Architecture
from repro.cluster.clustering import ClusteringResult
from repro.graph.spec import SystemSpec
from repro.resources.pe import PEKind
from repro.ft.availability import (
    ServiceModule,
    module_unavailability,
)
from repro.units import MINUTES_PER_YEAR, unavailability_to_fraction

#: Default FIT rates per PE kind (failures per 1e9 hours), estimated
#: Bellcore-style for 1997 parts.
DEFAULT_FIT: Mapping[PEKind, float] = {
    PEKind.PROCESSOR: 500.0,
    PEKind.ASIC: 250.0,
    PEKind.FPGA: 400.0,
    PEKind.CPLD: 200.0,
}


@dataclass
class SpareAllocation:
    """Outcome of spare-PE allocation."""

    modules: Dict[str, ServiceModule] = field(default_factory=dict)
    spare_cost: float = 0.0
    graph_unavailability: Dict[str, float] = field(default_factory=dict)
    met: bool = True

    def total_spares(self) -> int:
        """Spare units across all service modules."""
        return sum(m.spares for m in self.modules.values())

    def downtime_minutes(self, graph_name: str) -> float:
        """Predicted downtime (min/year) for one task graph."""
        return self.graph_unavailability.get(graph_name, 0.0) * MINUTES_PER_YEAR


def service_modules_of(
    arch: Architecture,
    fit_rates: Optional[Mapping[PEKind, float]] = None,
    mttr_hours: float = 2.0,
    hints: Optional[Mapping[str, str]] = None,
) -> Dict[str, ServiceModule]:
    """Derive service modules from an architecture.

    The paper obtains service modules "using architectural hints (if
    available, otherwise using an automated process)".  ``hints`` maps
    a PE *type name* to a module label, letting designers group
    several part types into one replaceable unit (e.g. every 68K-class
    CPU card under ``"cpu-card"``); unhinted types fall back to the
    automated grouping -- one module per PE type in use.  A module's
    per-unit FIT rate is the worst FIT among its member kinds.
    """
    if fit_rates is None:
        fit_rates = DEFAULT_FIT
    if hints is None:
        hints = {}
    counts: Dict[str, int] = {}
    worst_fit: Dict[str, float] = {}
    for pe in arch.pes.values():
        module_name = hints.get(pe.pe_type.name, pe.pe_type.name)
        counts[module_name] = counts.get(module_name, 0) + 1
        fit = fit_rates.get(pe.pe_type.kind, 400.0)
        worst_fit[module_name] = max(worst_fit.get(module_name, 0.0), fit)
    return {
        module_name: ServiceModule(
            name=module_name,
            n_active=count,
            spares=0,
            fit_per_unit=worst_fit[module_name],
            mttr_hours=mttr_hours,
        )
        for module_name, count in sorted(counts.items())
    }


def _graph_module_map(
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
    hints: Optional[Mapping[str, str]] = None,
) -> Dict[str, Set[str]]:
    """Graph name -> set of service-module names it depends on."""
    if hints is None:
        hints = {}
    uses: Dict[str, Set[str]] = {name: set() for name in spec.graph_names()}
    for cluster in clustering.clusters.values():
        if not arch.is_allocated(cluster.name):
            continue
        pe_id, _ = arch.placement_of(cluster.name)
        type_name = arch.pe(pe_id).pe_type.name
        uses.setdefault(cluster.graph, set()).add(hints.get(type_name, type_name))
    return uses


def _spare_unit_costs(
    arch: Architecture, hints: Optional[Mapping[str, str]] = None
) -> Dict[str, float]:
    """Service-module name -> dollar cost of one standby unit (the
    costliest member part, conservatively)."""
    if hints is None:
        hints = {}
    costs: Dict[str, float] = {}
    for pe in arch.pes.values():
        module_name = hints.get(pe.pe_type.name, pe.pe_type.name)
        costs[module_name] = max(costs.get(module_name, 0.0), pe.pe_type.cost)
    return costs


def _graph_unavailability(
    modules: Dict[str, ServiceModule], used: Set[str]
) -> float:
    availability = 1.0
    for name in sorted(used):
        availability *= 1.0 - module_unavailability(modules[name])
    return 1.0 - availability


def allocate_spares(
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
    fit_rates: Optional[Mapping[PEKind, float]] = None,
    mttr_hours: float = 2.0,
    max_spares: int = 64,
    hints: Optional[Mapping[str, str]] = None,
) -> SpareAllocation:
    """Add spare PEs until every graph's availability requirement holds.

    Greedy: repeatedly give one spare to the service module whose extra
    spare most improves the worst-violating graph.  Module spares are
    standby PEs of the module's type; their cost is added to
    ``spare_cost`` (the architecture object itself is not mutated --
    the caller folds the cost into its report).

    Graphs without an explicit requirement in ``spec.unavailability``
    are not constrained.  When ``max_spares`` is exhausted the result
    is returned with ``met=False``.
    """
    allocation = SpareAllocation(
        modules=service_modules_of(arch, fit_rates, mttr_hours, hints=hints)
    )
    usage = _graph_module_map(arch, clustering, spec, hints=hints)
    unit_costs = _spare_unit_costs(arch, hints=hints)
    requirements = {
        name: unavailability_to_fraction(minutes)
        for name, minutes in spec.unavailability.items()
    }

    def refresh() -> List[Tuple[str, float, float]]:
        """(graph, unavailability, requirement) for violating graphs."""
        violations = []
        for name, requirement in sorted(requirements.items()):
            current = _graph_unavailability(allocation.modules, usage.get(name, set()))
            allocation.graph_unavailability[name] = current
            if current > requirement:
                violations.append((name, current, requirement))
        return violations

    spares_added = 0
    violations = refresh()
    while violations and spares_added < max_spares:
        worst_graph, _, _ = max(violations, key=lambda v: v[1] / max(v[2], 1e-18))
        used = usage.get(worst_graph, set())
        if not used:
            raise DependabilityError(
                "graph %r has an availability requirement but no allocated PEs"
                % (worst_graph,)
            )
        # Spare the module contributing the most unavailability.
        contribution = {
            name: module_unavailability(allocation.modules[name]) for name in used
        }
        target = max(sorted(contribution), key=lambda n: contribution[n])
        module = allocation.modules[target]
        allocation.modules[target] = module.with_spares(module.spares + 1)
        allocation.spare_cost += unit_costs.get(target, 0.0)
        spares_added += 1
        violations = refresh()

    allocation.met = not violations
    return allocation
