"""Fault-detection transformation: assertions and duplicate-and-compare.

Section 6: "Fault tolerance is incorporated by adding assertion tasks
and duplicate-and-compare tasks to the system followed by error
recovery."  For each task needing a check (see
:mod:`repro.ft.transparency`):

* when the task declares assertions, the assertion (or the combination
  needed to reach the required coverage) is added as a successor check
  task, with the specified communication weight and execution vector;
* otherwise the task is duplicated and a compare task collates the two
  outputs.

Check tasks are sinks, so they inherit the graph deadline -- fault
detection must complete within the same real-time window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.graph.task import AssertionSpec, MemoryRequirement, Task
from repro.graph.taskgraph import TaskGraph
from repro.ft.transparency import check_points

#: Suffixes for synthesized check structures.
ASSERT_SUFFIX = ".A"
DUP_SUFFIX = ".D"
CMP_SUFFIX = ".C"


@dataclass
class FtTransform:
    """Bookkeeping of the fault-detection transformation."""

    spec: SystemSpec
    assertion_tasks: List[Tuple[str, str]] = field(default_factory=list)
    duplicated_tasks: List[Tuple[str, str]] = field(default_factory=list)
    checks_saved_by_transparency: int = 0

    @property
    def n_assertions(self) -> int:
        return len(self.assertion_tasks)

    @property
    def n_duplicates(self) -> int:
        return len(self.duplicated_tasks)


def _pick_assertions(
    task: Task, required_coverage: float
) -> Optional[List[AssertionSpec]]:
    """Assertions to reach ``required_coverage``, fewest first.

    A single assertion may not suffice; combine greedily by descending
    coverage (independent-coverage composition: 1 - prod(1 - c_i)).
    Returns None when the task has no assertions or they cannot reach
    the requirement even combined (caller falls back to
    duplicate-and-compare).
    """
    if not task.assertions:
        return None
    ranked = sorted(task.assertions, key=lambda a: (-a.coverage, a.name))
    chosen: List[AssertionSpec] = []
    missed = 1.0
    for assertion in ranked:
        chosen.append(assertion)
        missed *= 1.0 - assertion.coverage
        if 1.0 - missed >= required_coverage:
            return chosen
    return None


def _compare_exec_times(task: Task) -> Dict[str, float]:
    """Execution vector of a compare task: a small fraction of the
    checked task, floor-bounded so it never vanishes."""
    return {
        pe: max(t * 0.05, 1e-7)
        for pe, t in task.exec_times.items()
        if t is not None
    }


def transform_graph_for_ft(
    graph: TaskGraph, required_coverage: float = 0.9
) -> Tuple[TaskGraph, List[Tuple[str, str]], List[Tuple[str, str]], int]:
    """Add fault detection to one task graph.

    Returns (new graph, assertion additions, duplications, checks
    saved by error transparency).
    """
    if not 0.0 < required_coverage <= 1.0:
        raise SpecificationError("required coverage must be in (0, 1]")
    out = TaskGraph(
        name=graph.name,
        period=graph.period,
        deadline=graph.deadline,
        est=graph.est,
    )
    for task in graph.iter_tasks():
        out.add_task(task)
    for edge in graph.iter_edges():
        out.add_edge(edge.src, edge.dst, bytes_=edge.bytes_)

    to_check = check_points(graph)
    saved = len(graph) - len(to_check)
    assertions_added: List[Tuple[str, str]] = []
    duplications: List[Tuple[str, str]] = []
    for task_name in to_check:
        task = graph.task(task_name)
        chosen = _pick_assertions(task, required_coverage)
        if chosen is not None:
            for assertion in chosen:
                check_name = task_name + ASSERT_SUFFIX + assertion.name[-8:]
                check_times = dict(assertion.exec_times)
                if not check_times:
                    # Assertion without its own vector: default to a
                    # 15 % overhead of the checked task.
                    check_times = {
                        pe: t * 0.15
                        for pe, t in task.exec_times.items()
                        if t is not None
                    }
                check = Task(
                    name=check_name,
                    exec_times=check_times,
                    memory=MemoryRequirement(program=1024, data=512, stack=256),
                    area_gates=max(16, task.area_gates // 10),
                    pins=max(2, task.pins // 4),
                )
                out.add_task(check)
                out.add_edge(task_name, check_name, bytes_=assertion.comm_bytes)
                assertions_added.append((task_name, check_name))
        else:
            dup_name = task_name + DUP_SUFFIX
            cmp_name = task_name + CMP_SUFFIX
            duplicate = Task(
                name=dup_name,
                exec_times=dict(task.exec_times),
                preference=dict(task.preference),
                # The duplicate must not share a PE with the original,
                # or a single PE fault kills both versions.
                exclusions=frozenset({task_name}),
                memory=task.memory,
                area_gates=task.area_gates,
                pins=task.pins,
            )
            compare = Task(
                name=cmp_name,
                exec_times=_compare_exec_times(task),
                memory=MemoryRequirement(program=512, data=256, stack=128),
                area_gates=max(8, task.area_gates // 20),
                pins=2,
            )
            out.add_task(duplicate)
            out.add_task(compare)
            for pred in graph.predecessors(task_name):
                bytes_ = graph.edge(pred, task_name).bytes_
                out.add_edge(pred, dup_name, bytes_=bytes_)
            out_bytes = 64
            out.add_edge(task_name, cmp_name, bytes_=out_bytes)
            out.add_edge(dup_name, cmp_name, bytes_=out_bytes)
            duplications.append((task_name, dup_name))
    return out, assertions_added, duplications, saved


def transform_spec_for_ft(
    spec: SystemSpec, required_coverage: float = 0.9
) -> FtTransform:
    """Add fault detection to every graph of a specification."""
    graphs: List[TaskGraph] = []
    transform_assertions: List[Tuple[str, str]] = []
    transform_dups: List[Tuple[str, str]] = []
    saved_total = 0
    for name in spec.graph_names():
        new_graph, added, dups, saved = transform_graph_for_ft(
            spec.graph(name), required_coverage
        )
        graphs.append(new_graph)
        transform_assertions.extend(added)
        transform_dups.extend(dups)
        saved_total += saved
    compatibility = None
    if spec.has_explicit_compatibility:
        names = spec.graph_names()
        compatibility = [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
            if spec.compatible(a, b)
        ]
    new_spec = SystemSpec(
        name=spec.name + "+ft",
        graphs=graphs,
        compatibility=compatibility,
        boot_time_requirement=spec.boot_time_requirement,
        unavailability=dict(spec.unavailability),
    )
    return FtTransform(
        spec=new_spec,
        assertion_tasks=transform_assertions,
        duplicated_tasks=transform_dups,
        checks_saved_by_transparency=saved_total,
    )
