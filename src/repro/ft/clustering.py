"""Fault-tolerance-level clustering (Section 6).

"We still use priority levels to identify the order of clustering for
tasks.  However, we use fault tolerance levels to cluster the tasks."
The fault-tolerance level of a task is its assertion overhead plus the
largest fault-tolerance level among its successors -- a longest-path
metric over check overhead inherited from COFTA.  Clustering along
high-FT-level paths keeps a checked chain on one PE, so one check
covers it with minimal communication.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.clustering import ClusteringResult, cluster_spec
from repro.cluster.priority import PriorityContext
from repro.delay.model import DelayPolicy
from repro.graph.spec import SystemSpec
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.resources.library import ResourceLibrary


def _assertion_overhead(task: Task) -> float:
    """Worst-case execution overhead of the task's fault check.

    Assertion tasks cost their own execution; tasks without assertions
    pay duplicate-and-compare, i.e. roughly the task itself again.
    Error-transparent tasks defer their check downstream and carry no
    local overhead.
    """
    if task.error_transparent:
        return 0.0
    usable = [t for t in task.exec_times.values() if t is not None]
    if not usable:
        return 0.0
    worst = max(usable)
    if task.assertions:
        check_times = [
            max((t for t in a.exec_times.values()), default=worst * 0.15)
            for a in task.assertions
        ]
        return min(check_times)
    return worst  # duplicate-and-compare re-runs the task


def fault_tolerance_levels(graph: TaskGraph) -> Dict[str, float]:
    """Fault-tolerance level of every task (reverse topological DP)."""
    levels: Dict[str, float] = {}
    for task_name in reversed(graph.topological_order()):
        task = graph.task(task_name)
        downstream = max(
            (levels[s] for s in graph.successors(task_name)), default=0.0
        )
        levels[task_name] = _assertion_overhead(task) + downstream
    return levels


def ft_cluster_spec(
    spec: SystemSpec,
    library: ResourceLibrary,
    context: Optional[PriorityContext] = None,
    delay_policy: Optional[DelayPolicy] = None,
    max_cluster_size: int = 8,
) -> ClusteringResult:
    """Cluster a (fault-detection-transformed) spec with FT levels
    steering cluster growth while priority levels pick seeds."""
    growth: Dict[Tuple[str, str], float] = {}
    for name in spec.graph_names():
        for task_name, level in fault_tolerance_levels(spec.graph(name)).items():
            growth[(name, task_name)] = level
    return cluster_spec(
        spec,
        library,
        context=context,
        delay_policy=delay_policy,
        max_cluster_size=max_cluster_size,
        growth_scores=growth,
    )
