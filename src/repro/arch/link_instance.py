"""Link instances: instantiated communication resources.

A link instance attaches a set of PE instances (its ports).  Edge
communication times depend on the *actual* port count, which is why the
paper recomputes communication vectors after each allocation.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import AllocationError
from repro.resources.link import LinkType


class LinkInstance:
    """One instantiated link in the architecture."""

    def __init__(self, instance_id: str, link_type: LinkType) -> None:
        if not instance_id:
            raise AllocationError("link instance id must be non-empty")
        self.id = instance_id
        self.link_type = link_type
        self.attached: Set[str] = set()

    @property
    def ports_used(self) -> int:
        """Number of PE instances attached."""
        return len(self.attached)

    @property
    def ports_free(self) -> int:
        """Remaining attachment capacity."""
        return self.link_type.max_ports - len(self.attached)

    def is_attached(self, pe_id: str) -> bool:
        """True when the PE instance is already a port of this link."""
        return pe_id in self.attached

    def attach(self, pe_id: str) -> None:
        """Attach a PE instance; idempotent attach is an error so the
        allocator's port accounting stays honest."""
        if pe_id in self.attached:
            raise AllocationError(
                "PE %r already attached to link %r" % (pe_id, self.id)
            )
        if self.ports_free <= 0:
            raise AllocationError(
                "link %r out of ports (max %d)" % (self.id, self.link_type.max_ports)
            )
        self.attached.add(pe_id)

    def detach(self, pe_id: str) -> None:
        """Detach a PE instance."""
        if pe_id not in self.attached:
            raise AllocationError("PE %r not attached to link %r" % (pe_id, self.id))
        self.attached.discard(pe_id)

    def connects(self, pe_a: str, pe_b: str) -> bool:
        """True when both PE instances are ports of this link."""
        return pe_a in self.attached and pe_b in self.attached

    def comm_time(self, bytes_: int) -> float:
        """Transfer time for ``bytes_`` bytes at the *current* port
        count (the recomputed communication vector entry)."""
        ports = max(2, self.ports_used)
        return self.link_type.comm_time(bytes_, ports)

    @property
    def cost(self) -> float:
        """Dollar cost at the current port count."""
        return self.link_type.instance_cost(max(1, self.ports_used))

    def clone(self) -> "LinkInstance":
        """Copy for trial allocations (link type shared, ports copied)."""
        duplicate = LinkInstance(self.id, self.link_type)
        duplicate.attached = set(self.attached)
        return duplicate

    def attached_sorted(self) -> List[str]:
        """Attached PE ids in sorted order (deterministic reporting)."""
        return sorted(self.attached)

    def __repr__(self) -> str:
        return "LinkInstance(%r, type=%r, ports=%d/%d)" % (
            self.id,
            self.link_type.name,
            self.ports_used,
            self.link_type.max_ports,
        )
