"""Configuration modes of programmable PEs.

Each FPGA/CPLD instance in the architecture may carry several
*configuration programs*; at any instant the device is in one of its
modes, and switching modes requires a reconfiguration whose duration is
the device boot time (Sections 4.2-4.3).  Non-programmable PEs are
modelled with a single implicit mode so the allocation data structures
stay uniform.
"""

from __future__ import annotations

from typing import Set

from repro.errors import AllocationError
from repro.graph.task import MemoryRequirement


class Mode:
    """One configuration mode of a PE instance.

    Tracks the clusters mapped into the mode and the resources they
    consume.  For programmable PEs and ASICs the relevant capacities
    are gate-equivalents and pins; for processors they are the memory
    vector (a processor always has exactly one mode).
    """

    def __init__(self, index: int) -> None:
        if index < 0:
            raise AllocationError("mode index must be non-negative")
        self.index = index
        self.clusters: Set[str] = set()
        self.gates_used: int = 0
        self.pins_used: int = 0
        self.memory_used: MemoryRequirement = MemoryRequirement()

    def add_cluster(
        self,
        cluster_name: str,
        gates: int = 0,
        pins: int = 0,
        memory: MemoryRequirement = MemoryRequirement(),
    ) -> None:
        """Account a cluster's resource usage into this mode."""
        if cluster_name in self.clusters:
            raise AllocationError(
                "cluster %r already in mode %d" % (cluster_name, self.index)
            )
        self.clusters.add(cluster_name)
        self.gates_used += gates
        self.pins_used += pins
        self.memory_used = self.memory_used + memory

    def remove_cluster(
        self,
        cluster_name: str,
        gates: int = 0,
        pins: int = 0,
        memory: MemoryRequirement = MemoryRequirement(),
    ) -> None:
        """Reverse :meth:`add_cluster` (used when a trial allocation is
        rejected)."""
        if cluster_name not in self.clusters:
            raise AllocationError(
                "cluster %r not in mode %d" % (cluster_name, self.index)
            )
        self.clusters.discard(cluster_name)
        self.gates_used -= gates
        self.pins_used -= pins
        self.memory_used = MemoryRequirement(
            program=self.memory_used.program - memory.program,
            data=self.memory_used.data - memory.data,
            stack=self.memory_used.stack - memory.stack,
        )

    def clone(self) -> "Mode":
        """Independent copy (cluster set is copied, counters copied)."""
        duplicate = Mode(self.index)
        duplicate.clusters = set(self.clusters)
        duplicate.gates_used = self.gates_used
        duplicate.pins_used = self.pins_used
        duplicate.memory_used = self.memory_used
        return duplicate

    @property
    def empty(self) -> bool:
        """True when no cluster is mapped into this mode."""
        return not self.clusters

    def __repr__(self) -> str:
        return "Mode(%d, %d clusters, %d gates, %d pins)" % (
            self.index,
            len(self.clusters),
            self.gates_used,
            self.pins_used,
        )
