"""Architecture model: the output of co-synthesis.

A heterogeneous distributed architecture is a set of PE *instances*
(each an instantiation of a library PE type, programmable ones carrying
multiple configuration *modes*), link instances connecting them, and
the allocation of clusters/edges onto those instances.  The topology is
not fixed a priori (Section 2.2); CRUSADE grows it instance by
instance.
"""

from repro.arch.modes import Mode
from repro.arch.pe_instance import PEInstance
from repro.arch.link_instance import LinkInstance
from repro.arch.architecture import Architecture
from repro.arch.cost import architecture_cost, cost_breakdown

__all__ = [
    "Mode",
    "PEInstance",
    "LinkInstance",
    "Architecture",
    "architecture_cost",
    "cost_breakdown",
]
