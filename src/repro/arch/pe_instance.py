"""PE instances: instantiated processing elements of an architecture.

``FPGA_j^i`` in the paper denotes the i-th instance, j-th mode of an
FPGA type; here a :class:`PEInstance` is the instance and carries its
:class:`~repro.arch.modes.Mode` list.  Processors and ASICs have a
single mode.  The instance also resolves the DRAM bank a processor
needs for the memory mapped onto it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AllocationError
from repro.arch.modes import Mode
from repro.graph.task import MemoryRequirement
from repro.resources.pe import MemoryBank, PEType, PpeType, ProcessorType


class PEInstance:
    """One instantiated PE in the architecture.

    Parameters
    ----------
    instance_id:
        Unique id within the architecture, e.g. ``"XC4025#2"``.
    pe_type:
        The library PE type instantiated.
    """

    def __init__(self, instance_id: str, pe_type: PEType) -> None:
        if not instance_id:
            raise AllocationError("PE instance id must be non-empty")
        self.id = instance_id
        self.pe_type = pe_type
        self.modes: List[Mode] = [Mode(0)]
        #: cluster name -> primary mode index holding it
        self.cluster_modes: Dict[str, int] = {}
        #: cluster name -> additional modes carrying a *replica* of its
        #: circuit.  Figure 2(e): T1 is present in both configurations
        #: of the device so it keeps running across mode switches of
        #: the others.  Replicas consume gates/pins in their modes.
        self.replica_modes: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    @property
    def is_programmable(self) -> bool:
        """True for FPGA/CPLD instances."""
        return self.pe_type.is_programmable

    @property
    def is_processor(self) -> bool:
        """True for general-purpose processor instances."""
        return isinstance(self.pe_type, ProcessorType)

    @property
    def n_modes(self) -> int:
        """Number of configuration modes (1 unless programmable)."""
        return len(self.modes)

    def mode(self, index: int) -> Mode:
        """Mode by index."""
        if not 0 <= index < len(self.modes):
            raise AllocationError(
                "PE %r has no mode %d (has %d)" % (self.id, index, len(self.modes))
            )
        return self.modes[index]

    def new_mode(self) -> Mode:
        """Append a fresh configuration mode (programmable PEs only)."""
        if not self.is_programmable:
            raise AllocationError(
                "PE %r of type %r is not programmable; cannot add modes"
                % (self.id, self.pe_type.name)
            )
        mode = Mode(len(self.modes))
        self.modes.append(mode)
        return mode

    def mode_of_cluster(self, cluster_name: str) -> int:
        """Mode index holding ``cluster_name``."""
        try:
            return self.cluster_modes[cluster_name]
        except KeyError:
            raise AllocationError(
                "cluster %r not on PE %r" % (cluster_name, self.id)
            ) from None

    def clusters(self) -> List[str]:
        """All clusters mapped to this instance (sorted)."""
        return sorted(self.cluster_modes)

    def modes_of_cluster(self, cluster_name: str) -> Tuple[int, ...]:
        """Every mode whose configuration contains the cluster:
        primary first, then replicas in ascending order."""
        primary = self.mode_of_cluster(cluster_name)
        replicas = sorted(self.replica_modes.get(cluster_name, ()))
        return (primary,) + tuple(r for r in replicas if r != primary)

    @property
    def has_replicas(self) -> bool:
        """True when any cluster is replicated across modes."""
        return any(self.replica_modes.values())

    def add_replica(
        self, cluster_name: str, mode_index: int, gates: int = 0, pins: int = 0
    ) -> None:
        """Replicate an allocated cluster's circuit into another mode."""
        primary = self.mode_of_cluster(cluster_name)
        if mode_index == primary:
            raise AllocationError(
                "cluster %r already primary in mode %d" % (cluster_name, mode_index)
            )
        existing = self.replica_modes.setdefault(cluster_name, set())
        if mode_index in existing:
            raise AllocationError(
                "cluster %r already replicated in mode %d"
                % (cluster_name, mode_index)
            )
        self.mode(mode_index).add_cluster(cluster_name, gates, pins)
        existing.add(mode_index)

    # ------------------------------------------------------------------
    def assign_cluster(
        self,
        cluster_name: str,
        mode_index: int = 0,
        gates: int = 0,
        pins: int = 0,
        memory: MemoryRequirement = MemoryRequirement(),
    ) -> None:
        """Map a cluster into a mode of this instance.

        Resource feasibility is the allocator's job (see
        :mod:`repro.alloc.capacity`); this method only does the
        bookkeeping and rejects double assignment.
        """
        if cluster_name in self.cluster_modes:
            raise AllocationError(
                "cluster %r already on PE %r" % (cluster_name, self.id)
            )
        self.mode(mode_index).add_cluster(cluster_name, gates, pins, memory)
        self.cluster_modes[cluster_name] = mode_index

    def remove_cluster(
        self,
        cluster_name: str,
        gates: int = 0,
        pins: int = 0,
        memory: MemoryRequirement = MemoryRequirement(),
    ) -> None:
        """Reverse :meth:`assign_cluster`, dropping replicas too."""
        mode_index = self.mode_of_cluster(cluster_name)
        self.mode(mode_index).remove_cluster(cluster_name, gates, pins, memory)
        del self.cluster_modes[cluster_name]
        for replica_mode in sorted(self.replica_modes.pop(cluster_name, ())):
            self.mode(replica_mode).remove_cluster(cluster_name, gates, pins)

    # ------------------------------------------------------------------
    # capacity views
    # ------------------------------------------------------------------
    @property
    def memory_demand(self) -> MemoryRequirement:
        """Total memory mapped onto this instance (processors)."""
        return self.modes[0].memory_used

    def memory_bank(self) -> Optional[MemoryBank]:
        """The DRAM bank this processor instance needs, or None.

        None is returned both for non-processors and for processors
        whose mapped tasks need no external memory.
        """
        if not isinstance(self.pe_type, ProcessorType):
            return None
        demand = self.memory_demand.total
        if demand == 0:
            return None
        bank = self.pe_type.smallest_bank_for(demand)
        if bank is None:
            raise AllocationError(
                "PE %r memory demand %d exceeds largest bank" % (self.id, demand)
            )
        return bank

    def pfus_used(self, mode_index: int) -> int:
        """PFUs consumed in a mode of a programmable instance."""
        if not isinstance(self.pe_type, PpeType):
            raise AllocationError("PE %r is not programmable" % (self.id,))
        from repro.units import GATES_PER_PFU

        return -(-self.mode(mode_index).gates_used // GATES_PER_PFU)

    def max_pfus_used(self) -> int:
        """Largest per-mode PFU usage (drives boot-image sizing)."""
        if not isinstance(self.pe_type, PpeType):
            raise AllocationError("PE %r is not programmable" % (self.id,))
        return max(self.pfus_used(m.index) for m in self.modes)

    @property
    def cost(self) -> float:
        """Dollar cost of this instance: PE type plus DRAM bank."""
        total = self.pe_type.cost
        bank = self.memory_bank()
        if bank is not None:
            total += bank.cost
        return total

    # ------------------------------------------------------------------
    def clone(self) -> "PEInstance":
        """Deep-enough copy for trial allocations.

        The immutable ``pe_type`` is shared; modes and assignments are
        copied.
        """
        duplicate = PEInstance(self.id, self.pe_type)
        duplicate.modes = [m.clone() for m in self.modes]
        duplicate.cluster_modes = dict(self.cluster_modes)
        duplicate.replica_modes = {
            name: set(modes) for name, modes in self.replica_modes.items()
        }
        return duplicate

    def __repr__(self) -> str:
        return "PEInstance(%r, %d modes, %d clusters)" % (
            self.id,
            len(self.modes),
            len(self.cluster_modes),
        )
