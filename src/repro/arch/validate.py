"""Independent architecture validation.

Cross-checks the internal consistency of an
:class:`~repro.arch.architecture.Architecture` against the clustering
it allocates: the allocation table and the per-instance bookkeeping
must agree, per-mode resource counters must equal the sum of their
residents' demands, capacity policies must hold, and every allocated
inter-cluster edge must have a connecting link.  Used by property
tests after every synthesis run.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.architecture import Architecture
from repro.cluster.clustering import ClusteringResult
from repro.delay.model import DelayPolicy
from repro.graph.spec import SystemSpec
from repro.resources.pe import AsicType, PpeType, ProcessorType
from repro.sched.validate import ValidationReport


def validate_architecture(
    arch: Architecture,
    clustering: ClusteringResult,
    spec: Optional[SystemSpec] = None,
    policy: Optional[DelayPolicy] = None,
) -> ValidationReport:
    """Check architecture invariants; returns the violation list."""
    report = ValidationReport()
    _check_allocation_table(report, arch)
    _check_mode_accounting(report, arch, clustering)
    if policy is not None:
        _check_capacities(report, arch, policy)
    if spec is not None:
        _check_connectivity(report, arch, clustering, spec)
    _check_links(report, arch)
    return report


def _check_allocation_table(report: ValidationReport, arch: Architecture) -> None:
    for cluster_name, (pe_id, mode_index) in arch.cluster_alloc.items():
        if pe_id not in arch.pes:
            report.add(
                "cluster %r allocated to missing PE %r" % (cluster_name, pe_id)
            )
            continue
        pe = arch.pe(pe_id)
        if pe.cluster_modes.get(cluster_name) != mode_index:
            report.add(
                "allocation table and PE %r disagree on cluster %r"
                % (pe_id, cluster_name)
            )
        if not 0 <= mode_index < pe.n_modes:
            report.add(
                "cluster %r points at mode %d of %d on %r"
                % (cluster_name, mode_index, pe.n_modes, pe_id)
            )
    for pe in arch.pes.values():
        for cluster_name in pe.cluster_modes:
            if arch.cluster_alloc.get(cluster_name) is None:
                report.add(
                    "PE %r holds cluster %r missing from the allocation table"
                    % (pe.id, cluster_name)
                )
        for cluster_name, replicas in pe.replica_modes.items():
            if cluster_name not in pe.cluster_modes:
                report.add(
                    "PE %r replicates unallocated cluster %r"
                    % (pe.id, cluster_name)
                )
            primary = pe.cluster_modes.get(cluster_name)
            for mode_index in replicas:
                if mode_index == primary:
                    report.add(
                        "replica of %r duplicates its primary mode" % (cluster_name,)
                    )
                if not 0 <= mode_index < pe.n_modes:
                    report.add(
                        "replica of %r points at missing mode %d"
                        % (cluster_name, mode_index)
                    )


def _check_mode_accounting(
    report: ValidationReport, arch: Architecture, clustering: ClusteringResult
) -> None:
    for pe in arch.pes.values():
        for mode in pe.modes:
            gates = 0
            pins = 0
            for cluster_name in mode.clusters:
                cluster = clustering.clusters.get(cluster_name)
                if cluster is None:
                    report.add(
                        "mode %d of %r holds unknown cluster %r"
                        % (mode.index, pe.id, cluster_name)
                    )
                    continue
                gates += cluster.area_gates
                pins += cluster.pins
                if mode.index not in pe.modes_of_cluster(cluster_name):
                    report.add(
                        "mode %d of %r lists %r but the cluster does not "
                        "claim the mode" % (mode.index, pe.id, cluster_name)
                    )
            if gates != mode.gates_used:
                report.add(
                    "mode %d of %r gate counter %d != resident sum %d"
                    % (mode.index, pe.id, mode.gates_used, gates)
                )
            if pins != mode.pins_used:
                report.add(
                    "mode %d of %r pin counter %d != resident sum %d"
                    % (mode.index, pe.id, mode.pins_used, pins)
                )


def _check_capacities(
    report: ValidationReport, arch: Architecture, policy: DelayPolicy
) -> None:
    for pe in arch.pes.values():
        pe_type = pe.pe_type
        if isinstance(pe_type, PpeType):
            for mode in pe.modes:
                if not policy.admits(pe_type, mode.gates_used, mode.pins_used):
                    report.add(
                        "mode %d of %r exceeds ERUF/EPUF caps (%d gates, %d pins)"
                        % (mode.index, pe.id, mode.gates_used, mode.pins_used)
                    )
        elif isinstance(pe_type, AsicType):
            mode = pe.mode(0)
            if mode.gates_used > pe_type.gates or mode.pins_used > pe_type.pins:
                report.add("ASIC %r over capacity" % (pe.id,))
        elif isinstance(pe_type, ProcessorType):
            demand = pe.memory_demand.total
            if demand > pe_type.max_memory_bytes and demand > 0:
                report.add("processor %r memory demand exceeds banks" % (pe.id,))


def _check_connectivity(
    report: ValidationReport,
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
) -> None:
    for graph_name in spec.graph_names():
        graph = spec.graph(graph_name)
        for (src, dst), edge in graph.edges.items():
            if edge.bytes_ == 0:
                continue
            src_cluster = clustering.task_to_cluster.get((graph_name, src))
            dst_cluster = clustering.task_to_cluster.get((graph_name, dst))
            if src_cluster is None or dst_cluster is None:
                continue
            if not (
                arch.is_allocated(src_cluster) and arch.is_allocated(dst_cluster)
            ):
                continue
            src_pe, _ = arch.placement_of(src_cluster)
            dst_pe, _ = arch.placement_of(dst_cluster)
            if src_pe == dst_pe:
                continue
            if arch.find_link_between(src_pe, dst_pe) is None:
                report.add(
                    "edge %s->%s of %r crosses unconnected PEs %r / %r"
                    % (src, dst, graph_name, src_pe, dst_pe)
                )


def _check_links(report: ValidationReport, arch: Architecture) -> None:
    for link in arch.links.values():
        if link.ports_used > link.link_type.max_ports:
            report.add("link %r exceeds its port capacity" % (link.id,))
        for pe_id in link.attached:
            if pe_id not in arch.pes:
                report.add(
                    "link %r attaches missing PE %r" % (link.id, pe_id)
                )
