"""The architecture under construction.

:class:`Architecture` is CRUSADE's mutable working state: PE and link
instances, the cluster allocation, and the reconfiguration-interface
cost once synthesized.  It supports cheap cloning because the inner
loop of co-synthesis evaluates trial allocations and keeps the best.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AllocationError
from repro.arch.link_instance import LinkInstance
from repro.arch.pe_instance import PEInstance
from repro.resources.library import ResourceLibrary
from repro.resources.link import LinkType
from repro.resources.pe import PEType


class Architecture:
    """A (partial) heterogeneous distributed architecture.

    Attributes
    ----------
    pes:
        PE instances by id.
    links:
        Link instances by id.
    cluster_alloc:
        Cluster name -> (pe instance id, mode index).
    interface_cost:
        Dollar cost of the synthesized reconfiguration controller
        interface (PROMs, programming ports, chaining wiring); set by
        :mod:`repro.reconfig.interface` after allocation.
    """

    def __init__(self, library: ResourceLibrary) -> None:
        self.library = library
        self.pes: Dict[str, PEInstance] = {}
        self.links: Dict[str, LinkInstance] = {}
        self.cluster_alloc: Dict[str, Tuple[str, int]] = {}
        self.interface_cost: float = 0.0
        self._counters: Dict[str, int] = {}
        #: Bumped on every change to link connectivity (new/removed
        #: links, port attach/detach) -- lets route caches keyed on it
        #: (see :mod:`repro.perf.fastsched`) invalidate exactly.
        self.topo_version: int = 0

    # ------------------------------------------------------------------
    # instance management
    # ------------------------------------------------------------------
    def new_pe(self, pe_type: PEType) -> PEInstance:
        """Instantiate a PE of the given type with a fresh id."""
        index = self._counters.get(pe_type.name, 0)
        self._counters[pe_type.name] = index + 1
        instance = PEInstance("%s#%d" % (pe_type.name, index), pe_type)
        self.pes[instance.id] = instance
        return instance

    def new_link(self, link_type: LinkType) -> LinkInstance:
        """Instantiate a link of the given type with a fresh id."""
        key = "link:" + link_type.name
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        instance = LinkInstance("%s#%d" % (link_type.name, index), link_type)
        self.links[instance.id] = instance
        self.topo_version += 1
        return instance

    def remove_pe(self, pe_id: str) -> None:
        """Remove an (empty) PE instance and detach it everywhere."""
        instance = self.pe(pe_id)
        if instance.cluster_modes:
            raise AllocationError(
                "cannot remove PE %r: %d clusters still allocated"
                % (pe_id, len(instance.cluster_modes))
            )
        for link in list(self.links.values()):
            if link.is_attached(pe_id):
                link.detach(pe_id)
                self.topo_version += 1
            if link.ports_used == 0:
                del self.links[link.id]
        del self.pes[pe_id]

    def pe(self, pe_id: str) -> PEInstance:
        """Look up a PE instance."""
        try:
            return self.pes[pe_id]
        except KeyError:
            raise AllocationError("no PE instance %r" % (pe_id,)) from None

    def link(self, link_id: str) -> LinkInstance:
        """Look up a link instance."""
        try:
            return self.links[link_id]
        except KeyError:
            raise AllocationError("no link instance %r" % (link_id,)) from None

    # ------------------------------------------------------------------
    # allocation bookkeeping
    # ------------------------------------------------------------------
    def allocate_cluster(
        self,
        cluster_name: str,
        pe_id: str,
        mode_index: int = 0,
        gates: int = 0,
        pins: int = 0,
        memory=None,
    ) -> None:
        """Record a cluster's placement on a PE instance/mode."""
        from repro.graph.task import MemoryRequirement

        if memory is None:
            memory = MemoryRequirement()
        if cluster_name in self.cluster_alloc:
            raise AllocationError("cluster %r already allocated" % (cluster_name,))
        self.pe(pe_id).assign_cluster(cluster_name, mode_index, gates, pins, memory)
        self.cluster_alloc[cluster_name] = (pe_id, mode_index)

    def deallocate_cluster(
        self,
        cluster_name: str,
        gates: int = 0,
        pins: int = 0,
        memory=None,
    ) -> Tuple[str, int]:
        """Remove a cluster's placement; returns the old (pe, mode).

        The caller supplies the same resource figures used at
        allocation time so the mode counters roll back exactly.
        """
        from repro.graph.task import MemoryRequirement

        if memory is None:
            memory = MemoryRequirement()
        pe_id, mode_index = self.placement_of(cluster_name)
        self.pe(pe_id).remove_cluster(cluster_name, gates, pins, memory)
        del self.cluster_alloc[cluster_name]
        return pe_id, mode_index

    def compact_pe_modes(self, pe_id: str) -> None:
        """Drop empty modes of a programmable PE and renumber.

        Keeps at least one mode.  Updates the allocation table so
        cluster placements keep pointing at the right mode.
        """
        pe = self.pe(pe_id)
        keep = [m for m in pe.modes if not m.empty]
        if not keep:
            keep = [pe.modes[0]]
        remap = {}
        for new_index, mode in enumerate(keep):
            remap[mode.index] = new_index
            mode.index = new_index
        pe.modes = keep
        for cluster_name, old_index in list(pe.cluster_modes.items()):
            new_index = remap[old_index]
            pe.cluster_modes[cluster_name] = new_index
            self.cluster_alloc[cluster_name] = (pe_id, new_index)
        pe.replica_modes = {
            name: {remap[m] for m in modes if m in remap}
            for name, modes in pe.replica_modes.items()
        }
        pe.replica_modes = {
            name: modes for name, modes in pe.replica_modes.items() if modes
        }

    def placement_of(self, cluster_name: str) -> Tuple[str, int]:
        """(pe id, mode index) of an allocated cluster."""
        try:
            return self.cluster_alloc[cluster_name]
        except KeyError:
            raise AllocationError(
                "cluster %r not allocated" % (cluster_name,)
            ) from None

    def is_allocated(self, cluster_name: str) -> bool:
        """True when the cluster has a placement."""
        return cluster_name in self.cluster_alloc

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def find_link_between(self, pe_a: str, pe_b: str) -> Optional[LinkInstance]:
        """An existing link instance connecting both PEs, or None.

        When several exist the one with the fewest ports (fastest
        access) is returned, ties broken by id for determinism.
        """
        candidates = [l for l in self.links.values() if l.connects(pe_a, pe_b)]
        if not candidates:
            return None
        candidates.sort(key=lambda l: (l.ports_used, l.id))
        return candidates[0]

    def connect(
        self,
        pe_a: str,
        pe_b: str,
        link_type: LinkType,
        journal: Optional[list] = None,
    ) -> LinkInstance:
        """Ensure a link of ``link_type`` connects the two PEs.

        Preference order: an existing instance already connecting both;
        an existing instance of the type attached to one endpoint with
        a free port; a fresh instance.  Returns the link used.

        ``journal`` (see :mod:`repro.perf.cow`) records the mutations
        performed so a trial connection can be reverted exactly.
        """
        existing = self.find_link_between(pe_a, pe_b)
        if existing is not None:
            return existing
        # Extend an instance of the requested type touching one side.
        extendable = [
            l
            for l in self.links.values()
            if l.link_type.name == link_type.name
            and (l.is_attached(pe_a) != l.is_attached(pe_b))
            and l.ports_free >= 1
        ]
        extendable.sort(key=lambda l: (l.ports_used, l.id))
        if extendable:
            link = extendable[0]
            missing = pe_b if link.is_attached(pe_a) else pe_a
            link.attach(missing)
            self.topo_version += 1
            if journal is not None:
                journal.append(("attach", link.id, missing))
            return link
        had_counter = ("link:" + link_type.name) in self._counters
        link = self.new_link(link_type)
        link.attach(pe_a)
        link.attach(pe_b)
        self.topo_version += 1
        if journal is not None:
            journal.append(("new_link", link.id, link_type.name, had_counter))
        return link

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def n_pes(self) -> int:
        """Number of PE instances."""
        return len(self.pes)

    @property
    def n_links(self) -> int:
        """Number of link instances."""
        return len(self.links)

    @property
    def cost(self) -> float:
        """Total dollar cost: PEs (+DRAM), links, interface."""
        total = sum(p.cost for p in self.pes.values())
        total += sum(l.cost for l in self.links.values())
        total += self.interface_cost
        return total

    def programmable_pes(self) -> List[PEInstance]:
        """Programmable PE instances, sorted by id."""
        return sorted(
            (p for p in self.pes.values() if p.is_programmable),
            key=lambda p: p.id,
        )

    def merge_potential(self) -> int:
        """The paper's merge potential: #PPEs + #links (Section 4.1).

        A decreasing merge potential indicates the reconfiguration
        merge loop is making the architecture smaller.
        """
        return len(self.programmable_pes()) + len(self.links)

    def total_modes(self) -> int:
        """Total configuration modes across programmable instances."""
        return sum(p.n_modes for p in self.programmable_pes())

    # ------------------------------------------------------------------
    def clone(self) -> "Architecture":
        """Independent copy for trial allocations.

        The resource library and the immutable PE/link types are
        shared; instances and allocation tables are copied.
        """
        duplicate = Architecture(self.library)
        duplicate.pes = {pid: p.clone() for pid, p in self.pes.items()}
        duplicate.links = {lid: l.clone() for lid, l in self.links.items()}
        duplicate.cluster_alloc = dict(self.cluster_alloc)
        duplicate.interface_cost = self.interface_cost
        duplicate._counters = dict(self._counters)
        duplicate.topo_version = self.topo_version
        return duplicate

    def summary(self) -> str:
        """One-line human-readable summary."""
        return "%d PEs, %d links, %d modes, cost $%.0f" % (
            self.n_pes,
            self.n_links,
            self.total_modes(),
            self.cost,
        )

    def __repr__(self) -> str:
        return "Architecture(%s)" % (self.summary(),)
