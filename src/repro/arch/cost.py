"""Cost accounting and reporting for architectures.

The system cost is the summation of the costs of the constituent PEs
and links (Section 7), plus DRAM banks attached to processors and the
synthesized reconfiguration interface.  :func:`cost_breakdown` gives a
per-category view used by the reports and the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.architecture import Architecture


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar cost split by category."""

    processors: float
    asics: float
    ppes: float
    memory: float
    links: float
    interface: float

    @property
    def total(self) -> float:
        """Grand total across all categories."""
        return (
            self.processors
            + self.asics
            + self.ppes
            + self.memory
            + self.links
            + self.interface
        )

    def as_dict(self) -> Dict[str, float]:
        """Mapping view for tabular rendering."""
        return {
            "processors": self.processors,
            "asics": self.asics,
            "ppes": self.ppes,
            "memory": self.memory,
            "links": self.links,
            "interface": self.interface,
            "total": self.total,
        }


def architecture_cost(arch: Architecture) -> float:
    """Total dollar cost of an architecture (convenience wrapper)."""
    return arch.cost


def cost_breakdown(arch: Architecture) -> CostBreakdown:
    """Split an architecture's cost into reporting categories."""
    processors = 0.0
    asics = 0.0
    ppes = 0.0
    memory = 0.0
    for pe in arch.pes.values():
        if pe.is_programmable:
            ppes += pe.pe_type.cost
        elif pe.is_processor:
            processors += pe.pe_type.cost
            bank = pe.memory_bank()
            if bank is not None:
                memory += bank.cost
        else:
            asics += pe.pe_type.cost
    links = sum(l.cost for l in arch.links.values())
    return CostBreakdown(
        processors=processors,
        asics=asics,
        ppes=ppes,
        memory=memory,
        links=links,
        interface=arch.interface_cost,
    )
