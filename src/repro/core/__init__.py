"""Top-level co-synthesis drivers.

:func:`repro.core.crusade.crusade` implements the full Figure 5 flow
(pre-processing, synthesis, dynamic-reconfiguration generation);
:func:`repro.core.crusade_ft.crusade_ft` wraps it with the Section 6
fault-tolerance extension.
"""

from repro.core.config import CrusadeConfig
from repro.core.report import CoSynthesisResult, render_architecture
from repro.core.crusade import crusade
from repro.core.crusade_ft import FtConfig, crusade_ft

__all__ = [
    "CrusadeConfig",
    "CoSynthesisResult",
    "render_architecture",
    "crusade",
    "FtConfig",
    "crusade_ft",
]
