"""Finalize stage: package the winning verdict as the public result.

Runs unphased (``phase_name`` is ``None``): it snapshots the tracer's
timers into the result's stats, which must not happen inside an open
phase window.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.report import CoSynthesisResult
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext


class Finalize(Stage):
    """Build the :class:`~repro.core.report.CoSynthesisResult`."""

    name = "finalize"

    @property
    def phase_name(self) -> Optional[str]:
        """Unphased: this stage snapshots the phase timers itself."""
        return None

    def run(self, ctx: SynthesisContext) -> None:
        """Assemble ``ctx.result`` (and its stats when tracing)."""
        # Feasibility is judged on the architecture actually returned:
        # the allocation phase may have dead-ended
        # (allocation_feasible False) and still been rescued by repair
        # or by the baseline-seeded merge route.
        feasible = ctx.best.report.all_met
        cpu_seconds = time.perf_counter() - ctx.started
        ctx.result = CoSynthesisResult(
            spec=ctx.spec,
            arch=ctx.best.arch,
            schedule=ctx.best.schedule,
            report=ctx.best.report,
            clustering=ctx.clustering,
            interface=ctx.interface,
            feasible=feasible,
            cpu_seconds=cpu_seconds,
            reconfiguration_enabled=ctx.config.reconfiguration,
            merge_stats=ctx.merge_stats,
            warnings=ctx.warnings,
        )
        if ctx.tracer.enabled:
            ctx.tracer.event(
                "synthesis.done", system=ctx.spec.name, feasible=feasible,
                cost=ctx.best.arch.cost,
            )
            ctx.result.stats = ctx.tracer.stats(total_seconds=cpu_seconds)
            if ctx.engine is not None:
                # Engine cache gauges, set on the snapshot (not incr'd
                # through the tracer) so the nested baseline's earlier
                # finalize cannot double-count them.
                for name, value in ctx.engine.cache_info().items():
                    ctx.result.stats.counters["perf.cache." + name] = value
