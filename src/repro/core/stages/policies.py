"""The policy-hook surface of the staged synthesis pipeline.

A :class:`SynthesisPolicy` bundles the three heuristic decision points
the paper leaves open to variation, so ablation variants and new
scheduling policies are one-line registrations instead of driver
edits:

``cluster_order``
    The order clusters are allocated in (the paper uses decreasing
    priority; Section 5).
``candidate_order``
    A re-ordering of each cluster's allocation array before scoring
    (the array arrives cheapest-first; the first feasible candidate
    wins, so preference *is* the ordering).
``accept_merge``
    The Figure 3 merge acceptance rule.  ``None`` keeps the paper's
    rule -- feasible and strictly cost-decreasing -- which is also the
    rule the admissible dollar-cost merge prune assumes; a custom rule
    disables that prune cut (see
    :func:`repro.reconfig.merge.merge_reconfigurable_pes`).

Policies are named and registered in :data:`POLICIES`;
``CrusadeConfig.policy`` selects one by name, which makes a policy a
campaign-grid axis: ``repro.campaign.grid.VARIANT_PRESETS`` expresses
the ``largest-first`` preset purely through this surface.

Only the ``default`` policy carries the byte-identity guarantee
against the pre-stage monolithic driver; alternative policies explore
different (still valid) points of the heuristic's search space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.cluster.clustering import Cluster, ClusteringResult
from repro.errors import SpecificationError


def _priority_order(clustering: ClusteringResult) -> List[Cluster]:
    """The paper's allocation order: decreasing priority, name ties."""
    return clustering.ordered_by_priority()


def _largest_first_order(clustering: ClusteringResult) -> List[Cluster]:
    """Biggest clusters first (size, then priority, then name).

    Placing bulky clusters while the architecture is still cheap to
    reshape is a classic bin-packing ordering; kept as a registered
    ablation policy.
    """
    return sorted(
        clustering.clusters.values(),
        key=lambda c: (-c.size, -c.priority, c.name),
    )


def _array_order(
    options: List, cluster: Cluster
) -> List:
    """The allocation array's own order (cheapest first) -- identity."""
    return options


def _reuse_first_order(options: List, cluster: Cluster) -> List:
    """Prefer placements on already-purchased hardware.

    Options that add no new PE instance are tried before options that
    buy one, each group keeping its cheapest-first internal order
    (``sorted`` is stable).
    """
    from repro.alloc.array import AllocationKind

    return sorted(
        options, key=lambda o: o.kind is AllocationKind.NEW_PE
    )


@dataclass(frozen=True)
class SynthesisPolicy:
    """One named bundle of pipeline decision hooks."""

    name: str
    #: ``ClusteringResult -> [Cluster]``: allocation order.
    cluster_order: Callable[[ClusteringResult], List[Cluster]] = (
        _priority_order
    )
    #: ``(options, cluster) -> options``: candidate preference.
    candidate_order: Callable[[List, Cluster], List] = _array_order
    #: ``(verdict, incumbent) -> bool`` merge acceptance, or ``None``
    #: for the paper's feasible-and-cheaper rule.
    accept_merge: Optional[Callable] = None


#: Registered policies by name (``CrusadeConfig.policy`` values).
POLICIES: Dict[str, SynthesisPolicy] = {}


def register_policy(policy: SynthesisPolicy) -> SynthesisPolicy:
    """Register ``policy`` under its name (later wins); returns it."""
    POLICIES[policy.name] = policy
    return policy


def resolve_policy(
    policy: Union[str, SynthesisPolicy, None]
) -> SynthesisPolicy:
    """A policy object for a name, a policy, or ``None`` (default)."""
    if policy is None:
        return POLICIES["default"]
    if isinstance(policy, SynthesisPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise SpecificationError(
            "unknown synthesis policy %r (registered: %s)"
            % (policy, ", ".join(sorted(POLICIES)))
        ) from None


register_policy(SynthesisPolicy(name="default"))
register_policy(
    SynthesisPolicy(name="largest-first", cluster_order=_largest_first_order)
)
register_policy(
    SynthesisPolicy(name="reuse-first", candidate_order=_reuse_first_order)
)
