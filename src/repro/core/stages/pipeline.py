"""The canonical stage sequence and the pipeline entry point.

``crusade()`` is a thin wrapper over :func:`synthesize`; CRUSADE-FT
and the campaign runner go through ``crusade()`` unchanged.  This
module exists (separately from the stage modules) so stages that
re-enter the pipeline -- :class:`~repro.core.stages.modemerge.
ModeMerge` synthesizes the route (b) baseline -- can import it lazily
without a cycle.
"""

from __future__ import annotations

from typing import List

from repro.core.report import CoSynthesisResult
from repro.core.stages.base import Stage, run_stages
from repro.core.stages.context import SynthesisContext
from repro.core.stages.preprocess import Preprocess
from repro.core.stages.clustering import Clustering
from repro.core.stages.allocation import Allocation
from repro.core.stages.fullcheck import FullCheck
from repro.core.stages.repair import Repair
from repro.core.stages.modemerge import ModeMerge
from repro.core.stages.interface import InterfaceSynthesis
from repro.core.stages.finalize import Finalize


def default_stages() -> List[Stage]:
    """The CRUSADE pipeline, in execution order (Figure 5)."""
    return [
        Preprocess(),
        Clustering(),
        Allocation(),
        FullCheck(),
        Repair(),
        ModeMerge(),
        InterfaceSynthesis(),
        Finalize(),
    ]


def synthesize(ctx: SynthesisContext) -> CoSynthesisResult:
    """Run the default pipeline over ``ctx`` and return its result."""
    run_stages(ctx, default_stages())
    return ctx.result
