"""Interface-synthesis stage (Section 4.4: the controller interface).

Runs only when no merge route already produced an interface plan:
either reconfiguration is off, or merging never accepted a route.  The
final architecture still needs its reconfiguration controller
interface, with the boot-time requirement tightened until the schedule
absorbs the chosen boot times.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.reconfig.interface import synthesize_interface
from repro.alloc.evaluate import evaluate_architecture


class InterfaceSynthesis(Stage):
    """Synthesize the reconfiguration controller interface."""

    name = "interface"

    def should_run(self, ctx: SynthesisContext) -> bool:
        """Only when no merge route already delivered a plan."""
        return ctx.interface is None

    def run(self, ctx: SynthesisContext) -> None:
        """Synthesize a plan, halving the requirement until it fits."""
        requirement = ctx.spec.boot_time_requirement
        for _ in range(ctx.config.interface_retries + 1):
            try:
                plan = synthesize_interface(ctx.arch, requirement)
            except SynthesisError:
                break
            verdict = evaluate_architecture(
                ctx.spec,
                ctx.assoc,
                ctx.clustering,
                ctx.arch,
                ctx.priorities,
                boot_time_fn=plan.boot_time_fn(),
                preemption=ctx.config.preemption,
                tracer=ctx.tracer,
                engine=ctx.engine,
            )
            if verdict.feasible or not ctx.full.feasible:
                ctx.best = verdict
                ctx.interface = plan
                break
            requirement /= 2.0
