"""Allocation stage (Section 5, step 2: the synthesis inner loop).

Clusters are allocated in policy order.  For each cluster an
allocation array of candidate placements is built (cheapest first,
re-ordered by the policy's candidate preference) and scored by one of
three interchangeable paths -- the serial clone path, the
copy-on-write engine path, or the process-pool path -- all feeding the
same :class:`CandidateSelection` core, so the first-feasible /
least-infeasible choice is byte-identical regardless of path.  The
winning candidate is committed and priorities are recomputed with the
new allocation.

When no candidate is feasible the least-infeasible one is kept
(heuristics can fail; the final result is flagged infeasible), with
pruned candidates reconstructed best-bound-first so dominance pruning
never changes the choice.
"""

from __future__ import annotations

import logging
from dataclasses import replace
from typing import List, Optional, Set, Tuple

from repro.errors import AllocationError, SynthesisError
from repro.arch.architecture import Architecture
from repro.cluster.clustering import Cluster
from repro.cluster.priority import recompute_priorities
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
    coupled_graphs,
)
from repro.perf.prune import CandidatePruner, bound_abort_active, pruning_active
from repro.sched.scheduler import ScheduleAbort
from repro.alloc.array import build_allocation_array
from repro.alloc.evaluate import (
    EvalResult,
    apply_option,
    apply_option_cow,
    evaluate_architecture,
)

_log = logging.getLogger("repro.crusade")


class CandidateSelection:
    """First-feasible / least-infeasible bookkeeping for one cluster.

    The serial loop's strict improvement rule is the argmin of
    ``(badness, seq)``, where ``seq`` numbers candidates in
    consideration order across strategies; tracking the key explicitly
    lets pruned candidates (which carry admissible badness *floors*)
    and the pool path (which ships verdict summaries, not
    architectures) reconstruct the identical choice.
    """

    def __init__(self) -> None:
        """Start with nothing chosen and nothing to fall back on."""
        self.chosen: Optional[EvalResult] = None
        self.chosen_touched: Optional[Set[str]] = None
        #: Whether the final choice came from the fallback path.
        self.from_fallback: bool = False
        self.fallback: Optional[EvalResult] = None
        self.fallback_key: Optional[tuple] = None
        #: Unevaluated ``(option, strategy)`` incumbent (pool path).
        self.fallback_lazy: Optional[tuple] = None
        #: Deferred ``(floor, seq, option, strategy)`` pruned entries.
        self.pruned: List[tuple] = []
        self.seq = 0

    @property
    def done(self) -> bool:
        """Whether a feasible candidate has been chosen."""
        return self.chosen is not None

    def advance(self) -> int:
        """Number the next considered candidate; returns its seq."""
        self.seq += 1
        return self.seq

    def choose(
        self, verdict: Optional[EvalResult], touched: Optional[Set[str]] = None
    ) -> None:
        """Record the winning feasible candidate's verdict."""
        self.chosen = verdict
        self.chosen_touched = touched

    def defer_pruned(self, floor: tuple, option, strategy) -> None:
        """Park a pruned candidate for possible fallback evaluation."""
        self.pruned.append((floor, self.seq, option, strategy))

    def offer(self, badness: tuple, make_verdict=None, lazy=None) -> None:
        """Offer an infeasible candidate at the current seq.

        Keeps the argmin of ``(badness, seq)``.  ``make_verdict`` is
        called only when the offer improves (the copy-on-write path
        clones the applied architecture lazily); ``lazy`` instead
        defers evaluation entirely (the pool path re-scores the
        incumbent locally once, at the end).
        """
        key = (badness, self.seq)
        if self.fallback_key is None or key < self.fallback_key:
            self.fallback_key = key
            self.fallback = make_verdict() if make_verdict is not None else None
            self.fallback_lazy = lazy


class Allocation(Stage):
    """Place every cluster, cheapest feasible candidate first."""

    name = "allocation"

    def run(self, ctx: SynthesisContext) -> None:
        """Allocate all clusters in policy order."""
        ctx.arch = Architecture(ctx.library)
        ctx.priorities = compute_priorities(ctx.spec, ctx.pessimistic)
        ctx.fast = ctx.config.use_fast_inner_loop(ctx.spec.total_tasks)
        ctx.prune_on = pruning_active(ctx.config)
        ctx.bound_abort_on = bound_abort_active(ctx.config)
        ctx.allocation_feasible = True
        # Allocation-aware priorities reuse previous values for graphs
        # the placement cannot have perturbed -- but only once the
        # previous values were themselves allocation-aware (the
        # pessimistic pre-allocation levels price intra-cluster edges
        # differently).
        ctx.allocation_aware = False
        with ctx.allocation_scorer() as scorer:
            for cluster in ctx.policy.cluster_order(ctx.clustering):
                ctx.tracer.incr("alloc.clusters")
                selection = self.allocate_cluster(ctx, scorer, cluster)
                self.commit(ctx, cluster, selection)

    # -- candidate generation ------------------------------------------
    def candidate_options(
        self, ctx: SynthesisContext, cluster: Cluster
    ) -> List:
        """The cluster's allocation array, in policy preference order."""
        options = build_allocation_array(
            cluster,
            ctx.arch,
            ctx.clustering,
            ctx.spec,
            ctx.config.delay_policy,
            compat=ctx.compat,
            max_existing_options=ctx.config.max_existing_options,
            allow_new_modes=ctx.config.reconfiguration,
            tracer=ctx.tracer,
        )
        return ctx.policy.candidate_order(options, cluster)

    # -- scoring -------------------------------------------------------
    def allocate_cluster(
        self, ctx: SynthesisContext, scorer, cluster: Cluster
    ) -> CandidateSelection:
        """Score candidates strategy by strategy until one is chosen."""
        selection = CandidateSelection()
        pruner = (
            CandidatePruner(ctx.spec, ctx.assoc, ctx.clustering, cluster)
            if ctx.prune_on
            else None
        )
        gen_token: Optional[int] = None
        for strategy in ctx.config.link_strategies:
            options = self.candidate_options(ctx, cluster)
            if not options:
                continue
            if scorer is not None and scorer.worth_pool(len(options)):
                gen_token = self.score_with_pool(
                    ctx, scorer, cluster, options, strategy, selection,
                    gen_token,
                )
            elif ctx.engine is not None:
                self.score_cow(ctx, cluster, options, strategy, selection,
                               pruner)
            else:
                self.score_serial(ctx, cluster, options, strategy, selection,
                                  pruner)
            if selection.done:
                break
        self.resolve_fallback(ctx, cluster, selection)
        return selection

    @staticmethod
    def incumbent_bound(
        ctx: SynthesisContext, selection: CandidateSelection
    ) -> Optional[tuple]:
        """The badness tuple in-flight evaluations may abort against.

        The current least-infeasible incumbent: an aborted candidate
        provably exceeds its violation count, so it can neither be
        feasible nor win the ``(badness, seq)`` argmin -- dropping it
        changes nothing (see :class:`~repro.sched.scheduler.
        ScheduleAbort`).  None disables aborting.
        """
        if ctx.bound_abort_on and selection.fallback_key is not None:
            return selection.fallback_key[0]
        return None

    @staticmethod
    def count_abort(ctx: SynthesisContext, reason: str) -> None:
        """Book one aborted evaluation under its per-reason counter."""
        ctx.tracer.incr("sched.abort")
        ctx.tracer.incr("sched.abort." + reason)

    def evaluate_candidate(
        self, ctx: SynthesisContext, cluster: Cluster, option, strategy
    ) -> Optional[EvalResult]:
        """Evaluate one candidate locally on a cloned architecture."""
        trial = ctx.arch.clone()
        try:
            apply_option(
                option, trial, cluster, ctx.clustering, ctx.spec, strategy
            )
        except AllocationError:
            return None
        graphs = (
            coupled_graphs(trial, ctx.clustering, cluster.graph)
            if ctx.fast
            else None
        )
        return evaluate_architecture(
            ctx.spec,
            ctx.assoc,
            ctx.clustering,
            trial,
            ctx.priorities,
            preemption=ctx.config.preemption,
            graphs=graphs,
            tracer=ctx.tracer,
            engine=ctx.engine,
        )

    def score_with_pool(
        self,
        ctx: SynthesisContext,
        scorer,
        cluster: Cluster,
        options: List,
        strategy: str,
        selection: CandidateSelection,
        gen_token: Optional[int],
    ) -> int:
        """Score options on the worker pool (one generation/cluster).

        Decision counters are incremented on the consuming side, in
        index order, exactly like the serial paths; records past the
        first feasible one (same wave) are drained without counting,
        matching the documented deterministic evaluation-counter
        overshoot.
        """
        if gen_token is None:
            gen_token = scorer.begin_cluster({
                "spec": ctx.spec,
                "assoc": ctx.assoc,
                "clustering": ctx.clustering,
                "arch": ctx.arch,
                "cluster": cluster,
                "priorities": ctx.priorities,
                "preemption": ctx.config.preemption,
                "fast": ctx.fast,
                "prune": ctx.prune_on,
                "bound_abort": ctx.bound_abort_on,
            })
        records = scorer.score(
            gen_token, options, strategy, ctx.tracer,
            bound=self.incumbent_bound(ctx, selection),
        )
        for offset, record in enumerate(records):
            kind, badness, floor, reason = record
            option = options[offset]
            ctx.tracer.incr("alloc.options.considered")
            selection.advance()
            if kind == "apply_failed":
                ctx.tracer.incr("alloc.options.apply_failed")
                continue
            if kind == "pruned":
                ctx.tracer.incr("prune.cut")
                ctx.tracer.incr("prune.cut." + reason)
                selection.defer_pruned(tuple(floor), option, strategy)
                continue
            if ctx.prune_on:
                ctx.tracer.incr("prune.kept")
            if kind == "aborted":
                # Worker-side bound abort: provably loses to an
                # earlier-seq incumbent, dropped like the serial path.
                self.count_abort(ctx, reason)
                continue
            if kind == "feasible":
                # Workers ship verdict summaries, not schedules;
                # materialize the winner locally.
                selection.choose(
                    self.evaluate_candidate(ctx, cluster, option, strategy)
                )
                break
            ctx.tracer.incr("alloc.options.infeasible")
            selection.offer(tuple(badness), lazy=(option, strategy))
        return gen_token

    def score_cow(
        self,
        ctx: SynthesisContext,
        cluster: Cluster,
        options: List,
        strategy: str,
        selection: CandidateSelection,
        pruner: Optional[CandidatePruner],
    ) -> None:
        """Score options as copy-on-write overlays on the working
        architecture, reverting each unless it wins."""
        for option in options:
            ctx.tracer.incr("alloc.options.considered")
            selection.advance()
            try:
                handle = apply_option_cow(
                    option, ctx.arch, cluster, ctx.clustering, ctx.spec,
                    strategy,
                )
            except AllocationError:
                ctx.tracer.incr("alloc.options.apply_failed")
                continue
            ctx.tracer.incr("perf.cow.applies")
            keep = False
            try:
                graphs = (
                    coupled_graphs(ctx.arch, ctx.clustering, cluster.graph)
                    if ctx.fast
                    else None
                )
                if pruner is not None:
                    cut = pruner.bound(ctx.arch, option, graphs, ctx.tracer)
                    if cut is not None:
                        ctx.tracer.incr("prune.cut")
                        ctx.tracer.incr("prune.cut." + cut.reason)
                        selection.defer_pruned(cut.floor, option, strategy)
                        continue
                    ctx.tracer.incr("prune.kept")
                try:
                    verdict = evaluate_architecture(
                        ctx.spec,
                        ctx.assoc,
                        ctx.clustering,
                        ctx.arch,
                        ctx.priorities,
                        preemption=ctx.config.preemption,
                        graphs=graphs,
                        tracer=ctx.tracer,
                        engine=ctx.engine,
                        bound=self.incumbent_bound(ctx, selection),
                    )
                except ScheduleAbort as abort:
                    # The finally block reverts the overlay (keep is
                    # still False); the candidate is simply dropped.
                    self.count_abort(ctx, abort.reason)
                    continue
                if verdict.feasible:
                    selection.choose(verdict, touched=handle.touched_pes)
                    keep = True
                else:
                    ctx.tracer.incr("alloc.options.infeasible")
                    selection.offer(
                        verdict.badness(),
                        make_verdict=lambda: replace(
                            verdict, arch=ctx.arch.clone()
                        ),
                    )
            finally:
                if keep:
                    ctx.tracer.incr("perf.cow.commits")
                else:
                    handle.revert()
                    ctx.tracer.incr("perf.cow.reverts")
            if selection.done:
                break

    def score_serial(
        self,
        ctx: SynthesisContext,
        cluster: Cluster,
        options: List,
        strategy: str,
        selection: CandidateSelection,
        pruner: Optional[CandidatePruner],
    ) -> None:
        """Score options serially, each on its own cloned architecture."""
        for option in options:
            ctx.tracer.incr("alloc.options.considered")
            selection.advance()
            trial = ctx.arch.clone()
            try:
                apply_option(
                    option, trial, cluster, ctx.clustering, ctx.spec, strategy
                )
            except AllocationError:
                ctx.tracer.incr("alloc.options.apply_failed")
                continue
            # Coupled graphs are computed on the *trial* so the
            # placement's new resource sharing is verified too.
            graphs = (
                coupled_graphs(trial, ctx.clustering, cluster.graph)
                if ctx.fast
                else None
            )
            if pruner is not None:
                cut = pruner.bound(trial, option, graphs, ctx.tracer)
                if cut is not None:
                    ctx.tracer.incr("prune.cut")
                    ctx.tracer.incr("prune.cut." + cut.reason)
                    selection.defer_pruned(cut.floor, option, strategy)
                    continue
                ctx.tracer.incr("prune.kept")
            try:
                verdict = evaluate_architecture(
                    ctx.spec,
                    ctx.assoc,
                    ctx.clustering,
                    trial,
                    ctx.priorities,
                    preemption=ctx.config.preemption,
                    graphs=graphs,
                    tracer=ctx.tracer,
                    bound=self.incumbent_bound(ctx, selection),
                )
            except ScheduleAbort as abort:
                self.count_abort(ctx, abort.reason)
                continue
            if verdict.feasible:
                selection.choose(verdict)
                break
            ctx.tracer.incr("alloc.options.infeasible")
            selection.offer(verdict.badness(), make_verdict=lambda: verdict)

    # -- fallback resolution -------------------------------------------
    def resolve_fallback(
        self,
        ctx: SynthesisContext,
        cluster: Cluster,
        selection: CandidateSelection,
    ) -> None:
        """Settle the least-infeasible choice when nothing was feasible.

        Pruned candidates are provably infeasible but may still be the
        least-infeasible fallback; their floors are admissible badness
        lower bounds, so evaluating them best-bound-first and skipping
        any whose ``(floor, seq)`` cannot beat the incumbent
        ``(badness, seq)`` yields the exhaustive loop's exact choice.
        """
        if selection.chosen is None and selection.pruned:
            selection.pruned.sort(key=lambda item: (item[0], item[1]))
            for floor, pseq, option, pstrategy in selection.pruned:
                if selection.fallback_key is not None and (
                    (tuple(floor), pseq) >= selection.fallback_key
                ):
                    ctx.tracer.incr("prune.fallback_skipped")
                    continue
                ctx.tracer.incr("prune.fallback_evals")
                verdict = self.evaluate_candidate(
                    ctx, cluster, option, pstrategy
                )
                if verdict is None:
                    continue
                key = (verdict.badness(), pseq)
                if selection.fallback_key is None or key < selection.fallback_key:
                    selection.fallback = verdict
                    selection.fallback_key = key
                    selection.fallback_lazy = None
        if (
            selection.chosen is None
            and selection.fallback is None
            and selection.fallback_lazy is not None
        ):
            # Pool path: the incumbent was tracked lazily; build its
            # full verdict now.
            selection.fallback = self.evaluate_candidate(
                ctx, cluster, *selection.fallback_lazy
            )
        if selection.chosen is None:
            if selection.fallback is None:
                raise SynthesisError(
                    "no allocation option exists for cluster %r"
                    % (cluster.name,)
                )
            selection.chosen = selection.fallback
            selection.chosen_touched = None
            selection.from_fallback = True
            ctx.allocation_feasible = False
            ctx.tracer.incr("alloc.clusters.fallback")
            _log.debug(
                "cluster %s: NO feasible option, kept least-infeasible",
                cluster.name,
            )

    # -- commit --------------------------------------------------------
    def commit(
        self,
        ctx: SynthesisContext,
        cluster: Cluster,
        selection: CandidateSelection,
    ) -> None:
        """Adopt the chosen architecture and refresh priority levels."""
        ctx.arch = selection.chosen.arch
        placement = ctx.arch.placement_of(cluster.name)
        ctx.tracer.event(
            "cluster.placed",
            cluster=cluster.name,
            graph=cluster.graph,
            pe=placement[0],
            mode=placement[1],
            feasible=not selection.from_fallback,
        )
        _log.debug(
            "cluster %s (graph %s, %d gates, %d pins) -> %s mode %d",
            cluster.name,
            cluster.graph,
            cluster.area_gates,
            cluster.pins,
            placement[0],
            placement[1],
        )
        context = allocation_aware_context(ctx.library, ctx.arch,
                                           ctx.clustering)
        if (
            ctx.engine is not None
            and ctx.allocation_aware
            and selection.chosen_touched is not None
        ):
            dirty = {cluster.graph}
            for name, (pe_id, _) in ctx.arch.cluster_alloc.items():
                if pe_id in selection.chosen_touched:
                    dirty.add(ctx.clustering.clusters[name].graph)
            ctx.priorities = recompute_priorities(
                ctx.spec, context, ctx.priorities, dirty, ctx.tracer
            )
        else:
            ctx.priorities = compute_priorities(ctx.spec, context)
        ctx.allocation_aware = True
