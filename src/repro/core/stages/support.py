"""Shared helpers used by several synthesis stages.

These were private closures/helpers of the old monolithic driver;
they are stage-neutral (priority estimation and graph coupling) and
are imported by the allocation, repair and merge stages as well as by
the process-pool workers (:mod:`repro.perf.procpool`).  The historic
private names (``_compute_priorities`` and friends) remain importable
from :mod:`repro.core.crusade` for backward compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.arch.architecture import Architecture
from repro.cluster.clustering import ClusteringResult
from repro.cluster.priority import PriorityContext, compute_task_priorities
from repro.graph.spec import SystemSpec
from repro.resources.library import ResourceLibrary


def allocation_aware_context(
    library: ResourceLibrary,
    arch: Architecture,
    clustering: ClusteringResult,
) -> PriorityContext:
    """Priority estimators reflecting the current partial allocation.

    Allocated tasks use their placement's actual execution time;
    intra-cluster and same-PE edges cost zero; other edges fall back
    to the pessimistic library maximum (Section 5: priority levels are
    recomputed after each allocation and clustering step).
    """
    pessimistic = PriorityContext.pessimistic(library)

    def exec_time(graph, task):
        """Placement-aware execution time for one task."""
        key = (graph.name, task.name)
        cluster_name = clustering.task_to_cluster.get(key)
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe_id, _ = arch.placement_of(cluster_name)
            return task.wcet_on(arch.pe(pe_id).pe_type.name)
        return pessimistic.exec_time(graph, task)

    def comm_time(graph, edge):
        """Placement-aware communication time for one edge."""
        src_cluster = clustering.task_to_cluster.get((graph.name, edge.src))
        dst_cluster = clustering.task_to_cluster.get((graph.name, edge.dst))
        if src_cluster is not None and src_cluster == dst_cluster:
            return 0.0
        if (
            src_cluster is not None
            and dst_cluster is not None
            and arch.is_allocated(src_cluster)
            and arch.is_allocated(dst_cluster)
        ):
            src_pe, _ = arch.placement_of(src_cluster)
            dst_pe, _ = arch.placement_of(dst_cluster)
            if src_pe == dst_pe or edge.bytes_ == 0:
                return 0.0
            link = arch.find_link_between(src_pe, dst_pe)
            if link is not None:
                return link.comm_time(edge.bytes_)
        return pessimistic.comm_time(graph, edge)

    return PriorityContext(exec_time=exec_time, comm_time=comm_time)


def compute_priorities(
    spec: SystemSpec, context: PriorityContext
) -> Dict[str, Dict[str, float]]:
    """Task priority levels for every graph under ``context``."""
    return {
        name: compute_task_priorities(spec.graph(name), context)
        for name in spec.graph_names()
    }


def coupled_graphs(
    arch: Architecture, clustering: ClusteringResult, graph_name: str
) -> List[str]:
    """Graphs sharing any PE instance with ``graph_name`` (one hop).

    The fast inner loop schedules only these; others cannot be
    perturbed by the candidate placement.
    """
    pes_of_graph: Set[str] = set()
    for cluster in clustering.clusters.values():
        if cluster.graph == graph_name and arch.is_allocated(cluster.name):
            pes_of_graph.add(arch.placement_of(cluster.name)[0])
    coupled = {graph_name}
    for cluster in clustering.clusters.values():
        if arch.is_allocated(cluster.name):
            if arch.placement_of(cluster.name)[0] in pes_of_graph:
                coupled.add(cluster.graph)
    return sorted(coupled)
