"""Repair stage: bounded re-allocation of deadline-missing clusters.

The fast inner loop verifies only resource-coupled graphs, so
transitive interference may surface only at the full check; this stage
repairs by re-homing the clusters of late tasks (a bounded
re-allocation pass -- the heuristic still cannot guarantee
optimality).
"""

from __future__ import annotations

import logging
from dataclasses import replace
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.cluster.clustering import ClusteringResult
from repro.core.config import CrusadeConfig
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
)
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer
from repro.perf.engine import IncrementalEngine
from repro.perf.prune import RepairBound, bound_abort_active, pruning_active
from repro.sched.scheduler import ScheduleAbort
from repro.alloc.array import build_allocation_array
from repro.alloc.evaluate import (
    EvalResult,
    apply_option,
    apply_option_cow,
    evaluate_architecture,
)

_log = logging.getLogger("repro.crusade")


def repair_pass(
    spec: SystemSpec,
    assoc: AssociationArray,
    clustering: ClusteringResult,
    current: EvalResult,
    priorities: Dict[str, Dict[str, float]],
    compat,
    config: CrusadeConfig,
    tracer: Tracer,
    max_rounds: int = 8,
    candidates_per_round: int = 5,
    engine: Optional[IncrementalEngine] = None,
) -> EvalResult:
    """Re-home clusters of deadline-missing tasks until feasible or
    out of rounds.

    Each round takes the latest full evaluation's worst offenders,
    deallocates each offender's cluster on a cloned architecture, and
    retries its allocation array under *full* (not subset) evaluation;
    the first strictly-badness-reducing placement wins.  With the
    incremental engine, each re-homing is applied as a copy-on-write
    overlay on the stripped architecture (cloned only when kept) and
    its evaluation reuses cached component fragments -- repair moves
    one cluster at a time, so almost every component is a cache hit.

    With pruning active, each re-homing's full-scope badness floor
    (:class:`~repro.perf.prune.RepairBound`) is checked first: a
    candidate whose floor is already >= the incumbent's badness can
    neither be feasible (its floor then has >= 1 miss/overload) nor
    strictly improve, so it is skipped without scheduling.
    """
    repair_bound = (
        RepairBound(spec, assoc, clustering) if pruning_active(config) else None
    )
    bounding = bound_abort_active(config)

    def abort_bound(round_best: Optional[EvalResult]) -> Optional[tuple]:
        """Badness an evaluation may abort against: the tightest
        incumbent the keep rule compares with.  A kept re-homing must
        beat *both* ``current`` and ``round_best`` (or meet every
        deadline, impossible with > bound[0] >= 1 violations), so an
        abort against their minimum is pure dominance."""
        if not bounding:
            return None
        tightest = current.badness()
        if round_best is not None:
            challenger = round_best.badness()
            if challenger < tightest:
                tightest = challenger
        return tightest

    for _ in range(max_rounds):
        if current.report.all_met:
            break
        tracer.incr("repair.rounds")
        late_keys = sorted(
            (k for k, v in current.report.lateness.items() if v > 1e-12),
            key=lambda k: -current.report.lateness[k],
        )
        offender_clusters: List[str] = []

        def add_offender(graph_name: str, task_name: str) -> None:
            """Queue the task's cluster for re-homing (once)."""
            cluster = clustering.cluster_of(graph_name, task_name)
            if cluster.name not in offender_clusters:
                offender_clusters.append(cluster.name)

        for key in late_keys:
            graph_name, copy_index, task_name = key
            # The late task's own cluster, then the critical chain
            # upstream: predecessors whose data arrival dominated the
            # task's start are the actual bottleneck.
            add_offender(graph_name, task_name)
            graph = spec.graph(graph_name)
            walker = task_name
            for _ in range(3):
                preds = graph.predecessors(walker)
                if not preds:
                    break
                walker = max(
                    preds,
                    key=lambda p: current.schedule.finish_of(
                        (graph_name, copy_index, p)
                    ),
                )
                add_offender(graph_name, walker)
            if len(offender_clusters) >= candidates_per_round:
                break
        # Oversubscribed resources (utilization > 1 over the
        # hyperperiod) may carry no late *explicit* copy; shed load by
        # re-homing their busiest clusters of the fastest graphs.
        for resource in sorted(current.report.overloaded):
            residents = [
                name
                for name, (pe_id, _) in current.arch.cluster_alloc.items()
                if pe_id == resource
            ]
            residents.sort(
                key=lambda name: (
                    spec.graph(clustering.clusters[name].graph).period,
                    -clustering.clusters[name].size,
                    name,
                )
            )
            for name in residents:
                if name not in offender_clusters:
                    offender_clusters.append(name)
                if len(offender_clusters) >= 2 * candidates_per_round:
                    break
        round_best: Optional[EvalResult] = None
        solved = False
        for cluster_name in offender_clusters:
            cluster = clustering.clusters[cluster_name]
            stripped = current.arch.clone()
            old_pe, _ = stripped.deallocate_cluster(
                cluster_name,
                gates=cluster.area_gates,
                pins=cluster.pins,
                memory=cluster.memory,
            )
            if not stripped.pe(old_pe).cluster_modes:
                stripped.remove_pe(old_pe)
            options = build_allocation_array(
                cluster,
                stripped,
                clustering,
                spec,
                config.delay_policy,
                compat=compat,
                max_existing_options=config.max_existing_options,
                allow_new_modes=config.reconfiguration,
                tracer=tracer,
            )
            for option in options:
                tracer.incr("repair.rehomings_tried")
                if engine is not None:
                    try:
                        handle = apply_option_cow(
                            option, stripped, cluster, clustering, spec,
                            "fastest",
                        )
                    except AllocationError:
                        continue
                    tracer.incr("perf.cow.applies")
                    try:
                        if repair_bound is not None:
                            floor = repair_bound.badness_floor(stripped)
                            if floor >= current.badness():
                                tracer.incr("prune.cut")
                                tracer.incr("prune.cut.repair")
                                continue
                            tracer.incr("prune.kept")
                            tracer.incr("prune.kept.repair")
                        try:
                            verdict = evaluate_architecture(
                                spec,
                                assoc,
                                clustering,
                                stripped,
                                priorities,
                                preemption=config.preemption,
                                tracer=tracer,
                                engine=engine,
                                bound=abort_bound(round_best),
                            )
                        except ScheduleAbort as abort:
                            tracer.incr("sched.abort")
                            tracer.incr("sched.abort." + abort.reason)
                            continue
                        # Materialize the applied state only for
                        # verdicts the selection below will keep.
                        if verdict.report.all_met or (
                            verdict.badness() < current.badness()
                            and (
                                round_best is None
                                or verdict.badness() < round_best.badness()
                            )
                        ):
                            verdict = replace(verdict, arch=stripped.clone())
                    finally:
                        handle.revert()
                        tracer.incr("perf.cow.reverts")
                else:
                    trial = stripped.clone()
                    try:
                        apply_option(
                            option, trial, cluster, clustering, spec, "fastest"
                        )
                    except AllocationError:
                        continue
                    if repair_bound is not None:
                        floor = repair_bound.badness_floor(trial)
                        if floor >= current.badness():
                            tracer.incr("prune.cut")
                            tracer.incr("prune.cut.repair")
                            continue
                        tracer.incr("prune.kept")
                        tracer.incr("prune.kept.repair")
                    try:
                        verdict = evaluate_architecture(
                            spec,
                            assoc,
                            clustering,
                            trial,
                            priorities,
                            preemption=config.preemption,
                            tracer=tracer,
                            bound=abort_bound(round_best),
                        )
                    except ScheduleAbort as abort:
                        tracer.incr("sched.abort")
                        tracer.incr("sched.abort." + abort.reason)
                        continue
                if verdict.report.all_met:
                    current = verdict
                    solved = True
                    tracer.incr("repair.rehomings_kept")
                    tracer.event(
                        "repair.solved", cluster=cluster_name,
                        placement=option.describe(),
                    )
                    break
                if verdict.badness() < current.badness() and (
                    round_best is None or verdict.badness() < round_best.badness()
                ):
                    round_best = verdict
            if solved:
                break
        if solved:
            break
        if round_best is None:
            break
        tracer.incr("repair.rehomings_kept")
        current = round_best
    return current


class Repair(Stage):
    """Re-home late clusters when the full check missed deadlines."""

    name = "repair"

    def should_run(self, ctx: SynthesisContext) -> bool:
        """Only when the full check found missed deadlines."""
        return not ctx.full.report.all_met

    def run(self, ctx: SynthesisContext) -> None:
        """Run the repair pass and adopt whatever it ends up with."""
        ctx.full = repair_pass(
            ctx.spec, ctx.assoc, ctx.clustering, ctx.full, ctx.priorities,
            ctx.compat, ctx.config, ctx.tracer, engine=ctx.engine,
        )
        ctx.best = ctx.full
        ctx.arch = ctx.full.arch
        context = allocation_aware_context(ctx.library, ctx.arch,
                                           ctx.clustering)
        ctx.priorities = compute_priorities(ctx.spec, context)
        ctx.allocation_feasible = ctx.full.report.all_met
