"""Clustering stage (Section 5: critical-path task clustering).

Skipped entirely when the caller donated a clustering -- CRUSADE-FT
substitutes its fault-tolerance-level clustering (Section 6) and times
it under its own ``ft_clustering`` phase.
"""

from __future__ import annotations

from repro.cluster.clustering import cluster_spec, trivial_clustering
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext


class Clustering(Stage):
    """Fold tasks into clusters along deadline-critical paths."""

    name = "clustering"

    def should_run(self, ctx: SynthesisContext) -> bool:
        """Only when no clustering was donated by the caller."""
        return ctx.clustering is None

    def run(self, ctx: SynthesisContext) -> None:
        """Cluster the specification (or trivially, when disabled)."""
        if ctx.config.clustering:
            ctx.clustering = cluster_spec(
                ctx.spec,
                ctx.library,
                context=ctx.pessimistic,
                delay_policy=ctx.config.delay_policy,
                max_cluster_size=ctx.config.max_cluster_size,
            )
        else:
            ctx.clustering = trivial_clustering(ctx.spec, ctx.library)
