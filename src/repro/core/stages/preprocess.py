"""Pre-processing stage (Section 5, step 1 -- minus clustering).

Validates the library and specification, builds the association array
(hyperperiod copies), prepares the pessimistic priority context, and
-- when the specification carries explicit compatibility vectors and
reconfiguration is enabled -- the compatibility analysis the
allocation and merge stages consult.
"""

from __future__ import annotations

from repro.cluster.priority import PriorityContext
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.graph.association import AssociationArray
from repro.graph.validate import validate_spec
from repro.reconfig.compatibility import CompatibilityAnalysis


class Preprocess(Stage):
    """Validate inputs and derive the run's static artifacts."""

    name = "preprocess"

    def run(self, ctx: SynthesisContext) -> None:
        """Validate, build the association array, prime priorities."""
        ctx.library.validate()
        ctx.warnings = validate_spec(ctx.spec, ctx.library)
        ctx.assoc = AssociationArray(
            ctx.spec, max_explicit_copies=ctx.config.max_explicit_copies
        )
        ctx.pessimistic = PriorityContext.pessimistic(ctx.library)
        if ctx.config.reconfiguration and ctx.spec.has_explicit_compatibility:
            ctx.compat = CompatibilityAnalysis.from_spec(ctx.spec)
