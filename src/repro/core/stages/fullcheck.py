"""Full-check stage: full-system validation of the allocation.

The allocation stage's fast inner loop verifies only resource-coupled
graphs; this stage schedules the complete system once so repair and
the reconfiguration routes start from a trustworthy verdict.
"""

from __future__ import annotations

from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.alloc.evaluate import evaluate_architecture


class FullCheck(Stage):
    """Schedule the whole system on the allocated architecture."""

    name = "full_check"

    def run(self, ctx: SynthesisContext) -> None:
        """Evaluate every graph; seed ``best`` with the verdict."""
        ctx.full = evaluate_architecture(
            ctx.spec, ctx.assoc, ctx.clustering, ctx.arch, ctx.priorities,
            preemption=ctx.config.preemption, tracer=ctx.tracer,
            engine=ctx.engine,
        )
        ctx.best = ctx.full
