"""The staged CRUSADE synthesis pipeline.

The driver's former monolith is decomposed into first-class stage
objects over a shared :class:`~repro.core.stages.context.
SynthesisContext`; ``crusade()`` composes them via
:func:`~repro.core.stages.pipeline.synthesize` and stays byte-for-byte
result-identical to the pre-stage driver (pinned by the golden-result
fixtures under ``tests/core/golden/``).

Heuristic decision points are policy hooks
(:class:`~repro.core.stages.policies.SynthesisPolicy`), selected by
name through ``CrusadeConfig.policy``.
"""

from repro.core.stages.base import Stage, run_stages
from repro.core.stages.context import SynthesisContext
from repro.core.stages.policies import (
    POLICIES,
    SynthesisPolicy,
    register_policy,
    resolve_policy,
)
from repro.core.stages.pipeline import default_stages, synthesize
from repro.core.stages.preprocess import Preprocess
from repro.core.stages.clustering import Clustering
from repro.core.stages.allocation import Allocation, CandidateSelection
from repro.core.stages.fullcheck import FullCheck
from repro.core.stages.repair import Repair, repair_pass
from repro.core.stages.modemerge import MergeRoute, ModeMerge
from repro.core.stages.interface import InterfaceSynthesis
from repro.core.stages.finalize import Finalize

__all__ = [
    "Stage",
    "run_stages",
    "SynthesisContext",
    "SynthesisPolicy",
    "POLICIES",
    "register_policy",
    "resolve_policy",
    "default_stages",
    "synthesize",
    "Preprocess",
    "Clustering",
    "Allocation",
    "CandidateSelection",
    "FullCheck",
    "Repair",
    "repair_pass",
    "MergeRoute",
    "ModeMerge",
    "InterfaceSynthesis",
    "Finalize",
]
