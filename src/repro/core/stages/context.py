"""The shared mutable state of one synthesis run.

:class:`SynthesisContext` is the single object the pipeline stages
read and write; it owns what the old monolithic driver threaded
through nested closures -- specification, library, configuration,
clustering, association array, the working architecture, priority
levels, tracer, incremental engine, process-pool scorer, compatibility
analysis and validation warnings -- plus the evolving verdicts
(``full``, ``best``) and reconfiguration artifacts (``interface``,
``merge_stats``) the later stages produce.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.architecture import Architecture
from repro.cluster.clustering import ClusteringResult
from repro.cluster.priority import PriorityContext
from repro.core.config import CrusadeConfig
from repro.core.report import CoSynthesisResult
from repro.core.stages.policies import SynthesisPolicy, resolve_policy
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer, resolve_tracer
from repro.perf.engine import IncrementalEngine, resolve_engine
from repro.perf.procpool import ProcessPoolScorer
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.interface import InterfacePlan
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.alloc.evaluate import EvalResult


@dataclass
class SynthesisContext:
    """Everything one ``crusade()`` run knows, in one place.

    Stages receive the context, mutate their slice of it, and leave
    the rest alone; :mod:`repro.core.stages.base` documents which
    stage owns which fields.
    """

    # -- inputs (fixed for the whole run) ------------------------------
    spec: SystemSpec
    library: ResourceLibrary
    config: CrusadeConfig
    tracer: Tracer
    engine: Optional[IncrementalEngine]
    policy: SynthesisPolicy
    #: Wall-clock origin for the result's ``cpu_seconds``.
    started: float

    # -- donated inputs (may be supplied by the caller) ----------------
    #: CRUSADE-FT substitutes its fault-tolerance-level clustering.
    clustering: Optional[ClusteringResult] = None
    #: A previously synthesized reconfiguration-free result (route b's
    #: merge seed); computed internally when absent.
    baseline: Optional[CoSynthesisResult] = None

    # -- preprocess stage ----------------------------------------------
    warnings: List[str] = field(default_factory=list)
    assoc: Optional[AssociationArray] = None
    pessimistic: Optional[PriorityContext] = None
    compat: Optional[CompatibilityAnalysis] = None

    # -- allocation stage ----------------------------------------------
    arch: Optional[Architecture] = None
    priorities: Optional[Dict[str, Dict[str, float]]] = None
    #: Live process-pool scorer while the allocation stage holds one.
    scorer: Optional[ProcessPoolScorer] = None
    fast: bool = False
    prune_on: bool = False
    bound_abort_on: bool = False
    allocation_feasible: bool = True
    #: Whether ``priorities`` already reflect a partial allocation
    #: (pre-allocation pessimistic levels price edges differently).
    allocation_aware: bool = False

    # -- full check / repair / merge / interface stages ----------------
    full: Optional[EvalResult] = None
    best: Optional[EvalResult] = None
    interface: Optional[InterfacePlan] = None
    merge_stats: Dict[str, int] = field(default_factory=dict)

    # -- finalize stage -------------------------------------------------
    result: Optional[CoSynthesisResult] = None

    @classmethod
    def begin(
        cls,
        spec: SystemSpec,
        library: Optional[ResourceLibrary] = None,
        config: Optional[CrusadeConfig] = None,
        clustering: Optional[ClusteringResult] = None,
        baseline: Optional[CoSynthesisResult] = None,
        tracer: Optional[Tracer] = None,
        engine: Optional[IncrementalEngine] = None,
    ) -> "SynthesisContext":
        """Resolve defaults and open a context for one run.

        Mirrors the public ``crusade()`` signature: ``None`` arguments
        mean "use the default" (catalog library, default config, null
        tracer, config-resolved engine, config-named policy).
        """
        started = time.perf_counter()
        if library is None:
            library = default_library()
        if config is None:
            config = CrusadeConfig()
        return cls(
            spec=spec,
            library=library,
            config=config,
            tracer=resolve_tracer(tracer),
            engine=resolve_engine(config, engine),
            policy=resolve_policy(config.policy),
            started=started,
            clustering=clustering,
            baseline=baseline,
        )

    @contextlib.contextmanager
    def allocation_scorer(self):
        """Acquire (and always release) the candidate scorer.

        Yields a :class:`~repro.perf.procpool.ProcessPoolScorer` when
        ``config.parallel_eval`` asks for one, else ``None`` (the
        serial path).  The scorer's own context manager guarantees the
        worker processes are shut down even if a stage raises between
        construction and first use; ``self.scorer`` tracks the live
        instance for observability and is cleared on release.
        """
        if self.config.parallel_eval >= 2:
            # 0 and 1 both mean the serial path: a 1-worker pool can
            # never beat it (see repro.perf.procpool).
            with ProcessPoolScorer(
                self.config.parallel_eval,
                use_engine=self.engine is not None,
                timeline=self.config.timeline,
                batch=self.config.pool_batch,
                transport=self.config.exec_transport,
                worker_port=self.config.worker_port,
            ) as scorer:
                self.scorer = scorer
                try:
                    yield scorer
                finally:
                    self.scorer = None
        else:
            yield None
