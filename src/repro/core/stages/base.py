"""Stage protocol and the stage runner.

A stage is one named step of the synthesis pipeline: it reads and
writes its slice of the shared :class:`~repro.core.stages.context.
SynthesisContext` and nothing else.  The runner owns the cross-cutting
wiring every stage gets uniformly -- the ``tracer.phase`` timing
window and the ``stage.<name>.runs`` / ``stage.<name>.skipped``
counters -- so individual stages contain only phase logic.

Field ownership (who writes what):

========================  =============================================
stage                     context fields written
========================  =============================================
``Preprocess``            ``warnings``, ``assoc``, ``pessimistic``,
                          ``compat``
``Clustering``            ``clustering`` (skipped when donated)
``Allocation``            ``arch``, ``priorities``, ``fast``,
                          ``prune_on``, ``allocation_feasible``,
                          ``allocation_aware``, ``scorer`` (transient)
``FullCheck``             ``full``, ``best``
``Repair``                ``full``, ``best``, ``arch``, ``priorities``,
                          ``allocation_feasible``
``ModeMerge``             ``best``, ``arch``, ``interface``,
                          ``merge_stats``, ``baseline``
``InterfaceSynthesis``    ``best``, ``interface``
``Finalize``              ``result``
========================  =============================================
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.stages.context import SynthesisContext


class Stage:
    """One named step of the synthesis pipeline."""

    #: Stage name (also the default tracer phase name).
    name: str = "stage"

    @property
    def phase_name(self) -> Optional[str]:
        """Tracer phase to run under; ``None`` opts out of timing
        (only ``Finalize``, which snapshots the timers itself)."""
        return self.name

    def should_run(self, ctx: SynthesisContext) -> bool:
        """Whether this stage applies to the run (default: always)."""
        return True

    def run(self, ctx: SynthesisContext) -> None:
        """Execute the stage against the shared context."""
        raise NotImplementedError


def run_stages(
    ctx: SynthesisContext, stages: Iterable[Stage]
) -> SynthesisContext:
    """Run ``stages`` in order against ``ctx`` (the stage runner).

    Every executed stage is timed under its phase name and counted as
    ``stage.<name>.runs``; stages whose :meth:`~Stage.should_run`
    declines are counted as ``stage.<name>.skipped`` and never entered,
    so phase timers only ever contain stages that actually did work.
    """
    for stage in stages:
        if not stage.should_run(ctx):
            ctx.tracer.incr("stage.%s.skipped" % stage.name)
            continue
        ctx.tracer.incr("stage.%s.runs" % stage.name)
        phase = stage.phase_name
        if phase is None:
            stage.run(ctx)
        else:
            with ctx.tracer.phase(phase):
                stage.run(ctx)
    return ctx
