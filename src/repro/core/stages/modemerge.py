"""Mode-merge stage (Sections 4.1-4.2: the two reconfiguration routes).

When dynamic reconfiguration is enabled the pipeline explores two
routes and keeps the cheaper feasible one, mirroring the paper's two
entry points into reconfiguration: (a) the mode-aware allocation
followed by PPE merging, and (b) the plain single-mode baseline
improved by the Figure 3 merge loop.  Because route (b) starts from
the baseline and only accepts cost-decreasing merges, reconfiguration
never yields a costlier architecture than the baseline.

Routes are data here (:class:`MergeRoute`), not duplicated control
flow: each names its seed architecture and the order of the list is
the tie-break (route (a) wins cost ties).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.arch.architecture import Architecture
from repro.core.config import CrusadeConfig
from repro.core.stages.base import Stage
from repro.core.stages.context import SynthesisContext
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
)
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.interface import synthesize_interface
from repro.reconfig.merge import merge_reconfigurable_pes
from repro.sched.scheduler import ScheduleAbort
from repro.alloc.evaluate import EvalResult, evaluate_architecture

_log = logging.getLogger("repro.crusade")


@dataclass
class MergeRoute:
    """One reconfiguration entry point: a named merge seed."""

    #: Route key ("a" or "b"), used in debug logs.
    key: str
    #: Lazy seed architecture builder, returning ``None`` when the
    #: route is closed (its precondition -- a feasible seed -- does
    #: not hold).  Lazy so side effects (route (b) synthesizes the
    #: baseline on demand) happen in route order.
    seed: Callable[[], Optional[Architecture]]


class ModeMerge(Stage):
    """Merge compatible PPEs into multi-mode devices (Figure 3)."""

    name = "merge"

    def should_run(self, ctx: SynthesisContext) -> bool:
        """Only when dynamic reconfiguration is enabled."""
        return ctx.config.reconfiguration

    def run(self, ctx: SynthesisContext) -> None:
        """Merge along every open route; keep the cheapest feasible."""
        resolved_compat = ctx.compat
        if resolved_compat is None:
            resolved_compat = CompatibilityAnalysis.from_schedule(
                ctx.spec, ctx.full.schedule
            )
        outcomes: List[Tuple[Optional[EvalResult], Dict[str, int]]] = []
        for route in self.routes(ctx):
            start_arch = route.seed()
            if start_arch is None:
                outcomes.append((None, {}))
                continue
            outcomes.append(
                self.merged_candidate(ctx, resolved_compat, start_arch)
            )
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "route a: %s; route b: %s",
                *(
                    "none" if candidate is None
                    else "$%.0f %s" % (candidate.cost, candidate.feasible)
                    for candidate, _ in outcomes
                ),
            )
        chosen_route = None
        for candidate, stats in outcomes:
            if candidate is None or not candidate.feasible:
                continue
            if chosen_route is None or candidate.cost < chosen_route[0].cost:
                chosen_route = (candidate, stats)
        if chosen_route is not None:
            ctx.best, ctx.merge_stats = chosen_route
            ctx.arch = ctx.best.arch
            ctx.interface = getattr(ctx.best, "interface", None)

    def routes(self, ctx: SynthesisContext) -> List[MergeRoute]:
        """The route list, in tie-break order.

        Route (a) merges the mode-aware allocation (only worth
        pursuing when the allocation phase met every deadline); route
        (b) merges the plain single-mode baseline (Figure 3's entry
        when compatibility vectors were not specified), synthesizing
        the baseline first if the caller did not donate one.
        """
        def seed_a() -> Optional[Architecture]:
            """The allocation-phase architecture, when feasible."""
            return ctx.arch if ctx.full.feasible else None

        def seed_b() -> Optional[Architecture]:
            """A clone of the (possibly just synthesized) baseline."""
            self.ensure_baseline(ctx)
            return ctx.baseline.arch.clone() if ctx.baseline.feasible else None

        return [MergeRoute(key="a", seed=seed_a),
                MergeRoute(key="b", seed=seed_b)]

    def ensure_baseline(self, ctx: SynthesisContext) -> None:
        """Synthesize the reconfiguration-free baseline if absent.

        The baseline synthesis re-enters the full pipeline (sharing
        the parent's tracer, engine and clustering) and records its
        time under the ordinary phase names: the exclusive phase
        timers pause this stage's "merge" window while the nested
        stages run.
        """
        if ctx.baseline is not None:
            return
        from repro.core.stages.pipeline import synthesize

        baseline_config = CrusadeConfig(
            reconfiguration=False,
            clustering=ctx.config.clustering,
            max_explicit_copies=ctx.config.max_explicit_copies,
            max_cluster_size=ctx.config.max_cluster_size,
            delay_policy=ctx.config.delay_policy,
            preemption=ctx.config.preemption,
            max_existing_options=ctx.config.max_existing_options,
            fast_inner_loop=ctx.config.fast_inner_loop,
            link_strategies=ctx.config.link_strategies,
            incremental=ctx.config.incremental,
            parallel_eval=ctx.config.parallel_eval,
            prune=ctx.config.prune,
            timeline=ctx.config.timeline,
            bound_abort=ctx.config.bound_abort,
            pool_batch=ctx.config.pool_batch,
            policy=ctx.config.policy,
            # Store plumbing rides along for faithfulness only: the
            # nested synthesis enters via SynthesisContext.begin, so
            # the full-result tier never sees this config, and the
            # shared parent engine already carries the fragment-tier
            # binding.
            cache_dir=ctx.config.cache_dir,
            warm_start=ctx.config.warm_start,
        )
        ctx.baseline = synthesize(
            SynthesisContext.begin(
                ctx.spec, library=ctx.library, config=baseline_config,
                clustering=ctx.clustering, tracer=ctx.tracer,
                engine=ctx.engine,
            )
        )

    def merged_candidate(
        self,
        ctx: SynthesisContext,
        resolved_compat: CompatibilityAnalysis,
        start_arch: Architecture,
    ) -> Tuple[Optional[EvalResult], Dict[str, int]]:
        """Interface-synthesize then Figure 3-merge an architecture.

        Priority levels are recomputed for the start architecture:
        routes carry different allocations, and the scheduler's order
        must reflect the one it is verifying.
        """
        route_context = allocation_aware_context(
            ctx.library, start_arch, ctx.clustering
        )
        route_priorities = compute_priorities(ctx.spec, route_context)
        evaluator = self.make_interface_evaluator(ctx, route_priorities)
        seeded = evaluator(start_arch)
        if seeded is None or not seeded.feasible:
            return None, {}
        accept = ctx.policy.accept_merge
        outcome = merge_reconfigurable_pes(
            ctx.spec,
            ctx.clustering,
            resolved_compat,
            ctx.config.delay_policy,
            seeded,
            evaluator,
            combine_modes=ctx.config.combine_modes,
            tracer=ctx.tracer,
            prune=ctx.prune_on,
            accept=accept,
        )
        stats = {
            "accepted": outcome.merges_accepted,
            "rejected": outcome.merges_rejected,
            "mode_combines": outcome.mode_combines,
            "rounds": outcome.rounds,
        }
        return outcome.result, stats

    def make_interface_evaluator(
        self, ctx: SynthesisContext, route_priorities
    ) -> Callable[[Architecture], Optional[EvalResult]]:
        """Trial evaluator bound to one route's priority levels:
        interface synthesis + full schedule.

        Under the paper's feasible-and-cheaper acceptance rule every
        consumer of this evaluator (the route seeding check, the
        merge array, mode combining) rejects any verdict that is not
        feasible, so a single proven violation dooms the trial: the
        scheduler runs under a zero-violation bound and aborts early.
        A custom ``accept_merge`` hook may accept infeasible
        verdicts, so it disables the bound -- the same gating as the
        merge loop's dollar-cost prune.  An aborted trial is rejected
        as if interface synthesis had failed (reason counters book it
        as ``interface`` rather than ``deadline``; the decision is
        identical).
        """
        bound = None
        if ctx.bound_abort_on and ctx.policy.accept_merge is None:
            bound = (0, 0.0, 0.0)

        def evaluate_with_interface(candidate: Architecture):
            """Score a merge trial, boot times from a fresh interface."""
            try:
                plan = synthesize_interface(
                    candidate, ctx.spec.boot_time_requirement
                )
            except SynthesisError:
                return None
            try:
                verdict = evaluate_architecture(
                    ctx.spec,
                    ctx.assoc,
                    ctx.clustering,
                    candidate,
                    route_priorities,
                    boot_time_fn=plan.boot_time_fn(),
                    preemption=ctx.config.preemption,
                    tracer=ctx.tracer,
                    engine=ctx.engine,
                    bound=bound,
                )
            except ScheduleAbort as abort:
                ctx.tracer.incr("sched.abort")
                ctx.tracer.incr("sched.abort." + abort.reason)
                return None
            verdict.interface = plan  # type: ignore[attr-defined]
            return verdict

        return evaluate_with_interface
