"""Configuration knobs for the CRUSADE driver.

Defaults follow the paper: ERUF 70 % / EPUF 80 %, clustering enabled,
restricted preemption on, dynamic reconfiguration on.  The ablation
benchmarks flip individual knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.delay.model import DelayPolicy
from repro.errors import SpecificationError


@dataclass(frozen=True)
class CrusadeConfig:
    """Driver configuration.

    Attributes
    ----------
    reconfiguration:
        Enable dynamic reconfiguration (multiple modes per PPE).  Off
        reproduces the paper's baseline column: each programmable
        device has a single mode.
    clustering:
        Critical-path task clustering; off allocates one cluster per
        task (the clustering ablation).
    max_explicit_copies:
        Association-array cap on materialized copies per graph.
    max_cluster_size:
        Upper bound on tasks per cluster.
    delay_policy:
        ERUF/EPUF caps for programmable devices.
    preemption:
        Restricted-preemption path on processors.
    max_existing_options:
        Bound on existing-instance entries in each allocation array.
    fast_inner_loop:
        Inner-loop scheduling restricted to resource-coupled graphs.
        ``None`` auto-enables above :attr:`fast_threshold_tasks`.
    fast_threshold_tasks:
        Task count beyond which the fast inner loop auto-enables.
    link_strategies:
        Link-type selection strategies tried in order when a cluster
        cannot meet deadlines with the first.
    combine_modes:
        Post-merge mode combining (Section 4.2's last step).
    interface_retries:
        How many times the boot-time requirement is halved when the
        synthesized interface's boot times break the schedule.
    incremental:
        Incremental evaluation engine (per-component schedule caching,
        copy-on-write candidate application, incremental priority
        recomputation -- see :mod:`repro.perf`).  Results are
        byte-identical either way; ``False`` (or the
        ``REPRO_NO_INCREMENTAL=1`` environment variable) restores the
        from-scratch inner loop.
    parallel_eval:
        Worker *processes* for parallel candidate scoring.  ``0`` and
        ``1`` both mean the serial path -- a 1-worker pool can never
        beat it, so no pool is ever spun up below 2.  Selection stays
        first-feasible-by-index, so results are byte-identical to the
        serial loop.  The CLI maps ``--parallel-eval auto`` to
        ``os.cpu_count()``.
    prune:
        Admissible candidate pruning (:mod:`repro.perf.prune`):
        candidates whose finish-time/demand lower bounds provably miss
        a deadline or overload a resource are cut without scheduling.
        Pure dominance pruning -- the chosen candidate and final
        architecture are byte-identical either way; ``False`` (or the
        ``REPRO_NO_PRUNE=1`` environment variable) restores exhaustive
        evaluation.
    timeline:
        Timeline implementation for scheduler resources (see
        :mod:`repro.perf.treetimeline`): ``"list"`` keeps the
        bisect-indexed flat lists, ``"tree"`` uses the blocked index
        from the first interval, and ``"auto"`` (default) starts flat
        and converts a timeline to the blocked index when it grows
        past the conversion threshold -- the right choice everywhere,
        since short timelines pay zero overhead and the long,
        fragmented timelines of full-scale workloads escape the O(n)
        insert memmove.  All three are bit-for-bit interchangeable
        (enforced by the differential oracle in ``tests/sched``); the
        ``REPRO_TIMELINE`` environment variable overrides this knob as
        a kill switch.  Only consulted on the engine path -- the
        legacy from-scratch scheduler always uses the linear reference
        timelines.
    bound_abort:
        Incumbent-driven bounded search: candidate evaluations carry
        the incumbent's badness tuple into the scheduler, which aborts
        the moment the partial schedule's proven violation count
        exceeds it (:class:`~repro.sched.scheduler.ScheduleAbort`).
        Pure dominance -- aborted candidates provably lose to the
        incumbent, so the chosen candidate and final architecture are
        byte-identical either way; ``False`` (or the
        ``REPRO_NO_BOUND_ABORT=1`` environment variable) evaluates
        every candidate to completion.  Aborts are reported as
        ``sched.abort`` / ``sched.abort.<reason>`` counters.
    pool_batch:
        Candidate submissions per pool-worker message in the parallel
        scorer (:mod:`repro.perf.procpool`), amortizing pipe IPC; the
        parent rebroadcasts the freshest incumbent bound between
        batches.  ``1`` restores the PR-6 one-option-per-message
        protocol exactly (the batched-pool kill switch).  Results are
        byte-identical for any value.
    policy:
        Name of the registered :class:`~repro.core.stages.policies.
        SynthesisPolicy` steering the heuristic's open decision points
        (cluster allocation order, candidate preference, merge
        acceptance).  ``"default"`` reproduces the paper's rules
        exactly; alternative policies (``"largest-first"``,
        ``"reuse-first"``) are campaign-grid ablation axes.  A string
        so configs stay picklable and JSON-serializable for the
        campaign runner.
    cache_dir:
        Directory of the persistent content-addressed synthesis store
        (:mod:`repro.perf.store`); ``None`` (default) disables it.
        With a store, an exact resubmission (same spec content, same
        catalog, same semantic config) returns the cached result in
        milliseconds, and near-hit resubmissions reuse still-valid
        per-component schedule fragments across runs.  Warm-started
        results are byte-identical to cold ones.  The
        ``REPRO_CACHE_DIR`` environment variable is the fallback when
        this field is ``None`` (how campaign workers share one store).
    warm_start:
        Whether a configured store may be *read* (exact-result hits
        and fragment preloads).  ``False`` -- or the
        ``REPRO_NO_WARM_START=1`` environment kill switch -- forces a
        cold run that still *writes* the store, warming it for later
        runs.  Meaningless without ``cache_dir``/``REPRO_CACHE_DIR``.
    exec_transport:
        Worker transport for the parallel scorer's execution substrate
        (:mod:`repro.exec`): ``"pipe"`` (default) forks workers over
        duplex pickle pipes; ``"socket"`` runs them over
        length-prefixed canonical-JSON TCP frames with heartbeat
        liveness -- the substrate remote ``repro worker --connect``
        hosts join through.  Results are byte-identical either way
        (the pool's first-feasible-by-index selection is
        transport-independent).  The ``REPRO_EXEC_TRANSPORT``
        environment variable overrides this knob as a kill switch.
    worker_port:
        TCP port on which the parallel scorer accepts remote
        ``repro worker --connect`` dial-ins for the duration of a
        synthesis run (``None`` disables, ``0`` binds an ephemeral
        port).  Joined workers enlarge scoring waves; selection and
        results stay byte-identical.
    """

    reconfiguration: bool = True
    clustering: bool = True
    max_explicit_copies: int = 4
    max_cluster_size: int = 8
    delay_policy: DelayPolicy = field(default_factory=DelayPolicy)
    preemption: bool = True
    max_existing_options: int = 12
    fast_inner_loop: Optional[bool] = None
    fast_threshold_tasks: int = 300
    link_strategies: Tuple[str, ...] = ("cheapest", "fastest")
    combine_modes: bool = True
    interface_retries: int = 6
    incremental: bool = True
    parallel_eval: int = 0
    prune: bool = True
    timeline: str = "auto"
    bound_abort: bool = True
    pool_batch: int = 4
    policy: str = "default"
    cache_dir: Optional[str] = None
    warm_start: bool = True
    exec_transport: str = "pipe"
    worker_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise SpecificationError("cache_dir must be a string path or None")
        if self.parallel_eval < 0:
            raise SpecificationError("parallel_eval must be >= 0")
        if self.exec_transport not in ("pipe", "socket"):
            raise SpecificationError(
                "exec_transport must be 'pipe' or 'socket'"
            )
        if self.worker_port is not None and (
            not isinstance(self.worker_port, int)
            or isinstance(self.worker_port, bool)
            or not 0 <= self.worker_port <= 65535
        ):
            raise SpecificationError(
                "worker_port must be a port number (0-65535) or None"
            )
        if self.pool_batch < 1:
            raise SpecificationError("pool_batch must be >= 1")
        if self.timeline not in ("list", "tree", "auto"):
            raise SpecificationError(
                "timeline must be one of 'list', 'tree', 'auto'"
            )
        if self.max_explicit_copies < 1:
            raise SpecificationError("max_explicit_copies must be >= 1")
        if self.max_cluster_size < 1:
            raise SpecificationError("max_cluster_size must be >= 1")
        if self.max_existing_options < 1:
            raise SpecificationError("max_existing_options must be >= 1")
        if not self.link_strategies:
            raise SpecificationError("need at least one link strategy")
        if self.interface_retries < 0:
            raise SpecificationError("interface_retries must be >= 0")

    def use_fast_inner_loop(self, total_tasks: int) -> bool:
        """Resolve the auto setting against a system size."""
        if self.fast_inner_loop is not None:
            return self.fast_inner_loop
        return total_tasks > self.fast_threshold_tasks
