"""Co-synthesis results and human-readable reports.

:class:`CoSynthesisResult` is what :func:`repro.core.crusade.crusade`
returns: the synthesized architecture plus everything needed to audit
it -- the final schedule, the deadline report, the interface plan and
the bookkeeping the benchmark tables print (#PEs, #links, cost, CPU
seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.architecture import Architecture
from repro.arch.cost import CostBreakdown, cost_breakdown
from repro.cluster.clustering import ClusteringResult
from repro.graph.spec import SystemSpec
from repro.obs.report import SynthesisStats
from repro.reconfig.interface import InterfacePlan
from repro.sched.finish_time import DeadlineReport
from repro.sched.scheduler import Schedule


@dataclass
class CoSynthesisResult:
    """Everything CRUSADE produces for one specification."""

    spec: SystemSpec
    arch: Architecture
    schedule: Schedule
    report: DeadlineReport
    clustering: ClusteringResult
    interface: Optional[InterfacePlan]
    feasible: bool
    cpu_seconds: float
    reconfiguration_enabled: bool
    merge_stats: Dict[str, int] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    #: Observability aggregates; None unless the run was traced (see
    #: :mod:`repro.obs`).
    stats: Optional[SynthesisStats] = None

    # ------------------------------------------------------------------
    @property
    def n_pes(self) -> int:
        """PE instances in the final architecture."""
        return self.arch.n_pes

    @property
    def n_links(self) -> int:
        """Link instances in the final architecture."""
        return self.arch.n_links

    @property
    def cost(self) -> float:
        """Total architecture dollar cost."""
        return self.arch.cost

    @property
    def n_modes(self) -> int:
        """Configuration modes across programmable PEs."""
        return self.arch.total_modes()

    @property
    def reconfigurations(self) -> int:
        """Run-time mode switches in one scheduled hyperperiod."""
        return self.schedule.reconfigurations

    def breakdown(self) -> CostBreakdown:
        """Cost split by category."""
        return cost_breakdown(self.arch)

    def table_row(self) -> Dict[str, object]:
        """The paper's Table 2/3 row for this run."""
        return {
            "example": self.spec.name,
            "tasks": self.spec.total_tasks,
            "pes": self.n_pes,
            "links": self.n_links,
            "cpu_s": round(self.cpu_seconds, 2),
            "cost": round(self.cost, 0),
            "feasible": self.feasible,
        }

    def summary(self) -> str:
        """One-line outcome summary."""
        flag = "feasible" if self.feasible else "INFEASIBLE"
        return "%s: %s, %s" % (self.spec.name, flag, self.arch.summary())


def render_architecture(result: CoSynthesisResult) -> str:
    """Multi-line description of the synthesized architecture.

    Lists every PE instance with its modes and clusters, every link
    with its attachments, and the cost breakdown -- the shape of the
    paper's Figure 4 walk-through, in text.
    """
    lines: List[str] = [result.summary(), ""]
    lines.append("Processing elements:")
    for pe_id in sorted(result.arch.pes):
        pe = result.arch.pes[pe_id]
        lines.append("  %s (%s, $%.0f)" % (pe.id, pe.pe_type.name, pe.cost))
        for mode in pe.modes:
            members = ", ".join(sorted(mode.clusters)) or "-"
            if pe.is_programmable:
                lines.append(
                    "    mode %d: %d gates, %d pins: %s"
                    % (mode.index, mode.gates_used, mode.pins_used, members)
                )
            else:
                lines.append("    clusters: %s" % (members,))
    lines.append("")
    lines.append("Links:")
    if not result.arch.links:
        lines.append("  (none)")
    for link_id in sorted(result.arch.links):
        link = result.arch.links[link_id]
        lines.append(
            "  %s (%s, %d ports): %s"
            % (
                link.id,
                link.link_type.name,
                link.ports_used,
                ", ".join(link.attached_sorted()),
            )
        )
    lines.append("")
    lines.append("Cost breakdown:")
    for label, value in result.breakdown().as_dict().items():
        lines.append("  %-11s $%8.0f" % (label, value))
    if result.interface is not None and result.interface.devices:
        lines.append("")
        lines.append("Programming interfaces:")
        for pe_id in sorted(result.interface.devices):
            device = result.interface.devices[pe_id]
            chain = (
                " (chained x%d)" % len(device.chained_with)
                if len(device.chained_with) > 1
                else ""
            )
            worst = max(device.runtime_boot_times.values() or [0.0])
            lines.append(
                "  %s: %s%s, %d image bytes, worst boot %.3fs, $%.2f"
                % (
                    pe_id,
                    device.option.name,
                    chain,
                    device.storage_bytes,
                    worst,
                    device.cost_share,
                )
            )
    return "\n".join(lines)
