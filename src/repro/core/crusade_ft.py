"""CRUSADE-FT: co-synthesis of fault-tolerant systems (Section 6).

The basic CRUSADE process is reused with three changes:

1. the specification is transformed first -- assertion and
   duplicate-and-compare tasks are added, with error transparency
   exploited to share checks (task clustering then uses
   fault-tolerance levels);
2. the synthesized architecture is grouped into service modules and
   analysed with Markov models;
3. spare PEs are allocated until every task graph's availability
   requirement holds; their cost joins the architecture cost.

The paper also re-checks dependability inside the merge loop; since
our service modules are per-PE-type, merging PEs only shrinks modules,
and the post-merge spare allocation re-establishes every requirement
-- the net effect is identical and noted in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.core.report import CoSynthesisResult
from repro.ft.assertions import FtTransform, transform_spec_for_ft
from repro.ft.clustering import ft_cluster_spec
from repro.ft.recovery import DEFAULT_FIT, SpareAllocation, allocate_spares
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer, resolve_tracer
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.resources.pe import PEKind


@dataclass(frozen=True)
class FtConfig:
    """Fault-tolerance parameters (all specified a priori, Section 6).

    ``module_hints`` are the paper's architectural hints: a PE type
    name -> service-module label mapping that groups part types into
    one replaceable unit; unhinted types use the automated per-type
    grouping.
    """

    required_coverage: float = 0.9
    fit_rates: Mapping[PEKind, float] = field(
        default_factory=lambda: dict(DEFAULT_FIT)
    )
    mttr_hours: float = 2.0
    max_spares: int = 64
    module_hints: Mapping[str, str] = field(default_factory=dict)


@dataclass
class FtCoSynthesisResult:
    """CRUSADE-FT output: the base result plus dependability artifacts."""

    base: CoSynthesisResult
    transform: FtTransform
    spares: SpareAllocation

    @property
    def spec(self) -> SystemSpec:
        """The synthesized system specification."""
        return self.base.spec

    @property
    def feasible(self) -> bool:
        """Deadlines met and availability requirements satisfiable."""
        return self.base.feasible and self.spares.met

    @property
    def cost(self) -> float:
        """Architecture cost including spare PEs."""
        return self.base.cost + self.spares.spare_cost

    @property
    def n_pes(self) -> int:
        """PE count including spares."""
        return self.base.n_pes + self.spares.total_spares()

    @property
    def n_links(self) -> int:
        """Link count (spares attach to existing links)."""
        return self.base.n_links

    @property
    def cpu_seconds(self) -> float:
        """Synthesis wall-clock time of the base run."""
        return self.base.cpu_seconds

    def table_row(self) -> Dict[str, object]:
        """The paper's Table 3 row for this run."""
        return {
            "example": self.spec.name,
            "tasks": self.spec.total_tasks,
            "pes": self.n_pes,
            "links": self.n_links,
            "cpu_s": round(self.cpu_seconds, 2),
            "cost": round(self.cost, 0),
            "feasible": self.feasible,
        }


def crusade_ft(
    spec: SystemSpec,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    ft_config: Optional[FtConfig] = None,
    baseline: Optional[FtCoSynthesisResult] = None,
    tracer: Optional[Tracer] = None,
) -> FtCoSynthesisResult:
    """Co-synthesize a fault-tolerant architecture for ``spec``.

    ``baseline`` optionally donates a previously synthesized
    reconfiguration-free FT result (Table 3's left column) so the
    reconfiguration run can reuse its architecture as the Figure 3
    merge seed.  ``tracer`` observes the run (see :mod:`repro.obs`);
    the FT-specific phases are recorded as ``ft_transform``,
    ``ft_clustering`` and ``ft_spares``, and the wrapped base
    synthesis reports under the ordinary phase names.
    """
    started = time.perf_counter()
    tracer = resolve_tracer(tracer)
    if library is None:
        library = default_library()
    if config is None:
        config = CrusadeConfig()
    if ft_config is None:
        ft_config = FtConfig()

    with tracer.phase("ft_transform"):
        transform = transform_spec_for_ft(
            spec, required_coverage=ft_config.required_coverage
        )
    ft_spec = transform.spec
    clustering = None
    if config.clustering:
        with tracer.phase("ft_clustering"):
            clustering = ft_cluster_spec(
                ft_spec,
                library,
                delay_policy=config.delay_policy,
                max_cluster_size=config.max_cluster_size,
            )
    base = crusade(
        ft_spec,
        library=library,
        config=config,
        clustering=clustering,
        baseline=baseline.base if baseline is not None else None,
        tracer=tracer,
    )
    with tracer.phase("ft_spares"):
        spares = allocate_spares(
            base.arch,
            base.clustering,
            ft_spec,
            fit_rates=ft_config.fit_rates,
            mttr_hours=ft_config.mttr_hours,
            max_spares=ft_config.max_spares,
            hints=ft_config.module_hints,
        )
    base.cpu_seconds = time.perf_counter() - started
    if tracer.enabled:
        base.stats = tracer.stats(total_seconds=base.cpu_seconds)
    return FtCoSynthesisResult(base=base, transform=transform, spares=spares)
