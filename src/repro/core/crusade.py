"""The CRUSADE co-synthesis algorithm (Section 5, Figure 5).

Flow:

1. **Pre-processing** -- validate the specification, build the
   association array (hyperperiod copies), assign deadline-based
   priority levels and cluster the task graphs along critical paths.
2. **Synthesis** -- allocate clusters in decreasing priority order.
   For each cluster an allocation array of candidate placements is
   built (cheapest first) and each candidate is applied to a trial
   architecture, scheduled, and checked against every deadline; the
   first feasible candidate wins, priorities are recomputed with the
   new allocation, and the loop continues.  When no candidate is
   feasible the least-infeasible one is kept (heuristics can fail;
   the final result is flagged infeasible).
3. **Dynamic reconfiguration generation** -- the reconfiguration
   controller interface is synthesized (Section 4.4) and the Figure 3
   merge procedure folds compatible PPEs into multi-mode devices while
   deadlines and the boot-time requirement hold.
"""

from __future__ import annotations

import logging
import time
from dataclasses import replace
from typing import Dict, List, Optional, Set

_log = logging.getLogger("repro.crusade")

from repro.errors import AllocationError, SynthesisError
from repro.arch.architecture import Architecture
from repro.cluster.clustering import (
    ClusteringResult,
    cluster_spec,
    trivial_clustering,
)
from repro.cluster.priority import (
    PriorityContext,
    compute_task_priorities,
    recompute_priorities,
)
from repro.core.config import CrusadeConfig
from repro.core.report import CoSynthesisResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.graph.validate import validate_spec
from repro.obs.trace import Tracer, resolve_tracer
from repro.perf.engine import IncrementalEngine, resolve_engine
from repro.perf.procpool import ProcessPoolScorer
from repro.perf.prune import CandidatePruner, RepairBound, pruning_active
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.reconfig.interface import InterfacePlan, synthesize_interface
from repro.reconfig.merge import merge_reconfigurable_pes
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary
from repro.alloc.array import build_allocation_array
from repro.alloc.evaluate import (
    EvalResult,
    apply_option,
    apply_option_cow,
    evaluate_architecture,
)


def _allocation_aware_context(
    library: ResourceLibrary,
    arch: Architecture,
    clustering: ClusteringResult,
) -> PriorityContext:
    """Priority estimators reflecting the current partial allocation.

    Allocated tasks use their placement's actual execution time;
    intra-cluster and same-PE edges cost zero; other edges fall back
    to the pessimistic library maximum (Section 5: priority levels are
    recomputed after each allocation and clustering step).
    """
    pessimistic = PriorityContext.pessimistic(library)

    def exec_time(graph, task):
        key = (graph.name, task.name)
        cluster_name = clustering.task_to_cluster.get(key)
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe_id, _ = arch.placement_of(cluster_name)
            return task.wcet_on(arch.pe(pe_id).pe_type.name)
        return pessimistic.exec_time(graph, task)

    def comm_time(graph, edge):
        src_cluster = clustering.task_to_cluster.get((graph.name, edge.src))
        dst_cluster = clustering.task_to_cluster.get((graph.name, edge.dst))
        if src_cluster is not None and src_cluster == dst_cluster:
            return 0.0
        if (
            src_cluster is not None
            and dst_cluster is not None
            and arch.is_allocated(src_cluster)
            and arch.is_allocated(dst_cluster)
        ):
            src_pe, _ = arch.placement_of(src_cluster)
            dst_pe, _ = arch.placement_of(dst_cluster)
            if src_pe == dst_pe or edge.bytes_ == 0:
                return 0.0
            link = arch.find_link_between(src_pe, dst_pe)
            if link is not None:
                return link.comm_time(edge.bytes_)
        return pessimistic.comm_time(graph, edge)

    return PriorityContext(exec_time=exec_time, comm_time=comm_time)


def _compute_priorities(
    spec: SystemSpec, context: PriorityContext
) -> Dict[str, Dict[str, float]]:
    """Task priority levels for every graph under ``context``."""
    return {
        name: compute_task_priorities(spec.graph(name), context)
        for name in spec.graph_names()
    }


def _coupled_graphs(
    arch: Architecture, clustering: ClusteringResult, graph_name: str
) -> List[str]:
    """Graphs sharing any PE instance with ``graph_name`` (one hop).

    The fast inner loop schedules only these; others cannot be
    perturbed by the candidate placement.
    """
    pes_of_graph: Set[str] = set()
    for cluster in clustering.clusters.values():
        if cluster.graph == graph_name and arch.is_allocated(cluster.name):
            pes_of_graph.add(arch.placement_of(cluster.name)[0])
    coupled = {graph_name}
    for cluster in clustering.clusters.values():
        if arch.is_allocated(cluster.name):
            if arch.placement_of(cluster.name)[0] in pes_of_graph:
                coupled.add(cluster.graph)
    return sorted(coupled)


def _repair(
    spec: SystemSpec,
    assoc: AssociationArray,
    clustering: ClusteringResult,
    current: EvalResult,
    priorities: Dict[str, Dict[str, float]],
    compat,
    config: CrusadeConfig,
    tracer: Tracer,
    max_rounds: int = 8,
    candidates_per_round: int = 5,
    engine: Optional[IncrementalEngine] = None,
) -> EvalResult:
    """Re-home clusters of deadline-missing tasks until feasible or
    out of rounds.

    Each round takes the latest full evaluation's worst offenders,
    deallocates each offender's cluster on a cloned architecture, and
    retries its allocation array under *full* (not subset) evaluation;
    the first strictly-badness-reducing placement wins.  With the
    incremental engine, each re-homing is applied as a copy-on-write
    overlay on the stripped architecture (cloned only when kept) and
    its evaluation reuses cached component fragments -- repair moves
    one cluster at a time, so almost every component is a cache hit.

    With pruning active, each re-homing's full-scope badness floor
    (:class:`~repro.perf.prune.RepairBound`) is checked first: a
    candidate whose floor is already >= the incumbent's badness can
    neither be feasible (its floor then has >= 1 miss/overload) nor
    strictly improve, so it is skipped without scheduling.
    """
    repair_bound = (
        RepairBound(spec, assoc, clustering) if pruning_active(config) else None
    )
    for _ in range(max_rounds):
        if current.report.all_met:
            break
        tracer.incr("repair.rounds")
        late_keys = sorted(
            (k for k, v in current.report.lateness.items() if v > 1e-12),
            key=lambda k: -current.report.lateness[k],
        )
        offender_clusters: List[str] = []

        def add_offender(graph_name: str, task_name: str) -> None:
            cluster = clustering.cluster_of(graph_name, task_name)
            if cluster.name not in offender_clusters:
                offender_clusters.append(cluster.name)

        for key in late_keys:
            graph_name, copy_index, task_name = key
            # The late task's own cluster, then the critical chain
            # upstream: predecessors whose data arrival dominated the
            # task's start are the actual bottleneck.
            add_offender(graph_name, task_name)
            graph = spec.graph(graph_name)
            walker = task_name
            for _ in range(3):
                preds = graph.predecessors(walker)
                if not preds:
                    break
                walker = max(
                    preds,
                    key=lambda p: current.schedule.finish_of(
                        (graph_name, copy_index, p)
                    ),
                )
                add_offender(graph_name, walker)
            if len(offender_clusters) >= candidates_per_round:
                break
        # Oversubscribed resources (utilization > 1 over the
        # hyperperiod) may carry no late *explicit* copy; shed load by
        # re-homing their busiest clusters of the fastest graphs.
        for resource in sorted(current.report.overloaded):
            residents = [
                name
                for name, (pe_id, _) in current.arch.cluster_alloc.items()
                if pe_id == resource
            ]
            residents.sort(
                key=lambda name: (
                    spec.graph(clustering.clusters[name].graph).period,
                    -clustering.clusters[name].size,
                    name,
                )
            )
            for name in residents:
                if name not in offender_clusters:
                    offender_clusters.append(name)
                if len(offender_clusters) >= 2 * candidates_per_round:
                    break
        round_best: Optional[EvalResult] = None
        solved = False
        for cluster_name in offender_clusters:
            cluster = clustering.clusters[cluster_name]
            stripped = current.arch.clone()
            old_pe, _ = stripped.deallocate_cluster(
                cluster_name,
                gates=cluster.area_gates,
                pins=cluster.pins,
                memory=cluster.memory,
            )
            if not stripped.pe(old_pe).cluster_modes:
                stripped.remove_pe(old_pe)
            options = build_allocation_array(
                cluster,
                stripped,
                clustering,
                spec,
                config.delay_policy,
                compat=compat,
                max_existing_options=config.max_existing_options,
                allow_new_modes=config.reconfiguration,
                tracer=tracer,
            )
            for option in options:
                tracer.incr("repair.rehomings_tried")
                if engine is not None:
                    try:
                        handle = apply_option_cow(
                            option, stripped, cluster, clustering, spec,
                            "fastest",
                        )
                    except AllocationError:
                        continue
                    tracer.incr("perf.cow.applies")
                    try:
                        if repair_bound is not None:
                            floor = repair_bound.badness_floor(stripped)
                            if floor >= current.badness():
                                tracer.incr("prune.cut")
                                tracer.incr("prune.cut.repair")
                                continue
                            tracer.incr("prune.kept")
                            tracer.incr("prune.kept.repair")
                        verdict = evaluate_architecture(
                            spec,
                            assoc,
                            clustering,
                            stripped,
                            priorities,
                            preemption=config.preemption,
                            tracer=tracer,
                            engine=engine,
                        )
                        # Materialize the applied state only for
                        # verdicts the selection below will keep.
                        if verdict.report.all_met or (
                            verdict.badness() < current.badness()
                            and (
                                round_best is None
                                or verdict.badness() < round_best.badness()
                            )
                        ):
                            verdict = replace(verdict, arch=stripped.clone())
                    finally:
                        handle.revert()
                        tracer.incr("perf.cow.reverts")
                else:
                    trial = stripped.clone()
                    try:
                        apply_option(
                            option, trial, cluster, clustering, spec, "fastest"
                        )
                    except AllocationError:
                        continue
                    if repair_bound is not None:
                        floor = repair_bound.badness_floor(trial)
                        if floor >= current.badness():
                            tracer.incr("prune.cut")
                            tracer.incr("prune.cut.repair")
                            continue
                        tracer.incr("prune.kept")
                        tracer.incr("prune.kept.repair")
                    verdict = evaluate_architecture(
                        spec,
                        assoc,
                        clustering,
                        trial,
                        priorities,
                        preemption=config.preemption,
                        tracer=tracer,
                    )
                if verdict.report.all_met:
                    current = verdict
                    solved = True
                    tracer.incr("repair.rehomings_kept")
                    tracer.event(
                        "repair.solved", cluster=cluster_name,
                        placement=option.describe(),
                    )
                    break
                if verdict.badness() < current.badness() and (
                    round_best is None or verdict.badness() < round_best.badness()
                ):
                    round_best = verdict
            if solved:
                break
        if solved:
            break
        if round_best is None:
            break
        tracer.incr("repair.rehomings_kept")
        current = round_best
    return current


def crusade(
    spec: SystemSpec,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    clustering: Optional[ClusteringResult] = None,
    baseline: Optional[CoSynthesisResult] = None,
    tracer: Optional[Tracer] = None,
    engine: Optional[IncrementalEngine] = None,
) -> CoSynthesisResult:
    """Co-synthesize an architecture for ``spec``.

    Returns a :class:`~repro.core.report.CoSynthesisResult`; when the
    heuristic cannot meet every deadline the result is returned with
    ``feasible=False`` rather than raising, so callers can inspect how
    close it came.  ``clustering`` lets CRUSADE-FT substitute its
    fault-tolerance-level clustering (Section 6).

    When dynamic reconfiguration is enabled the driver explores two
    routes and keeps the cheaper feasible one, mirroring the paper's
    two entry points into reconfiguration (Sections 4.1-4.2): (a)
    mode-aware allocation followed by PPE merging, and (b) the plain
    single-mode architecture improved by the Figure 3 merge loop.
    Because route (b) starts from the baseline and only accepts
    cost-decreasing merges, reconfiguration never yields a costlier
    architecture than the baseline.  ``baseline`` lets callers that
    already synthesized the reconfiguration-free architecture (the
    Table 2 harness) donate it; otherwise it is computed internally.

    ``tracer`` (see :mod:`repro.obs`) collects per-phase timers,
    counters and structured events; the default null tracer makes
    every instrumentation site a no-op, and tracing never changes the
    synthesized result -- only observes it.

    ``engine`` (see :mod:`repro.perf`) is the incremental evaluation
    engine; by default one is created per call when
    ``config.incremental`` holds (and ``REPRO_NO_INCREMENTAL`` is
    unset).  The nested baseline synthesis of route (b) shares its
    parent's engine, so fragments cached during the main allocation
    are reused there.  Engine or not, results are byte-identical.
    """
    started = time.perf_counter()
    tracer = resolve_tracer(tracer)
    if library is None:
        library = default_library()
    if config is None:
        config = CrusadeConfig()
    engine = resolve_engine(config, engine)

    # ------------------------------------------------------------- 1.
    with tracer.phase("preprocess"):
        library.validate()
        warnings = validate_spec(spec, library)
        assoc = AssociationArray(
            spec, max_explicit_copies=config.max_explicit_copies
        )
        pessimistic = PriorityContext.pessimistic(library)

    if clustering is None:
        with tracer.phase("clustering"):
            if config.clustering:
                clustering = cluster_spec(
                    spec,
                    library,
                    context=pessimistic,
                    delay_policy=config.delay_policy,
                    max_cluster_size=config.max_cluster_size,
                )
            else:
                clustering = trivial_clustering(spec, library)

    compat: Optional[CompatibilityAnalysis] = None
    if config.reconfiguration and spec.has_explicit_compatibility:
        compat = CompatibilityAnalysis.from_spec(spec)

    # ------------------------------------------------------------- 2.
    arch = Architecture(library)
    priorities = _compute_priorities(spec, pessimistic)
    fast = config.use_fast_inner_loop(spec.total_tasks)
    prune_on = pruning_active(config)
    allocation_feasible = True
    scorer: Optional[ProcessPoolScorer] = None
    if config.parallel_eval >= 2:
        # 0 and 1 both mean the serial path: a 1-worker pool can never
        # beat it (see repro.perf.procpool).
        scorer = ProcessPoolScorer(
            config.parallel_eval, use_engine=engine is not None
        )
    # Allocation-aware priorities reuse previous values for graphs the
    # placement cannot have perturbed -- but only once the previous
    # values were themselves allocation-aware (the pessimistic
    # pre-allocation levels price intra-cluster edges differently).
    allocation_aware = False

    with tracer.phase("allocation"):
      try:
        for cluster in clustering.ordered_by_priority():
            tracer.incr("alloc.clusters")
            chosen: Optional[EvalResult] = None
            chosen_touched: Optional[Set[str]] = None
            pruner = (
                CandidatePruner(spec, assoc, clustering, cluster)
                if prune_on
                else None
            )
            # Least-infeasible bookkeeping.  The serial loop's strict
            # improvement rule is the argmin of (badness, seq), where
            # seq numbers candidates in consideration order across
            # strategies; tracking the key explicitly lets pruned
            # candidates (which carry admissible badness *floors*) and
            # the pool path (which ships verdict summaries, not
            # architectures) reconstruct the identical choice.
            fallback: Optional[EvalResult] = None
            fallback_key: Optional[tuple] = None
            fallback_lazy: Optional[tuple] = None
            pruned: List[tuple] = []
            seq = 0
            gen_token: Optional[int] = None

            def evaluate_cloned(option, strategy):
                """Evaluate one candidate locally on a cloned arch."""
                trial = arch.clone()
                try:
                    apply_option(
                        option, trial, cluster, clustering, spec, strategy
                    )
                except AllocationError:
                    return None
                graphs = (
                    _coupled_graphs(trial, clustering, cluster.graph)
                    if fast
                    else None
                )
                return evaluate_architecture(
                    spec,
                    assoc,
                    clustering,
                    trial,
                    priorities,
                    preemption=config.preemption,
                    graphs=graphs,
                    tracer=tracer,
                    engine=engine,
                )

            for strategy in config.link_strategies:
                options = build_allocation_array(
                    cluster,
                    arch,
                    clustering,
                    spec,
                    config.delay_policy,
                    compat=compat,
                    max_existing_options=config.max_existing_options,
                    allow_new_modes=config.reconfiguration,
                    tracer=tracer,
                )
                if not options:
                    continue
                if scorer is not None and scorer.worth_pool(len(options)):
                    if gen_token is None:
                        gen_token = scorer.begin_cluster({
                            "spec": spec,
                            "assoc": assoc,
                            "clustering": clustering,
                            "arch": arch,
                            "cluster": cluster,
                            "priorities": priorities,
                            "preemption": config.preemption,
                            "fast": fast,
                            "prune": prune_on,
                        })
                    records = scorer.score(gen_token, options, strategy, tracer)
                    # Decision counters on the consuming side, in index
                    # order, exactly like the serial paths; records past
                    # the first feasible one (same wave) are drained
                    # without counting, matching the documented
                    # deterministic evaluation-counter overshoot.
                    for offset, record in enumerate(records):
                        kind, badness, floor, reason = record
                        option = options[offset]
                        tracer.incr("alloc.options.considered")
                        seq += 1
                        if kind == "apply_failed":
                            tracer.incr("alloc.options.apply_failed")
                            continue
                        if kind == "pruned":
                            tracer.incr("prune.cut")
                            tracer.incr("prune.cut." + reason)
                            pruned.append((tuple(floor), seq, option, strategy))
                            continue
                        if prune_on:
                            tracer.incr("prune.kept")
                        if kind == "feasible":
                            # Workers ship verdict summaries, not
                            # schedules; materialize the winner locally.
                            chosen = evaluate_cloned(option, strategy)
                            break
                        tracer.incr("alloc.options.infeasible")
                        key = (tuple(badness), seq)
                        if fallback_key is None or key < fallback_key:
                            fallback_key = key
                            fallback_lazy = (option, strategy)
                            fallback = None
                elif engine is not None:
                    # Copy-on-write: apply each candidate to the
                    # working architecture and revert unless it wins.
                    for option in options:
                        tracer.incr("alloc.options.considered")
                        seq += 1
                        try:
                            handle = apply_option_cow(
                                option, arch, cluster, clustering, spec,
                                strategy,
                            )
                        except AllocationError:
                            tracer.incr("alloc.options.apply_failed")
                            continue
                        tracer.incr("perf.cow.applies")
                        keep = False
                        try:
                            graphs = (
                                _coupled_graphs(arch, clustering, cluster.graph)
                                if fast
                                else None
                            )
                            if pruner is not None:
                                cut = pruner.bound(arch, option, graphs, tracer)
                                if cut is not None:
                                    tracer.incr("prune.cut")
                                    tracer.incr("prune.cut." + cut.reason)
                                    pruned.append(
                                        (cut.floor, seq, option, strategy)
                                    )
                                    continue
                                tracer.incr("prune.kept")
                            verdict = evaluate_architecture(
                                spec,
                                assoc,
                                clustering,
                                arch,
                                priorities,
                                preemption=config.preemption,
                                graphs=graphs,
                                tracer=tracer,
                                engine=engine,
                            )
                            if verdict.feasible:
                                chosen = verdict
                                chosen_touched = handle.touched_pes
                                keep = True
                            else:
                                tracer.incr("alloc.options.infeasible")
                                key = (verdict.badness(), seq)
                                if fallback_key is None or key < fallback_key:
                                    fallback = replace(
                                        verdict, arch=arch.clone()
                                    )
                                    fallback_key = key
                                    fallback_lazy = None
                        finally:
                            if keep:
                                tracer.incr("perf.cow.commits")
                            else:
                                handle.revert()
                                tracer.incr("perf.cow.reverts")
                        if chosen is not None:
                            break
                else:
                    for option in options:
                        tracer.incr("alloc.options.considered")
                        seq += 1
                        trial = arch.clone()
                        try:
                            apply_option(
                                option, trial, cluster, clustering, spec,
                                strategy,
                            )
                        except AllocationError:
                            tracer.incr("alloc.options.apply_failed")
                            continue
                        # Coupled graphs are computed on the *trial* so
                        # the placement's new resource sharing is
                        # verified too.
                        graphs = (
                            _coupled_graphs(trial, clustering, cluster.graph)
                            if fast
                            else None
                        )
                        if pruner is not None:
                            cut = pruner.bound(trial, option, graphs, tracer)
                            if cut is not None:
                                tracer.incr("prune.cut")
                                tracer.incr("prune.cut." + cut.reason)
                                pruned.append(
                                    (cut.floor, seq, option, strategy)
                                )
                                continue
                            tracer.incr("prune.kept")
                        verdict = evaluate_architecture(
                            spec,
                            assoc,
                            clustering,
                            trial,
                            priorities,
                            preemption=config.preemption,
                            graphs=graphs,
                            tracer=tracer,
                        )
                        if verdict.feasible:
                            chosen = verdict
                            break
                        tracer.incr("alloc.options.infeasible")
                        key = (verdict.badness(), seq)
                        if fallback_key is None or key < fallback_key:
                            fallback = verdict
                            fallback_key = key
                            fallback_lazy = None
                if chosen is not None:
                    break
            if chosen is None and pruned:
                # Deferred least-infeasible reconstruction.  Pruned
                # candidates are provably infeasible but may still be
                # the least-infeasible fallback; their floors are
                # admissible badness lower bounds, so evaluating them
                # best-bound-first and skipping any whose (floor, seq)
                # cannot beat the incumbent (badness, seq) yields the
                # exhaustive loop's exact choice.
                pruned.sort(key=lambda item: (item[0], item[1]))
                for floor, pseq, option, pstrategy in pruned:
                    if fallback_key is not None and (
                        (tuple(floor), pseq) >= fallback_key
                    ):
                        tracer.incr("prune.fallback_skipped")
                        continue
                    tracer.incr("prune.fallback_evals")
                    verdict = evaluate_cloned(option, pstrategy)
                    if verdict is None:
                        continue
                    key = (verdict.badness(), pseq)
                    if fallback_key is None or key < fallback_key:
                        fallback = verdict
                        fallback_key = key
                        fallback_lazy = None
            if chosen is None and fallback is None and fallback_lazy is not None:
                # Pool path: the incumbent was tracked lazily; build
                # its full verdict now.
                fallback = evaluate_cloned(*fallback_lazy)
            if chosen is None:
                if fallback is None:
                    raise SynthesisError(
                        "no allocation option exists for cluster %r"
                        % (cluster.name,)
                    )
                chosen = fallback
                chosen_touched = None
                allocation_feasible = False
                tracer.incr("alloc.clusters.fallback")
                _log.debug(
                    "cluster %s: NO feasible option, kept least-infeasible",
                    cluster.name,
                )
            arch = chosen.arch
            placement = arch.placement_of(cluster.name)
            tracer.event(
                "cluster.placed",
                cluster=cluster.name,
                graph=cluster.graph,
                pe=placement[0],
                mode=placement[1],
                feasible=chosen is not fallback,
            )
            _log.debug(
                "cluster %s (graph %s, %d gates, %d pins) -> %s mode %d",
                cluster.name,
                cluster.graph,
                cluster.area_gates,
                cluster.pins,
                placement[0],
                placement[1],
            )
            context = _allocation_aware_context(library, arch, clustering)
            if engine is not None and allocation_aware and chosen_touched is not None:
                dirty = {cluster.graph}
                for name, (pe_id, _) in arch.cluster_alloc.items():
                    if pe_id in chosen_touched:
                        dirty.add(clustering.clusters[name].graph)
                priorities = recompute_priorities(
                    spec, context, priorities, dirty, tracer
                )
            else:
                priorities = _compute_priorities(spec, context)
            allocation_aware = True
      finally:
        if scorer is not None:
            scorer.close()

    # Full-system validation of the allocation-phase architecture.
    with tracer.phase("full_check"):
        full = evaluate_architecture(
            spec, assoc, clustering, arch, priorities,
            preemption=config.preemption, tracer=tracer, engine=engine,
        )
    if not full.report.all_met:
        # The fast inner loop verifies only resource-coupled graphs, so
        # transitive interference may surface only now; repair by
        # re-homing the clusters of late tasks (a bounded re-allocation
        # pass -- the heuristic still cannot guarantee optimality).
        with tracer.phase("repair"):
            full = _repair(
                spec, assoc, clustering, full, priorities, compat, config,
                tracer, engine=engine,
            )
        arch = full.arch
        context = _allocation_aware_context(library, arch, clustering)
        priorities = _compute_priorities(spec, context)
        allocation_feasible = full.report.all_met

    # ------------------------------------------------------------- 3.
    interface: Optional[InterfacePlan] = None
    merge_stats: Dict[str, int] = {}

    def make_interface_evaluator(route_priorities):
        """Trial evaluator bound to one route's priority levels:
        interface synthesis + full schedule."""

        def evaluate_with_interface(candidate: Architecture):
            try:
                plan = synthesize_interface(candidate, spec.boot_time_requirement)
            except SynthesisError:
                return None
            verdict = evaluate_architecture(
                spec,
                assoc,
                clustering,
                candidate,
                route_priorities,
                boot_time_fn=plan.boot_time_fn(),
                preemption=config.preemption,
                tracer=tracer,
                engine=engine,
            )
            verdict.interface = plan  # type: ignore[attr-defined]
            return verdict

        return evaluate_with_interface

    best = full
    if config.reconfiguration:
        resolved_compat = compat
        if resolved_compat is None:
            resolved_compat = CompatibilityAnalysis.from_schedule(
                spec, full.schedule
            )

        def merged_candidate(start_arch: Architecture):
            """Interface-synthesize then Figure 3-merge an architecture.

            Priority levels are recomputed for the start architecture:
            routes carry different allocations, and the scheduler's
            order must reflect the one it is verifying.
            """
            route_context = _allocation_aware_context(
                library, start_arch, clustering
            )
            route_priorities = _compute_priorities(spec, route_context)
            evaluator = make_interface_evaluator(route_priorities)
            seeded = evaluator(start_arch)
            if seeded is None or not seeded.feasible:
                return None, {}
            outcome = merge_reconfigurable_pes(
                spec,
                clustering,
                resolved_compat,
                config.delay_policy,
                seeded,
                evaluator,
                combine_modes=config.combine_modes,
                tracer=tracer,
                prune=prune_on,
            )
            stats = {
                "accepted": outcome.merges_accepted,
                "rejected": outcome.merges_rejected,
                "mode_combines": outcome.mode_combines,
                "rounds": outcome.rounds,
            }
            return outcome.result, stats

        # Route (a): the mode-aware allocation, merged (only worth
        # pursuing when the allocation phase met every deadline).
        candidate_a, stats_a = (None, {})
        if full.feasible:
            with tracer.phase("merge"):
                candidate_a, stats_a = merged_candidate(arch)
        # Route (b): the plain single-mode baseline, merged (Figure 3's
        # entry when compatibility vectors were not specified).  The
        # baseline synthesis re-enters the full pipeline and records
        # its time under the ordinary phase names, not under "merge".
        if baseline is None:
            baseline_config = CrusadeConfig(
                reconfiguration=False,
                clustering=config.clustering,
                max_explicit_copies=config.max_explicit_copies,
                max_cluster_size=config.max_cluster_size,
                delay_policy=config.delay_policy,
                preemption=config.preemption,
                max_existing_options=config.max_existing_options,
                fast_inner_loop=config.fast_inner_loop,
                link_strategies=config.link_strategies,
                incremental=config.incremental,
                parallel_eval=config.parallel_eval,
                prune=config.prune,
            )
            baseline = crusade(
                spec, library=library, config=baseline_config,
                clustering=clustering, tracer=tracer, engine=engine,
            )
        candidate_b, stats_b = (None, {})
        if baseline.feasible:
            with tracer.phase("merge"):
                candidate_b, stats_b = merged_candidate(baseline.arch.clone())

        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "route a: %s; route b: %s",
                "none" if candidate_a is None
                else "$%.0f %s" % (candidate_a.cost, candidate_a.feasible),
                "none" if candidate_b is None
                else "$%.0f %s" % (candidate_b.cost, candidate_b.feasible),
            )
        chosen_route = None
        for candidate, stats in ((candidate_a, stats_a), (candidate_b, stats_b)):
            if candidate is None or not candidate.feasible:
                continue
            if chosen_route is None or candidate.cost < chosen_route[0].cost:
                chosen_route = (candidate, stats)
        if chosen_route is not None:
            best, merge_stats = chosen_route
            arch = best.arch
            interface = getattr(best, "interface", None)

    if interface is None:
        # Either reconfiguration is off or merging never ran: still
        # synthesize the interface for the final architecture, with
        # the boot-time requirement tightened until the schedule
        # absorbs the chosen boot times.
        with tracer.phase("interface"):
            requirement = spec.boot_time_requirement
            for _ in range(config.interface_retries + 1):
                try:
                    plan = synthesize_interface(arch, requirement)
                except SynthesisError:
                    break
                verdict = evaluate_architecture(
                    spec,
                    assoc,
                    clustering,
                    arch,
                    priorities,
                    boot_time_fn=plan.boot_time_fn(),
                    preemption=config.preemption,
                    tracer=tracer,
                    engine=engine,
                )
                if verdict.feasible or not full.feasible:
                    best = verdict
                    interface = plan
                    break
                requirement /= 2.0

    # Feasibility is judged on the architecture actually returned: the
    # allocation phase may have dead-ended (allocation_feasible False)
    # and still been rescued by repair or by the baseline-seeded merge
    # route.
    feasible = best.report.all_met
    cpu_seconds = time.perf_counter() - started
    result = CoSynthesisResult(
        spec=spec,
        arch=best.arch,
        schedule=best.schedule,
        report=best.report,
        clustering=clustering,
        interface=interface,
        feasible=feasible,
        cpu_seconds=cpu_seconds,
        reconfiguration_enabled=config.reconfiguration,
        merge_stats=merge_stats,
        warnings=warnings,
    )
    if tracer.enabled:
        tracer.event("synthesis.done", system=spec.name, feasible=feasible,
                     cost=best.arch.cost)
        result.stats = tracer.stats(total_seconds=cpu_seconds)
    return result
