"""The CRUSADE co-synthesis algorithm (Section 5, Figure 5).

Flow (each step is a stage in :mod:`repro.core.stages`):

1. **Pre-processing** -- validate the specification, build the
   association array (hyperperiod copies), assign deadline-based
   priority levels and cluster the task graphs along critical paths.
2. **Synthesis** -- allocate clusters in decreasing priority order.
   For each cluster an allocation array of candidate placements is
   built (cheapest first) and each candidate is applied to a trial
   architecture, scheduled, and checked against every deadline; the
   first feasible candidate wins, priorities are recomputed with the
   new allocation, and the loop continues.  When no candidate is
   feasible the least-infeasible one is kept (heuristics can fail;
   the final result is flagged infeasible).
3. **Dynamic reconfiguration generation** -- the reconfiguration
   controller interface is synthesized (Section 4.4) and the Figure 3
   merge procedure folds compatible PPEs into multi-mode devices while
   deadlines and the boot-time requirement hold.

This module is the public entry point; the stage objects, the shared
:class:`~repro.core.stages.context.SynthesisContext` and the policy
hooks live in :mod:`repro.core.stages`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.cluster.clustering import ClusteringResult
from repro.core.config import CrusadeConfig
from repro.core.report import CoSynthesisResult
from repro.core.stages.context import SynthesisContext
from repro.core.stages.pipeline import synthesize
from repro.core.stages.repair import repair_pass
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
    coupled_graphs,
)
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer, resolve_tracer
from repro.perf.engine import IncrementalEngine
from repro.perf.store import resolve_store, store_reads_enabled
from repro.resources.catalog import default_library
from repro.resources.library import ResourceLibrary

# Pre-stage-refactor aliases: the helpers grew public homes in
# repro.core.stages but callers (and tests) still reach them here.
_allocation_aware_context = allocation_aware_context
_compute_priorities = compute_priorities
_coupled_graphs = coupled_graphs
_repair = repair_pass


def crusade(
    spec: SystemSpec,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    clustering: Optional[ClusteringResult] = None,
    baseline: Optional[CoSynthesisResult] = None,
    tracer: Optional[Tracer] = None,
    engine: Optional[IncrementalEngine] = None,
) -> CoSynthesisResult:
    """Co-synthesize an architecture for ``spec``.

    Returns a :class:`~repro.core.report.CoSynthesisResult`; when the
    heuristic cannot meet every deadline the result is returned with
    ``feasible=False`` rather than raising, so callers can inspect how
    close it came.  ``clustering`` lets CRUSADE-FT substitute its
    fault-tolerance-level clustering (Section 6).

    When dynamic reconfiguration is enabled the driver explores two
    routes and keeps the cheaper feasible one, mirroring the paper's
    two entry points into reconfiguration (Sections 4.1-4.2): (a)
    mode-aware allocation followed by PPE merging, and (b) the plain
    single-mode architecture improved by the Figure 3 merge loop.
    Because route (b) starts from the baseline and only accepts
    cost-decreasing merges, reconfiguration never yields a costlier
    architecture than the baseline.  ``baseline`` lets callers that
    already synthesized the reconfiguration-free architecture (the
    Table 2 harness) donate it; otherwise it is computed internally.

    ``tracer`` (see :mod:`repro.obs`) collects per-phase timers,
    counters and structured events; the default null tracer makes
    every instrumentation site a no-op, and tracing never changes the
    synthesized result -- only observes it.

    ``engine`` (see :mod:`repro.perf`) is the incremental evaluation
    engine; by default one is created per call when
    ``config.incremental`` holds (and ``REPRO_NO_INCREMENTAL`` is
    unset).  The nested baseline synthesis of route (b) shares its
    parent's engine, so fragments cached during the main allocation
    are reused there.  Engine or not, results are byte-identical.

    ``config.policy`` names the :class:`~repro.core.stages.policies.
    SynthesisPolicy` whose hooks steer the heuristic's open decision
    points (cluster order, candidate preference, merge acceptance);
    the default policy reproduces the paper's rules exactly.

    ``config.cache_dir`` (or the ``REPRO_CACHE_DIR`` environment
    variable) opens the persistent content-addressed synthesis store
    (:mod:`repro.perf.store`): an exact resubmission returns the
    cached result without synthesizing, a near-hit resubmission
    warm-starts the engine's fragment cache from disk, and either way
    the returned result is byte-identical to a cold run
    (``warm_start=False`` / ``REPRO_NO_WARM_START=1`` force cold runs
    that still warm the store).  Calls donating a ``clustering``,
    ``baseline`` or ``engine`` bypass the full-result tier -- their
    inputs are not captured by its key -- but still share fragments
    through the donated or created engine.
    """
    started = time.perf_counter()
    if config is None:
        config = CrusadeConfig()
    store = resolve_store(config)
    resolved_tracer = resolve_tracer(tracer)
    exact_key = None
    resolved_library = library
    if store is not None and clustering is None and baseline is None \
            and engine is None:
        if resolved_library is None:
            resolved_library = default_library()
        exact_key = store.result_key(spec, resolved_library, config)
        if store_reads_enabled(config):
            cached = store.load_result(exact_key, tracer=resolved_tracer)
            if cached is not None:
                resolved_tracer.incr("perf.store.hit")
                elapsed = time.perf_counter() - started
                cached.cpu_seconds = elapsed
                if resolved_tracer.enabled:
                    resolved_tracer.event(
                        "store.hit", system=spec.name, key=exact_key,
                        feasible=cached.feasible, cost=cached.cost,
                    )
                    cached.stats = resolved_tracer.stats(total_seconds=elapsed)
                return cached
            resolved_tracer.incr("perf.store.miss")
    ctx = SynthesisContext.begin(
        spec,
        library=resolved_library,
        config=config,
        clustering=clustering,
        baseline=baseline,
        tracer=resolved_tracer,
        engine=engine,
    )
    if store is not None and ctx.engine is not None and ctx.engine.store is None:
        from repro.perf.warmstart import bind_engine

        bind_engine(ctx.engine, store, spec, ctx.library, config,
                    resolved_tracer)
    result = synthesize(ctx)
    if exact_key is not None:
        from repro.perf.warmstart import index_record

        # Persist run-neutral: the stats block is the one legitimately
        # run-varying field, so a cached result should not carry the
        # warming run's counters into a later hit (the hit path
        # snapshots its own stats when traced).
        stashed_stats = result.stats
        result.stats = None
        try:
            store.save_result(exact_key, result, tracer=resolved_tracer)
        finally:
            result.stats = stashed_stats
        store.save_index(
            spec.name, index_record(spec, ctx.library, config, exact_key)
        )
    return result
