"""The CRUSADE co-synthesis algorithm (Section 5, Figure 5).

Flow (each step is a stage in :mod:`repro.core.stages`):

1. **Pre-processing** -- validate the specification, build the
   association array (hyperperiod copies), assign deadline-based
   priority levels and cluster the task graphs along critical paths.
2. **Synthesis** -- allocate clusters in decreasing priority order.
   For each cluster an allocation array of candidate placements is
   built (cheapest first) and each candidate is applied to a trial
   architecture, scheduled, and checked against every deadline; the
   first feasible candidate wins, priorities are recomputed with the
   new allocation, and the loop continues.  When no candidate is
   feasible the least-infeasible one is kept (heuristics can fail;
   the final result is flagged infeasible).
3. **Dynamic reconfiguration generation** -- the reconfiguration
   controller interface is synthesized (Section 4.4) and the Figure 3
   merge procedure folds compatible PPEs into multi-mode devices while
   deadlines and the boot-time requirement hold.

This module is the public entry point; the stage objects, the shared
:class:`~repro.core.stages.context.SynthesisContext` and the policy
hooks live in :mod:`repro.core.stages`.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.clustering import ClusteringResult
from repro.core.config import CrusadeConfig
from repro.core.report import CoSynthesisResult
from repro.core.stages.context import SynthesisContext
from repro.core.stages.pipeline import synthesize
from repro.core.stages.repair import repair_pass
from repro.core.stages.support import (
    allocation_aware_context,
    compute_priorities,
    coupled_graphs,
)
from repro.graph.spec import SystemSpec
from repro.obs.trace import Tracer
from repro.perf.engine import IncrementalEngine
from repro.resources.library import ResourceLibrary

# Pre-stage-refactor aliases: the helpers grew public homes in
# repro.core.stages but callers (and tests) still reach them here.
_allocation_aware_context = allocation_aware_context
_compute_priorities = compute_priorities
_coupled_graphs = coupled_graphs
_repair = repair_pass


def crusade(
    spec: SystemSpec,
    library: Optional[ResourceLibrary] = None,
    config: Optional[CrusadeConfig] = None,
    clustering: Optional[ClusteringResult] = None,
    baseline: Optional[CoSynthesisResult] = None,
    tracer: Optional[Tracer] = None,
    engine: Optional[IncrementalEngine] = None,
) -> CoSynthesisResult:
    """Co-synthesize an architecture for ``spec``.

    Returns a :class:`~repro.core.report.CoSynthesisResult`; when the
    heuristic cannot meet every deadline the result is returned with
    ``feasible=False`` rather than raising, so callers can inspect how
    close it came.  ``clustering`` lets CRUSADE-FT substitute its
    fault-tolerance-level clustering (Section 6).

    When dynamic reconfiguration is enabled the driver explores two
    routes and keeps the cheaper feasible one, mirroring the paper's
    two entry points into reconfiguration (Sections 4.1-4.2): (a)
    mode-aware allocation followed by PPE merging, and (b) the plain
    single-mode architecture improved by the Figure 3 merge loop.
    Because route (b) starts from the baseline and only accepts
    cost-decreasing merges, reconfiguration never yields a costlier
    architecture than the baseline.  ``baseline`` lets callers that
    already synthesized the reconfiguration-free architecture (the
    Table 2 harness) donate it; otherwise it is computed internally.

    ``tracer`` (see :mod:`repro.obs`) collects per-phase timers,
    counters and structured events; the default null tracer makes
    every instrumentation site a no-op, and tracing never changes the
    synthesized result -- only observes it.

    ``engine`` (see :mod:`repro.perf`) is the incremental evaluation
    engine; by default one is created per call when
    ``config.incremental`` holds (and ``REPRO_NO_INCREMENTAL`` is
    unset).  The nested baseline synthesis of route (b) shares its
    parent's engine, so fragments cached during the main allocation
    are reused there.  Engine or not, results are byte-identical.

    ``config.policy`` names the :class:`~repro.core.stages.policies.
    SynthesisPolicy` whose hooks steer the heuristic's open decision
    points (cluster order, candidate preference, merge acceptance);
    the default policy reproduces the paper's rules exactly.
    """
    ctx = SynthesisContext.begin(
        spec,
        library=library,
        config=config,
        clustering=clustering,
        baseline=baseline,
        tracer=tracer,
        engine=engine,
    )
    return synthesize(ctx)
