"""The synthesis job server: admission, dedupe, coalescing, dispatch.

:class:`SynthesisServer` is one long-running asyncio process serving
synthesis over HTTP (see :mod:`repro.service.http` for the deliberate
protocol subset).  A ``POST /synthesize`` request travels four
stations, each cheaper than the next would be:

1. **Admission** -- the body is parsed and schema-validated
   (:func:`repro.io.service_json.validate_request`) *before* anything
   touches the engine; malformed requests cost one parse and get a
   400 with the full error list.
2. **Exact-hit cache probe** -- the request's content-address triple
   (spec digest, catalog digest, semantic config digest -- the same
   key :mod:`repro.perf.store` files results under) is computed and
   the store's full-result tier probed; a hit is served without
   queueing anything (``cache_hit: true``).
3. **In-flight coalescing** -- a request whose triple matches a job
   already queued or running attaches to that job's future instead of
   dispatching a duplicate (``coalesced: true``); N identical
   concurrent submissions cost one synthesis.
4. **Dispatch** -- a novel request becomes a ``synthesize`` job
   (:mod:`repro.campaign.jobs`) on the pull-based shard pool
   (:mod:`repro.service.pool`).  The worker's own ``crusade`` call
   write-throughs the store, so the *next* exact resubmission stops
   at station 2.

Failure is structured at every station: worker crashes/timeouts/
errors surface as ``status: "failed"`` response documents (HTTP 200
-- the request was valid; the *job* failed), never hung connections.
``GET /healthz`` and ``GET /stats`` expose liveness and the
``service.*`` obs counters; ``POST /drain`` is the graceful
shutdown used by rolling deploys: stop admitting, finish the
backlog, stop the workers, then report ``drained``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional

from repro.core.config import CrusadeConfig
from repro.io.service_json import (
    RequestValidationError,
    SERVICE_SCHEMA_VERSION,
    done_response,
    error_body,
    failed_response,
    validate_request,
)
from repro.io.result_json import result_to_dict
from repro.io.spec_json import spec_to_dict
from repro.obs.trace import Tracer
from repro.perf.store import (
    SynthesisStore,
    catalog_digest,
    config_digest,
    spec_digest,
    store_reads_enabled,
)
from repro.resources.catalog import default_library
from repro.service.http import HttpError, read_request, render_response
from repro.service.pool import PoolClosed, ShardPool


class SynthesisServer:
    """One synthesis-as-a-service front end.

    ``workers`` shard processes compute novel requests; ``cache_dir``
    (optional but strongly recommended) opens the persistent
    content-addressed store that serves exact resubmissions without
    computing.  ``retries``/``timeout_s`` are the shard pool's
    supervision policy.  ``port=0`` binds an ephemeral port,
    re-published on :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        retries: int = 1,
        timeout_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        pool: Optional[ShardPool] = None,
        transport: Optional[str] = None,
        worker_port: Optional[int] = None,
    ) -> None:
        """Configure the server; nothing binds or spawns until
        :meth:`start`.  ``pool`` substitutes a pre-built (or fake)
        shard pool -- the test seam.  ``transport`` picks the shard
        pool's worker transport; ``worker_port`` opens the remote
        ``repro worker --connect`` dial-in listener."""
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        # A served process always counts: /stats must answer with real
        # numbers even when nobody asked for event sinks, so the null
        # tracer is not an acceptable default here.
        self.tracer = Tracer() if tracer is None else tracer
        self.pool = pool if pool is not None else ShardPool(
            workers=workers, retries=retries, timeout_s=timeout_s,
            tracer=self.tracer, transport=transport,
            worker_port=worker_port,
        )
        self.store: Optional[SynthesisStore] = (
            SynthesisStore(cache_dir) if cache_dir else None
        )
        self._library = default_library()
        self._catalog_digest = catalog_digest(self._library)
        #: key -> Future resolving to the leader's outcome dict.
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set by the first drain() caller; later callers await it, so
        #: the pool drains exactly once (py3.9-safe: no loop-bound
        #: primitives are created outside a running loop).
        self._drain_task: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the shard pool and bind the listening socket."""
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self.tracer.event(
            "service.start", host=self.host, port=self.port,
            workers=getattr(self.pool, "workers", 0),
            cache_dir=self.cache_dir or "",
        )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish the backlog.

        New ``/synthesize`` requests are refused with 503 the moment
        this is called; queued and in-flight jobs run to completion
        (their clients get real responses); then the shard workers are
        stopped.  ``/healthz`` and ``/stats`` keep answering so
        orchestrators can watch the drain finish.
        """
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_once()
            )
        await asyncio.shield(self._drain_task)

    async def _drain_once(self) -> None:
        """The single real drain behind :meth:`drain`."""
        await self.pool.drain()
        self.tracer.event("service.drain", backlog=self.pool.backlog)

    async def close(self) -> None:
        """Stop listening and tear the pool down (drains first)."""
        await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.tracer.event("service.end")

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has been initiated."""
        return self._drain_task is not None

    @property
    def drained(self) -> bool:
        """Whether the backlog is finished and workers are stopped."""
        return self._drain_task is not None and self._drain_task.done()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Serve one request/response exchange, then close."""
        try:
            status, payload = await self._respond(reader)
            if status is None:
                return
            writer.write(render_response(status, payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client went away; nothing to salvage
        finally:
            try:
                writer.close()
                if hasattr(writer, "wait_closed"):
                    await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(self, reader):
        """Route one parsed request to ``(status, payload)``."""
        try:
            request = await read_request(reader)
        except HttpError as exc:
            kind = "payload-too-large" if exc.status == 413 else "invalid-json"
            self.tracer.incr("service.rejected")
            return exc.status, error_body(kind, exc.detail)
        if request is None:
            return None, None  # bare TCP probe; no response owed
        method, path, _headers, body = request
        self.tracer.incr("service.requests")
        try:
            return await self._route(method, path, body)
        except Exception as exc:  # the server must answer, whatever broke
            self.tracer.incr("service.errors.internal")
            return 500, error_body(
                "internal", "%s: %s" % (type(exc).__name__, exc)
            )

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch on (method, path); the endpoint table."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, self._healthz()
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, self._stats()
        if path == "/synthesize":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._synthesize(body)
        if path == "/drain":
            if method != "POST":
                return self._method_not_allowed(method, path)
            await self.drain()
            return 200, {"status": "drained", "backlog": self.pool.backlog}
        self.tracer.incr("service.rejected")
        return 404, error_body("not-found", "no endpoint %r" % (path,))

    def _method_not_allowed(self, method: str, path: str):
        """The 405 shape for a known path with the wrong method."""
        self.tracer.incr("service.rejected")
        return 405, error_body(
            "method-not-allowed", "%s is not allowed on %s" % (method, path)
        )

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        """The liveness document: worker and drain state."""
        status = "ok"
        if self.draining:
            status = "drained" if self.drained else "draining"
        return {
            "status": status,
            "version": SERVICE_SCHEMA_VERSION,
            "workers": getattr(self.pool, "workers", 0),
            "alive_workers": getattr(self.pool, "alive_workers", 0),
            "backlog": self.pool.backlog,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "cache": bool(self.store),
        }

    def _stats(self) -> Dict[str, Any]:
        """The observability document: every ``service.*`` and
        ``exec.workers.*`` counter, plus per-shard worker health."""
        worker_info = getattr(self.pool, "worker_info", None)
        return {
            "version": SERVICE_SCHEMA_VERSION,
            "counters": self.tracer.counters.as_dict(),
            "inflight_keys": len(self._inflight),
            "backlog": self.pool.backlog,
            "draining": self.draining,
            "workers": worker_info() if callable(worker_info) else [],
        }

    async def _synthesize(self, body: bytes):
        """Stations 1-4: admit, probe, coalesce, dispatch."""
        if self.draining:
            self.tracer.incr("service.rejected.draining")
            return 503, error_body(
                "draining", "the server is draining; resubmit elsewhere"
            )
        # -- station 1: admission ------------------------------------
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self.tracer.incr("service.rejected.invalid")
            return 400, error_body("invalid-json", "body is not JSON: %s" % exc)
        try:
            spec, overrides = validate_request(payload)
        except RequestValidationError as exc:
            self.tracer.incr("service.rejected.invalid")
            return 400, error_body(
                "bad-request", "request failed validation", errors=exc.errors
            )
        config = CrusadeConfig(cache_dir=self.cache_dir, **overrides)
        key_parts = {
            "spec": spec_digest(spec),
            "catalog": self._catalog_digest,
            "config": config_digest(config),
        }
        key = "%(spec)s-%(catalog)s-%(config)s" % key_parts
        # -- station 2: exact-hit probe ------------------------------
        probe_started = time.perf_counter()
        if self.store is not None and store_reads_enabled(config):
            cached = self.store.load_result(key, tracer=self.tracer)
            probe_s = time.perf_counter() - probe_started
            if cached is not None:
                self.tracer.incr("service.cache.hit")
                self.tracer.event(
                    "service.request", key=key, outcome="cache_hit",
                    probe_s=round(probe_s, 6),
                )
                return 200, done_response(
                    key_parts, result_to_dict(cached),
                    cache_hit=True, coalesced=False,
                )
        self.tracer.incr("service.cache.miss")
        # -- station 3: in-flight coalescing -------------------------
        leader_future = self._inflight.get(key)
        if leader_future is not None:
            self.tracer.incr("service.coalesced")
            outcome = await asyncio.shield(leader_future)
            self.tracer.event(
                "service.request", key=key, outcome="coalesced",
                status=outcome["status"],
            )
            return 200, self._job_response(key_parts, outcome, coalesced=True)
        # -- station 4: dispatch to the shard pool -------------------
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            outcome = await self._dispatch(key, spec, overrides)
            future.set_result(outcome)
        except BaseException as exc:
            future.set_exception(exc)
            # A coalesced waiter may already hold this future; the
            # exception must not also explode out of *this* frame
            # unobserved there.
            raise
        finally:
            self._inflight.pop(key, None)
        return 200, self._job_response(key_parts, outcome, coalesced=False)

    async def _dispatch(
        self, key: str, spec, overrides: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run one novel request on the pool; returns its verdict."""
        from repro.campaign.jobs import Job

        job_config = dict(overrides)
        if self.cache_dir:
            # The worker's own crusade() call read-probes (a racing
            # duplicate may have landed first) and write-throughs the
            # store, keyed identically: cache_dir is digest-neutral.
            job_config["cache_dir"] = self.cache_dir
        job = Job(
            id=key,
            kind="synthesize",
            example=spec.name,
            scale=1.0,
            variant="service",
            config=job_config,
            params={"spec": spec_to_dict(spec)},
        )
        dispatch_started = time.perf_counter()
        try:
            verdict = await self.pool.submit(key, job.to_dict())
        except PoolClosed:
            # Drain won the race after admission; degrade like a 503.
            verdict = {
                "status": "failed",
                "error": {"kind": "draining",
                          "detail": "the pool drained before dispatch"},
                "attempts": 0, "queue_wait_s": 0.0,
            }
        wall_s = time.perf_counter() - dispatch_started
        self.tracer.event(
            "service.request", key=key, outcome="computed",
            status=verdict["status"],
            queue_wait_s=verdict.get("queue_wait_s", 0.0),
            worker_wall_s=round(wall_s, 6),
            attempts=verdict.get("attempts", 0),
            shard=verdict.get("shard", -1),
        )
        return verdict

    def _job_response(
        self, key_parts: Dict[str, str], outcome: Dict[str, Any],
        coalesced: bool,
    ):
        """Map one pool verdict onto the response document."""
        if outcome["status"] == "done":
            return done_response(
                key_parts, outcome["result"]["result"],
                cache_hit=False, coalesced=coalesced,
            )
        error = outcome.get("error") or {}
        return failed_response(
            key_parts, error.get("kind", "error"), error.get("detail", ""),
            coalesced=coalesced,
        )


async def serve(server: SynthesisServer) -> None:
    """Start ``server`` and run until cancelled (the CLI's core)."""
    await server.start()
    try:
        await asyncio.Event().wait()  # cancelled by signal handlers
    finally:
        await server.close()
