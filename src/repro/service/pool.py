"""The service's shard pool: pull-based async supervision of workers.

One :class:`ShardPool` owns a set of
:class:`~repro.exec.supervise.SupervisedWorker` shards -- the
execution substrate's single supervision unit -- and exposes them to
the asyncio server as an awaitable :meth:`ShardPool.submit`.
Dispatch is **pull-based**: admitted jobs land on one shared
:class:`asyncio.Queue` and each shard's async loop pulls the next job
the moment its worker goes idle, so a slow synthesis on one shard
never head-blocks the others (the least-loaded-shard rule falls out
of the pull protocol for free).

Shards come in two flavors:

* **local** -- ``workers`` processes forked at :meth:`start` over the
  configured transport (``pipe`` default; ``socket`` runs the same
  loop over framed TCP);
* **remote** -- with ``worker_port`` set, the pool listens for
  ``repro worker --connect HOST:PORT`` dial-ins and *adopts* each as
  a new shard for as long as it stays connected.  An adopted shard's
  liveness is heartbeat freshness; when its host vanishes mid-job the
  attempt resolves as a ``crash`` like any local death, the
  unfinished job is re-queued for the remaining shards, and the shard
  retires.

Supervision is :meth:`SupervisedWorker.attempt` run on the event
loop's default executor (the blocking waits stay off the loop, so the
accept loop remains responsive while every shard is busy): crash /
timeout (the substrate's single SIGTERM -> SIGKILL escalation) /
error, with up to ``retries`` re-attempts.  A job that exhausts them
resolves to a structured ``{"status": "failed"}`` verdict -- never an
unresolved future, never a hung connection.

:meth:`ShardPool.drain` is the graceful-shutdown half of the
contract: it closes the queue to new submissions (the server starts
refusing with 503 first), lets every queued and in-flight job finish,
then stops the workers and the dial-in listener.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.obs.trace import Tracer, resolve_tracer
from repro.exec import (
    SocketTransport,
    SupervisedWorker,
    make_job_transport,
    welcome_message,
)
from repro.exec.frames import FrameConnection
from repro.exec.sockets import WorkerListener
from repro.exec.supervise import OK

#: Worker target resolved inside each shard process (the same
#: executor the campaign runner dispatches to).
JOB_TARGET = "repro.campaign.jobs:execute_job"

#: Supervision verdicts (the ``error.kind`` of a failed response).
CRASH = "crash"
TIMEOUT = "timeout"
ERROR = "error"


class PoolClosed(RuntimeError):
    """A job was submitted to a draining or closed pool."""


class _ShardRetired(RuntimeError):
    """An adopted remote worker is gone and cannot be replaced."""


class ShardPool:
    """A pull-based pool of supervised synthesis shards.

    ``workers`` local worker processes (over ``transport``), each
    paired with an async shard loop pulling from one shared queue;
    ``worker_port`` additionally accepts remote dial-in shards
    (``workers=0`` is legal then -- a pure listener pool).
    ``retries`` bounds re-attempts after a crash/timeout/error;
    ``timeout_s`` is the per-attempt wall-clock budget (``None`` =
    unbounded).  All counters land on ``tracer`` under
    ``service.jobs.*`` (supervision) and ``exec.workers.*``
    (substrate health).
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = 1,
        timeout_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        transport: Optional[str] = None,
        worker_port: Optional[int] = None,
        worker_host: str = "0.0.0.0",
    ) -> None:
        """Configure the pool; processes spawn in :meth:`start`."""
        if workers < 1 and worker_port is None:
            raise ValueError(
                "a shard pool needs >= 1 worker (or a worker_port "
                "accepting remote dial-ins)"
            )
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.retries = retries
        self.timeout_s = timeout_s
        self.tracer = resolve_tracer(tracer)
        self.transport = transport
        self.worker_port = worker_port
        self.worker_host = worker_host
        self._queue: Optional[asyncio.Queue] = None
        self._shards: list = []
        self._shard_workers: List[SupervisedWorker] = []
        self._listener: Optional[WorkerListener] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._next_shard = 0
        self._draining = False
        self._started = False
        self._inflight = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (and :meth:`drain` has not)."""
        return self._started

    @property
    def draining(self) -> bool:
        """Whether the pool has stopped accepting submissions."""
        return self._draining

    @property
    def alive_workers(self) -> int:
        """How many shard workers (local + adopted) are alive."""
        return sum(1 for w in self._shard_workers if w.alive)

    @property
    def backlog(self) -> int:
        """Jobs admitted but not yet resolved (queued + in flight)."""
        queued = self._queue.qsize() if self._queue is not None else 0
        return queued + self._inflight

    @property
    def listen_port(self) -> Optional[int]:
        """The bound dial-in port while listening, else ``None``."""
        return self._listener.port if self._listener is not None else None

    def worker_info(self) -> List[Dict[str, Any]]:
        """Per-shard health rows for ``/stats``: transport kind,
        liveness, restarts, jobs done, remote peer."""
        rows = []
        for i, worker in enumerate(self._shard_workers):
            row = worker.describe()
            row["shard"] = i
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the shard workers, their pull loops, and the dial-in
        listener (idempotent)."""
        if self._started:
            return
        self._queue = asyncio.Queue()
        self._loop = asyncio.get_running_loop()
        self._shard_workers = [
            SupervisedWorker(
                make_job_transport(JOB_TARGET, self.transport),
                tracer=self.tracer,
            )
            for _ in range(self.workers)
        ]
        for worker in self._shard_workers:
            # Spawning forks a process; cheap, but keep it off the loop.
            await self._loop.run_in_executor(None, worker.spawn)
        self._shards = [
            asyncio.ensure_future(self._shard_loop(i, worker))
            for i, worker in enumerate(self._shard_workers)
        ]
        self._next_shard = len(self._shard_workers)
        if self.worker_port is not None:
            self._listener = WorkerListener(
                self.worker_host, self.worker_port, self._on_dial_in
            )
            self._listener.start()
        self._draining = False
        self._started = True

    def _on_dial_in(self, conn: FrameConnection, hello: Dict[str, Any],
                    remote: str) -> None:
        """Listener-thread hook: trampoline adoption onto the loop."""
        if self._loop is None or self._draining:
            conn.close()
            return
        self._loop.call_soon_threadsafe(self._adopt, conn, remote)

    def _adopt(self, conn: FrameConnection, remote: str) -> None:
        """Adopt one dialed-in worker as a new shard (loop thread)."""
        if self._draining or not self._started:
            conn.close()
            return
        try:
            conn.send(welcome_message("job", target=JOB_TARGET))
        except (OSError, RuntimeError):
            conn.close()
            return
        worker = SupervisedWorker(
            SocketTransport.adopted(conn, remote), tracer=self.tracer
        )
        shard = self._next_shard
        self._next_shard += 1
        self._shard_workers.append(worker)
        self._shards.append(
            asyncio.ensure_future(self._shard_loop(shard, worker))
        )
        self.tracer.incr("service.workers.joined")
        self.tracer.incr("exec.workers.spawned")
        self.tracer.incr("exec.workers.transport.socket")
        self.tracer.event(
            "service.worker.join", shard=shard, remote=remote
        )

    async def submit(self, job_id: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Queue one job payload and await its supervision verdict.

        Returns ``{"status": "done", "result": ..., "attempts": n}``
        or ``{"status": "failed", "error": {"kind", "detail"},
        "attempts": n}``; raises :class:`PoolClosed` when draining.
        """
        if not self._started or self._draining:
            raise PoolClosed("the shard pool is not accepting jobs")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight += 1
        self._queue.put_nowait((job_id, payload, future, time.monotonic()))
        try:
            return await future
        finally:
            self._inflight -= 1

    async def drain(self) -> None:
        """Gracefully shut down: finish queued + in-flight jobs first.

        Idempotent; after it returns every submitted future is
        resolved and every worker process is stopped.
        """
        self._draining = True
        if not self._started:
            return
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for _ in self._shards:
            self._queue.put_nowait(None)  # one stop token per shard
        await asyncio.gather(*self._shards, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._shard_workers:
            await loop.run_in_executor(None, worker.stop)
        # A shard that retired mid-drain may have left re-queued jobs
        # behind the stop tokens; resolve them rather than hang their
        # clients.
        while self._queue is not None and not self._queue.empty():
            item = self._queue.get_nowait()
            if item is None:
                continue
            _job_id, _payload, future, _enqueued_at = item
            if not future.cancelled() and not future.done():
                future.set_result({
                    "status": "failed",
                    "error": {"kind": "draining",
                              "detail": "the pool drained before dispatch"},
                    "attempts": 0, "queue_wait_s": 0.0, "shard": -1,
                })
        self._shards = []
        self._started = False

    # ------------------------------------------------------------------
    async def _shard_loop(self, shard: int, worker: SupervisedWorker) -> None:
        """One shard: pull jobs until the drain token arrives (or, for
        an adopted remote, until its host is gone)."""
        while True:
            item = await self._queue.get()
            if item is None:
                return
            job_id, payload, future, enqueued_at = item
            queue_wait_s = time.monotonic() - enqueued_at
            try:
                verdict = await self._run_job(shard, worker, job_id, payload)
            except _ShardRetired:
                # The remote host is gone; put the job back for the
                # remaining shards and retire this loop.
                self._queue.put_nowait((job_id, payload, future, enqueued_at))
                self.tracer.incr("service.workers.left")
                self.tracer.event("service.worker.left", shard=shard)
                return
            except Exception:  # supervision must never kill the shard
                verdict = {
                    "status": "failed",
                    "error": {"kind": ERROR,
                              "detail": traceback.format_exc()},
                    "attempts": 0,
                }
                self.tracer.incr("service.jobs.failed")
            verdict["queue_wait_s"] = round(queue_wait_s, 6)
            verdict["shard"] = shard
            if not future.cancelled():
                future.set_result(verdict)

    async def _run_job(
        self, shard: int, worker: SupervisedWorker, job_id: str,
        payload: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Attempt loop for one job on one shard's worker."""
        loop = asyncio.get_running_loop()
        failure = (ERROR, "job was never attempted")
        for attempt in range(1, self.retries + 2):
            if not worker.alive and not worker.can_respawn:
                if attempt == 1:
                    # Never attempted here: hand the job back intact.
                    raise _ShardRetired()
                break
            self.tracer.event(
                "service.job.start", job=job_id, shard=shard, attempt=attempt
            )
            outcome = await loop.run_in_executor(
                None, worker.attempt, job_id, attempt, payload,
                self.timeout_s,
            )
            if outcome.kind == OK:
                self.tracer.incr("service.jobs.done")
                return {
                    "status": "done", "result": outcome.value,
                    "attempts": attempt,
                }
            failure = (outcome.kind, outcome.value)
            self.tracer.incr("service.jobs.%s" % outcome.kind)
            if (
                outcome.kind == CRASH
                and not worker.alive
                and not worker.can_respawn
            ):
                # The remote host vanished mid-job: the crash was the
                # host's, not the job's, so hand the job back intact
                # for the remaining shards and retire this one.  (A
                # timeout on a dead remote stays a charged attempt --
                # the job overran its budget before the host went.)
                raise _ShardRetired()
            if attempt <= self.retries:
                self.tracer.incr("service.jobs.retried")
                self.tracer.event(
                    "service.job.retry",
                    job=job_id, shard=shard, attempt=attempt,
                    reason=outcome.kind,
                )
        self.tracer.incr("service.jobs.failed")
        self.tracer.event(
            "service.job.failed",
            job=job_id, shard=shard, reason=failure[0],
        )
        return {
            "status": "failed",
            "error": {"kind": failure[0], "detail": failure[1]},
            "attempts": self.retries + 1,
        }
