"""The service's shard pool: pull-based async supervision of JobWorkers.

One :class:`ShardPool` owns ``workers`` persistent
:class:`~repro.perf.procpool.JobWorker` processes -- the same
process-level fault-isolation unit the campaign runner supervises --
and exposes them to the asyncio server as an awaitable
:meth:`ShardPool.submit`.  Dispatch is **pull-based**: admitted jobs
land on one shared :class:`asyncio.Queue` and each shard's async loop
pulls the next job the moment its worker goes idle, so a slow
synthesis on one shard never head-blocks the others (the
least-loaded-shard rule falls out of the pull protocol for free).

Supervision mirrors :mod:`repro.campaign.runner` attempt-for-attempt:

* **worker crash** (hard process death mid-job): detected via the
  process sentinel or a dead pipe; the worker is respawned and the
  attempt counts as a failure;
* **per-job timeout**: a worker past its attempt deadline is killed
  (:meth:`~repro.perf.procpool.JobWorker.kill`'s SIGTERM ->
  SIGKILL escalation, so a wedged worker is never leaked) and
  respawned;
* **job error** (an exception inside the executor): the traceback
  comes back over the pipe.

Failed attempts retry up to ``retries`` extra times; a job that
exhausts them resolves to a structured ``{"status": "failed"}``
verdict -- never an unresolved future, never a hung connection.  The
blocking waits (``multiprocessing.connection.wait`` on the worker
pipe + sentinel) run on the event loop's default executor so the
server's accept loop stays responsive while every shard is busy.

:meth:`ShardPool.drain` is the graceful-shutdown half of the
contract: it closes the queue to new submissions (the server starts
refusing with 503 first), lets every queued and in-flight job finish,
then stops the workers.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, Optional

from repro.obs.trace import Tracer, resolve_tracer
from repro.perf.procpool import JobWorker, WorkerCrash

#: Worker target resolved inside each shard process (the same
#: executor the campaign runner dispatches to).
JOB_TARGET = "repro.campaign.jobs:execute_job"

#: Longest single blocking wait handed to the executor; shorter slices
#: keep kill/drain latency bounded without busy-polling.
_WAIT_SLICE_S = 0.5

#: Supervision verdicts (the ``error.kind`` of a failed response).
CRASH = "crash"
TIMEOUT = "timeout"
ERROR = "error"

#: Policy-independent failure details, mirroring the campaign
#: runner's: attempt counts ride in the ``attempts`` field instead.
_CRASH_DETAIL = "worker process died before replying"
_TIMEOUT_DETAIL = "attempt exceeded the per-job timeout"


class PoolClosed(RuntimeError):
    """A job was submitted to a draining or closed pool."""


class ShardPool:
    """A pull-based pool of supervised synthesis shards.

    ``workers`` JobWorker processes, each paired with an async shard
    loop pulling from one shared queue.  ``retries`` bounds re-attempts
    after a crash/timeout/error; ``timeout_s`` is the per-attempt
    wall-clock budget (``None`` = unbounded).  All counters land on
    ``tracer`` under ``service.jobs.*``.
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = 1,
        timeout_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Configure the pool; processes spawn in :meth:`start`."""
        if workers < 1:
            raise ValueError("a shard pool needs >= 1 worker")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.retries = retries
        self.timeout_s = timeout_s
        self.tracer = resolve_tracer(tracer)
        self._queue: Optional[asyncio.Queue] = None
        self._shards: list = []
        self._job_workers: list = []
        self._draining = False
        self._started = False
        self._inflight = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (and :meth:`drain` has not)."""
        return self._started

    @property
    def draining(self) -> bool:
        """Whether the pool has stopped accepting submissions."""
        return self._draining

    @property
    def alive_workers(self) -> int:
        """How many shard worker processes are currently alive."""
        return sum(1 for w in self._job_workers if w.alive)

    @property
    def backlog(self) -> int:
        """Jobs admitted but not yet resolved (queued + in flight)."""
        queued = self._queue.qsize() if self._queue is not None else 0
        return queued + self._inflight

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the shard workers and their pull loops (idempotent)."""
        if self._started:
            return
        self._queue = asyncio.Queue()
        self._job_workers = [JobWorker(JOB_TARGET) for _ in range(self.workers)]
        loop = asyncio.get_running_loop()
        for worker in self._job_workers:
            # Spawning forks a process; cheap, but keep it off the loop.
            await loop.run_in_executor(None, worker.spawn)
        self._shards = [
            asyncio.ensure_future(self._shard_loop(i, worker))
            for i, worker in enumerate(self._job_workers)
        ]
        self._draining = False
        self._started = True

    async def submit(self, job_id: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Queue one job payload and await its supervision verdict.

        Returns ``{"status": "done", "result": ..., "attempts": n}``
        or ``{"status": "failed", "error": {"kind", "detail"},
        "attempts": n}``; raises :class:`PoolClosed` when draining.
        """
        if not self._started or self._draining:
            raise PoolClosed("the shard pool is not accepting jobs")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight += 1
        self._queue.put_nowait((job_id, payload, future, time.monotonic()))
        try:
            return await future
        finally:
            self._inflight -= 1

    async def drain(self) -> None:
        """Gracefully shut down: finish queued + in-flight jobs first.

        Idempotent; after it returns every submitted future is
        resolved and every worker process is stopped.
        """
        self._draining = True
        if not self._started:
            return
        for _ in self._shards:
            self._queue.put_nowait(None)  # one stop token per shard
        await asyncio.gather(*self._shards, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._job_workers:
            await loop.run_in_executor(None, worker.stop)
        self._shards = []
        self._started = False

    # ------------------------------------------------------------------
    async def _shard_loop(self, shard: int, worker: JobWorker) -> None:
        """One shard: pull jobs until the drain token arrives."""
        while True:
            item = await self._queue.get()
            if item is None:
                return
            job_id, payload, future, enqueued_at = item
            queue_wait_s = time.monotonic() - enqueued_at
            try:
                verdict = await self._run_job(shard, worker, job_id, payload)
            except Exception:  # supervision must never kill the shard
                verdict = {
                    "status": "failed",
                    "error": {"kind": ERROR,
                              "detail": traceback.format_exc()},
                    "attempts": 0,
                }
                self.tracer.incr("service.jobs.failed")
            verdict["queue_wait_s"] = round(queue_wait_s, 6)
            verdict["shard"] = shard
            if not future.cancelled():
                future.set_result(verdict)

    async def _run_job(
        self, shard: int, worker: JobWorker, job_id: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Attempt loop for one job on one shard's worker."""
        loop = asyncio.get_running_loop()
        failure = (ERROR, "job was never attempted")
        for attempt in range(1, self.retries + 2):
            if not worker.alive:
                await loop.run_in_executor(None, worker.respawn)
            self.tracer.event(
                "service.job.start", job=job_id, shard=shard, attempt=attempt
            )
            worker.submit(job_id, attempt, payload)
            verdict = await self._await_attempt(loop, worker)
            kind = verdict[0]
            if kind == "ok":
                self.tracer.incr("service.jobs.done")
                return {
                    "status": "done", "result": verdict[1], "attempts": attempt,
                }
            failure = (kind, verdict[1])
            self.tracer.incr("service.jobs.%s" % kind)
            if attempt <= self.retries:
                self.tracer.incr("service.jobs.retried")
                self.tracer.event(
                    "service.job.retry",
                    job=job_id, shard=shard, attempt=attempt, reason=kind,
                )
        self.tracer.incr("service.jobs.failed")
        self.tracer.event(
            "service.job.failed",
            job=job_id, shard=shard, reason=failure[0],
        )
        return {
            "status": "failed",
            "error": {"kind": failure[0], "detail": failure[1]},
            "attempts": self.retries + 1,
        }

    async def _await_attempt(self, loop, worker: JobWorker) -> tuple:
        """One attempt's outcome: ("ok", result) | (kind, detail).

        Waits on the worker pipe and its process sentinel in bounded
        slices on the executor; a deadline overrun kills the worker
        (SIGTERM -> SIGKILL) and reports ``timeout``, a dead pipe or
        sentinel reports ``crash``.
        """
        deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s is not None else None
        )
        while True:
            slice_s = _WAIT_SLICE_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    await loop.run_in_executor(None, worker.kill)
                    return (TIMEOUT, _TIMEOUT_DETAIL)
                slice_s = min(slice_s, remaining)
            conn, sentinel = worker.connection, worker.sentinel
            ready = await loop.run_in_executor(
                None, _conn_wait, [conn, sentinel], slice_s
            )
            if conn in ready:
                try:
                    reply = await loop.run_in_executor(None, worker.recv)
                except WorkerCrash:
                    await loop.run_in_executor(None, worker.respawn)
                    return (CRASH, _CRASH_DETAIL)
                if reply[0] == "ok":
                    return ("ok", reply[2])
                return (ERROR, reply[2])  # ("error", job_id, traceback)
            if sentinel in ready:
                await loop.run_in_executor(None, worker.respawn)
                return (CRASH, _CRASH_DETAIL)
