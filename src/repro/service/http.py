"""A deliberately small HTTP/1.1 layer over asyncio streams.

The service has four endpoints, JSON bodies, no keep-alive, no TLS,
no chunked encoding -- a stdlib-only subset chosen so the server adds
**zero** hard dependencies (the ROADMAP's constraint).  What is here
is exactly what the contract needs:

* request parsing with hard limits (request-line/header size, header
  count, a ``Content-Length`` body cap) so a malformed or hostile
  client costs bounded memory and is answered with a structured
  error instead of an exception;
* canonical-JSON responses (:func:`repro.io.campaign_json.
  canonical_dumps`) with ``Connection: close`` semantics, so every
  exchange is one self-delimiting request/response pair.

Anything fancier (pipelining, compression, websockets) belongs behind
a real reverse proxy, which is how docs/SERVICE.md says to deploy.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.io.campaign_json import canonical_dumps

#: Upper bound on one request body; a synthesis spec is < 1 MB even at
#: NGXM scale, so 32 MB is generous without being a memory hazard.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Upper bound on the request line and on any single header line.
MAX_LINE_BYTES = 16 * 1024

#: Upper bound on the number of header lines.
MAX_HEADERS = 100

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that could not be parsed into (method, path, body).

    ``status`` is the HTTP status to answer with; ``detail`` becomes
    the ``crusade-error`` document's human-readable field.
    """

    def __init__(self, status: int, detail: str) -> None:
        """Record the response ``status`` and human ``detail``."""
        super().__init__(detail)
        self.status = status
        self.detail = detail


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request: ``(method, path, headers, body)``.

    Returns ``None`` for a connection closed before a request line
    (a health-checker's TCP probe); raises :class:`HttpError` for
    anything that fails the subset's limits.  Header names are
    lower-cased; duplicate headers keep the last value.
    """
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "request line too long")
    try:
        method, path, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "unsupported protocol %r" % (version,))
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > MAX_LINE_BYTES:
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header") from None
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, "bad Content-Length %r" % (length_text,)) from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(
            413, "body of %d bytes exceeds the %d byte limit"
            % (length, MAX_BODY_BYTES)
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length") from None
    return method.upper(), path, headers, body


def render_response(status: int, payload) -> bytes:
    """One complete canonical-JSON HTTP response, ready to write.

    ``payload`` is serialized with :func:`canonical_dumps`, so equal
    payloads are byte-identical on the wire -- the property the
    service-smoke CI job compares.
    """
    body = canonical_dumps(payload).encode("utf-8")
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (status, REASONS.get(status, "Unknown"), len(body))
    )
    return head.encode("ascii") + body
