"""Synthesis-as-a-service: the long-running job server over the engine.

The ROADMAP's millions-of-users story, assembled from pieces the repo
already trusts: supervised :mod:`repro.exec` worker processes (local
forks or dial-in TCP workers) compute, the
persistent content-addressed store (:mod:`repro.perf.store`)
remembers, and this package adds the front end that turns both into a
service --

* :mod:`repro.service.server` -- the asyncio HTTP server: schema
  validation at admission, exact-hit serving from the store's
  full-result tier, in-flight duplicate coalescing, structured
  failure responses, ``/healthz`` + ``/stats``, graceful drain;
* :mod:`repro.service.pool` -- the pull-based shard pool supervising
  the workers (timeouts, SIGTERM -> SIGKILL escalation, bounded
  retry), lifted attempt-for-attempt from
  :mod:`repro.campaign.runner`;
* :mod:`repro.service.http` -- the stdlib-only HTTP/1.1 subset (no
  new dependencies, hard request limits);
* :mod:`repro.service.client` -- the blocking reference client behind
  ``repro submit``;
* :mod:`repro.io.service_json` -- the versioned request/response/
  error schemas both sides validate against.

The serving contract in one sentence: a resubmitted request is served
from the store **byte-identical** to its first computation, duplicate
in-flight requests coalesce onto **one** worker job, and every
failure mode an operator can hit is a structured JSON document
catalogued in docs/SERVICE.md.

Start one with ``repro serve --port 8100 --workers 4 --cache-dir
store/``; script against it with ``repro submit spec.json --port
8100`` (README.md, "Serving").
"""

from repro.service.client import ServiceUnreachable, healthz, stats, submit
from repro.service.pool import PoolClosed, ShardPool
from repro.service.server import SynthesisServer

__all__ = [
    "PoolClosed",
    "ServiceUnreachable",
    "ShardPool",
    "SynthesisServer",
    "healthz",
    "stats",
    "submit",
]
