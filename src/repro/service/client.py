"""A blocking stdlib client for the synthesis service.

``repro submit`` (and the CI smoke job, and the tests) talk to a
running :class:`~repro.service.server.SynthesisServer` through these
helpers -- plain :mod:`http.client` over one connection per exchange,
matching the server's ``Connection: close`` protocol subset.  Nothing
here retries or load-balances: the client is deliberately the
simplest correct speaker of the wire contract documented in
docs/SERVICE.md, the reference a richer client would be tested
against.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple


class ServiceUnreachable(ConnectionError):
    """The server did not accept a TCP connection or answer HTTP."""


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: float = 600.0,
) -> Tuple[int, Dict[str, Any]]:
    """One request/response exchange: ``(status, decoded body)``."""
    body = None
    headers = {}
    if payload is not None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers["Content-Type"] = "application/json"
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceUnreachable(
                "%s:%d %s %s failed: %s" % (host, port, method, path, exc)
            ) from exc
    finally:
        conn.close()
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServiceUnreachable(
            "%s:%d %s %s returned undecodable body (%s)"
            % (host, port, method, path, exc)
        ) from exc
    return response.status, decoded


def submit(
    host: str,
    port: int,
    request: Dict[str, Any],
    timeout_s: float = 600.0,
) -> Tuple[int, Dict[str, Any]]:
    """POST one ``crusade-request`` to ``/synthesize``.

    Returns ``(http status, document)`` -- a ``crusade-response`` on
    200, a ``crusade-error`` otherwise.  ``timeout_s`` must cover a
    full cold synthesis; cache hits return in milliseconds.
    """
    return _request(host, port, "POST", "/synthesize", request, timeout_s)


def healthz(host: str, port: int, timeout_s: float = 10.0) -> Dict[str, Any]:
    """GET the liveness document from ``/healthz``."""
    status, payload = _request(host, port, "GET", "/healthz",
                               timeout_s=timeout_s)
    if status != 200:
        raise ServiceUnreachable("/healthz answered %d" % status)
    return payload


def stats(host: str, port: int, timeout_s: float = 10.0) -> Dict[str, Any]:
    """GET the counters document from ``/stats``."""
    status, payload = _request(host, port, "GET", "/stats",
                               timeout_s=timeout_s)
    if status != 200:
        raise ServiceUnreachable("/stats answered %d" % status)
    return payload


def drain(host: str, port: int, timeout_s: float = 600.0) -> Dict[str, Any]:
    """POST ``/drain`` and block until the server reports drained."""
    status, payload = _request(host, port, "POST", "/drain",
                               timeout_s=timeout_s)
    if status != 200:
        raise ServiceUnreachable("/drain answered %d" % status)
    return payload
