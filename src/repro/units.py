"""Unit conventions and helpers used throughout the package.

All *times* are expressed in **seconds** as floats (the paper's task
periods span 25 microseconds to 1 minute, comfortably inside double
precision).  All *costs* are **dollars** as floats.  All *memory* sizes
are **bytes** as ints, and hardware *areas* are **gate equivalents** as
ints.  FPGA capacities are expressed in programmable functional units
(PFUs); :data:`GATES_PER_PFU` converts between the two conventions.

A tiny epsilon-aware comparison helper is provided because schedule
arithmetic chains many float additions and exact comparisons against
deadlines would be brittle.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Seconds in common engineering sub-units, for readable literals.
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0

#: Kilobyte / megabyte in bytes (binary convention, matching datasheets).
KB = 1024
MB = 1024 * 1024

#: Gate equivalents represented by one programmable functional unit.
#: Mid-1990s FPGA marketing counted roughly 8-12 usable gates per
#: logic cell; we fix 10 for determinism.
GATES_PER_PFU = 10

#: Absolute slack below which two times are considered equal.
TIME_EPS = 1e-12

#: Hours in 1e9 hours -- FIT rates are failures per 1e9 hours.
FIT_HOURS = 1e9

#: Seconds per hour, used when converting FIT/MTTR to per-second rates.
SECONDS_PER_HOUR = 3600.0

#: Minutes per year, used for unavailability requirements (min/year).
MINUTES_PER_YEAR = 365.25 * 24 * 60


def time_leq(a: float, b: float) -> bool:
    """Return True when time ``a`` is earlier than or equal to ``b``,
    tolerating accumulated floating-point error.
    """
    return a <= b + TIME_EPS


def time_lt(a: float, b: float) -> bool:
    """Return True when time ``a`` is strictly earlier than ``b``
    beyond floating-point noise.
    """
    return a < b - TIME_EPS


def time_eq(a: float, b: float) -> bool:
    """Return True when two times are equal within tolerance."""
    return abs(a - b) <= TIME_EPS


def lcm_of(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    Used for hyperperiod computation once periods have been quantized
    onto an integer tick grid.
    """
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError("lcm_of requires positive integers, got %r" % (value,))
        result = result * value // math.gcd(result, value)
    return result


def quantize(seconds: float, tick: float = US) -> int:
    """Quantize a duration in seconds onto an integer grid of ``tick``
    seconds, rounding to nearest.

    Periods are quantized before the hyperperiod LCM is taken so that
    nearly-harmonic float periods do not explode the hyperperiod.
    """
    if seconds <= 0:
        raise ValueError("cannot quantize non-positive duration %r" % (seconds,))
    ticks = int(round(seconds / tick))
    return max(ticks, 1)


def fit_to_lambda(fit: float) -> float:
    """Convert a failure-in-time rate (failures per 1e9 hours) to a
    per-hour exponential failure rate ``lambda``.
    """
    if fit < 0:
        raise ValueError("FIT rate must be non-negative, got %r" % (fit,))
    return fit / FIT_HOURS


def unavailability_to_fraction(minutes_per_year: float) -> float:
    """Convert an unavailability requirement expressed as minutes of
    downtime per year into a unitless unavailability fraction.
    """
    if minutes_per_year < 0:
        raise ValueError(
            "unavailability must be non-negative, got %r" % (minutes_per_year,)
        )
    return minutes_per_year / MINUTES_PER_YEAR
