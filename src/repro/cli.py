"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``synthesize SPEC.json``
    Run CRUSADE on a JSON specification; print the architecture (and
    optionally export the full result / a Gantt chart).
``generate``
    Emit a synthetic specification as JSON (the paper's workload
    generator), for editing or archiving.
``example NAME``
    Emit one of the eight Table 2/3 examples as JSON at a given scale.
``table1 | table2 | table3 | figure2``
    Regenerate the paper's tables/figure and print them.
``experiments``
    Splice the latest ``benchmarks/results`` tables into
    EXPERIMENTS.md.
``campaign run | resume | status``
    Sharded, checkpointed, fault-tolerant benchmark campaigns over
    the example x scale x variant grid (see :mod:`repro.campaign`
    and README.md, "Campaigns").
``serve``
    Run the synthesis service: a long-running HTTP job server with
    exact-hit caching and duplicate coalescing (see
    :mod:`repro.service` and docs/SERVICE.md).
``submit SPEC.json``
    Post one specification to a running service and print (or save)
    the response document.
``worker --connect HOST:PORT``
    Join a remote scorer or service pool as a dial-in worker over the
    framed-TCP execution substrate (see :mod:`repro.exec`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import CrusadeConfig
from repro.core.crusade import crusade
from repro.core.crusade_ft import crusade_ft
from repro.core.report import render_architecture
from repro.graph.generator import GeneratorConfig, generate_spec
from repro.io.result_json import save_result_file
from repro.io.spec_json import load_spec_file, save_spec_file, spec_to_dict
from repro.bench.examples import EXAMPLE_NAMES, build_example


def _parallel_eval_arg(value: str) -> int:
    """``--parallel-eval`` accepts an integer or ``auto`` (cpu count)."""
    if value == "auto":
        return os.cpu_count() or 1
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected an integer or 'auto', got %r" % (value,)
        ) from None


def _add_synthesize(subparsers) -> None:
    p = subparsers.add_parser(
        "synthesize", help="co-synthesize an architecture for a JSON spec"
    )
    p.add_argument("spec", help="path to a crusade-spec JSON file")
    p.add_argument("--no-reconfig", action="store_true",
                   help="disable dynamic reconfiguration (baseline)")
    p.add_argument("--ft", action="store_true",
                   help="run the CRUSADE-FT fault-tolerance extension")
    p.add_argument("--out", metavar="RESULT.json",
                   help="export the full result as JSON")
    p.add_argument("--gantt", action="store_true",
                   help="print a text Gantt chart of the schedule")
    p.add_argument("--copies", type=int, default=4,
                   help="association-array explicit copy cap (default 4)")
    p.add_argument("--stats", action="store_true",
                   help="print per-phase timings and synthesis counters")
    p.add_argument("--trace", metavar="TRACE.jsonl",
                   help="stream structured trace events to a JSON-lines file")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the incremental evaluation engine "
                        "(schedule caching + copy-on-write inner loop)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable admissible candidate pruning "
                        "(evaluate every allocation candidate)")
    p.add_argument("--no-bound-abort", action="store_true",
                   help="disable incumbent-driven bound aborts "
                        "(evaluate every candidate to completion)")
    p.add_argument("--pool-batch", type=int, default=4, metavar="N",
                   help="candidate submissions per pool-worker message "
                        "(default 4; 1 = the unbatched protocol)")
    p.add_argument("--parallel-eval", type=_parallel_eval_arg, default=0,
                   metavar="N|auto",
                   help="score allocation candidates with N worker processes "
                        "('auto' = os.cpu_count(); 0 or 1 = serial; results "
                        "are identical either way)")
    p.add_argument("--timeline", choices=("auto", "list", "tree"),
                   default="auto",
                   help="scheduler timeline implementation: flat bisected "
                        "lists ('list'), blocked index ('tree'), or "
                        "length-switched ('auto', default); results are "
                        "identical either way")
    p.add_argument("--profile", type=int, default=0, metavar="N",
                   help="run synthesis under cProfile, print the top-N "
                        "cumulative functions and write "
                        "profile-<spec fingerprint>.pstats next to the "
                        "result JSON (or the CWD)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent content-addressed synthesis store: "
                        "exact resubmissions return the cached result, "
                        "near-hits warm-start from cached schedule "
                        "fragments (results are byte-identical either "
                        "way); REPRO_CACHE_DIR is the env fallback")
    p.add_argument("--no-warm-start", action="store_true",
                   help="do not read the store (cold run); the store is "
                        "still written, so the run warms it for later "
                        "resubmissions")
    p.add_argument("--exec-transport", choices=("pipe", "socket"),
                   default="pipe", dest="exec_transport",
                   help="worker transport for --parallel-eval: forked "
                        "pipes (default) or framed TCP sockets; results "
                        "are identical either way (REPRO_EXEC_TRANSPORT "
                        "overrides)")
    p.add_argument("--worker-port", type=int, default=None, metavar="PORT",
                   dest="worker_port",
                   help="accept remote 'repro worker --connect' scorers "
                        "on this TCP port (0 = ephemeral) to widen the "
                        "--parallel-eval pool across hosts")


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser(
        "generate", help="emit a synthetic specification as JSON"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--graphs", type=int, default=4)
    p.add_argument("--tasks-per-graph", type=int, default=20)
    p.add_argument("--group-size", type=int, default=3,
                   help="compatibility group size (1 disables)")
    p.add_argument("--out", metavar="SPEC.json", required=True)


def _add_example(subparsers) -> None:
    p = subparsers.add_parser(
        "example", help="emit a Table 2/3 example specification as JSON"
    )
    p.add_argument("name", choices=EXAMPLE_NAMES)
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--out", metavar="SPEC.json", required=True)


def _add_tables(subparsers) -> None:
    t1 = subparsers.add_parser("table1", help="regenerate Table 1")
    t2 = subparsers.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--scale", type=float, default=0.05)
    t2.add_argument("--examples", nargs="*", default=None, metavar="NAME")
    t3 = subparsers.add_parser("table3", help="regenerate Table 3")
    t3.add_argument("--scale", type=float, default=0.05)
    t3.add_argument("--examples", nargs="*", default=None, metavar="NAME")
    subparsers.add_parser("figure2", help="run the Figure 2 example")


def _add_campaign(subparsers) -> None:
    from repro.campaign.grid import VARIANT_PRESETS
    from repro.campaign.jobs import CAMPAIGN_GRID_KINDS

    p = subparsers.add_parser(
        "campaign",
        help="sharded, checkpointed, fault-tolerant benchmark campaigns",
    )
    sub = p.add_subparsers(dest="campaign_command", required=True)

    run = sub.add_parser(
        "run", help="start a campaign in a fresh (or same-spec) directory"
    )
    run.add_argument("spec", nargs="?", default=None,
                     help="campaign spec JSON (omit to build one from flags)")
    run.add_argument("--dir", required=True, metavar="DIR",
                     help="campaign directory (checkpoints, manifest)")
    run.add_argument("--name", default=None,
                     help="campaign name (defaults to the directory name)")
    run.add_argument("--kind", choices=sorted(CAMPAIGN_GRID_KINDS),
                     default="table2",
                     help="job kind for flag-built campaigns (default table2)")
    run.add_argument("--examples", nargs="+", default=None, metavar="NAME",
                     help="examples axis for flag-built campaigns")
    run.add_argument("--scales", nargs="+", type=float, default=None,
                     metavar="S", help="scales axis (default: REPRO_SCALE)")
    run.add_argument("--variants", nargs="+", default=["default"],
                     metavar="NAME", choices=sorted(VARIANT_PRESETS),
                     help="config-variant axis (presets: %s)"
                          % ", ".join(sorted(VARIANT_PRESETS)))
    resume = sub.add_parser(
        "resume", help="continue a killed or failed campaign from its log"
    )
    resume.add_argument("dir", metavar="DIR", help="campaign directory")
    resume.add_argument("--keep-failed", action="store_true",
                        help="do not re-attempt jobs already recorded failed")
    status = sub.add_parser(
        "status", help="summarize a campaign directory without running"
    )
    status.add_argument("dir", metavar="DIR", help="campaign directory")
    for target in (run, resume):
        target.add_argument("--workers", type=int, default=1, metavar="N",
                            help="persistent worker processes (default 1)")
        target.add_argument("--cache-dir", metavar="DIR", default=None,
                            help="shared synthesis store for all campaign "
                                 "workers (exported as REPRO_CACHE_DIR so "
                                 "job configs -- and the manifest -- stay "
                                 "byte-identical with or without it)")
        target.add_argument("--retries", type=int, default=None, metavar="K",
                            help="per-job re-attempts before recording failure")
        target.add_argument("--timeout", type=float, default=None, metavar="S",
                            help="per-attempt wall-clock budget in seconds")
        target.add_argument("--backoff", type=float, default=None, metavar="S",
                            help="base retry backoff in seconds (exponential)")
        target.add_argument("--stop-after", type=int, default=None, metavar="N",
                            help="stop after N new terminal jobs (testing)")


def _add_serve(subparsers) -> None:
    p = subparsers.add_parser(
        "serve",
        help="run the synthesis service (HTTP job server; docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8100,
                   help="TCP port (0 binds an ephemeral port; default 8100)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard worker processes (default 1)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent synthesis store; exact resubmissions "
                        "are served from it without computing")
    p.add_argument("--retries", type=int, default=1, metavar="K",
                   help="per-job re-attempts before a failed response")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-attempt wall-clock budget in seconds")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="stream service.* events as JSON lines to FILE")
    p.add_argument("--exec-transport", choices=("pipe", "socket"),
                   default="pipe", dest="exec_transport",
                   help="shard worker transport: forked pipes (default) "
                        "or framed TCP sockets (REPRO_EXEC_TRANSPORT "
                        "overrides)")
    p.add_argument("--worker-port", type=int, default=None, metavar="PORT",
                   dest="worker_port",
                   help="accept remote 'repro worker --connect' shards "
                        "on this TCP port (0 = ephemeral); with "
                        "--workers 0 the pool is remote-only")


def _add_worker(subparsers) -> None:
    p = subparsers.add_parser(
        "worker",
        help="join a remote pool as a dial-in worker (repro.exec)",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="address of a pool listening with --worker-port")


def _add_submit(subparsers) -> None:
    p = subparsers.add_parser(
        "submit", help="post one spec to a running synthesis service"
    )
    p.add_argument("spec", help="path to a crusade-spec JSON file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8100)
    p.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="KEY=JSON",
                   help="config override (repeatable), e.g. "
                        "--set reconfiguration=false --set prune=true")
    p.add_argument("--timeout", type=float, default=600.0, metavar="S",
                   help="client-side budget for the full exchange")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the full response document to FILE")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CRUSADE co-synthesis (DATE 1999 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_synthesize(subparsers)
    _add_generate(subparsers)
    _add_example(subparsers)
    _add_tables(subparsers)
    _add_campaign(subparsers)
    _add_serve(subparsers)
    _add_submit(subparsers)
    _add_worker(subparsers)
    experiments = subparsers.add_parser(
        "experiments",
        help="splice the latest benchmarks/results tables into EXPERIMENTS.md",
    )
    experiments.add_argument("--doc", default="EXPERIMENTS.md")
    experiments.add_argument("--results", default="benchmarks/results")
    return parser


# ----------------------------------------------------------------------
def _build_tracer(args):
    """A tracer for the requested observability flags, or None."""
    if not (args.stats or args.trace):
        return None
    from repro.obs import JsonlSink, Tracer

    sinks = [JsonlSink(args.trace)] if args.trace else []
    return Tracer(sinks=sinks)


def _spec_fingerprint(spec) -> str:
    """A stable short digest of the canonical spec JSON."""
    import hashlib
    import json

    payload = json.dumps(spec_to_dict(spec), sort_keys=True).encode("utf-8")
    return hashlib.sha1(payload).hexdigest()[:12]


def _profile_path(args, spec) -> str:
    """``profile-<spec fingerprint>.pstats`` next to the result JSON,
    or in the CWD.

    The fingerprint keeps two profiled runs sharing a working
    directory from silently clobbering each other's dump.
    """
    name = "profile-%s.pstats" % _spec_fingerprint(spec)
    if args.out:
        directory = os.path.dirname(os.path.abspath(args.out))
        return os.path.join(directory, name)
    return name


def _cmd_synthesize(args) -> int:
    spec = load_spec_file(args.spec)
    config = CrusadeConfig(
        reconfiguration=not args.no_reconfig,
        max_explicit_copies=args.copies,
        incremental=not args.no_incremental,
        prune=not args.no_prune,
        bound_abort=not args.no_bound_abort,
        parallel_eval=args.parallel_eval,
        pool_batch=args.pool_batch,
        timeline=args.timeline,
        cache_dir=args.cache_dir,
        warm_start=not args.no_warm_start,
        exec_transport=args.exec_transport,
        worker_port=args.worker_port,
    )
    tracer = _build_tracer(args)
    profiler = None
    if args.profile > 0:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.ft:
            ft_result = crusade_ft(spec, config=config, tracer=tracer)
            result = ft_result.base
            print(render_architecture(result))
            print()
            print("spares: %d ($%.0f), availability met: %s"
                  % (ft_result.spares.total_spares(), ft_result.spares.spare_cost,
                     ft_result.spares.met))
            print("total cost incl. spares: $%.0f" % ft_result.cost)
            feasible = ft_result.feasible
        else:
            result = crusade(spec, config=config, tracer=tracer)
            print(render_architecture(result))
            feasible = result.feasible
    finally:
        if profiler is not None:
            profiler.disable()
        if tracer is not None:
            tracer.close()
    if profiler is not None:
        import pstats

        path = _profile_path(args, spec)
        profiler.dump_stats(path)
        print()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(args.profile)
        print("profile written to %s" % path)
    if args.gantt:
        from repro.sched.gantt import render_gantt

        print()
        print(render_gantt(result.schedule))
    if args.stats and result.stats is not None:
        from repro.obs import render_stats

        print()
        print(render_stats(result.stats))
    if args.trace:
        print("trace written to %s" % args.trace)
    if args.out:
        save_result_file(result, args.out)
        print("result written to %s" % args.out)
    print("feasible:", feasible)
    return 0 if feasible else 1


def _cmd_generate(args) -> int:
    spec = generate_spec(GeneratorConfig(
        seed=args.seed,
        n_graphs=args.graphs,
        tasks_per_graph=args.tasks_per_graph,
        compat_group_size=args.group_size,
    ))
    save_spec_file(spec, args.out)
    print("wrote %s (%d graphs, %d tasks)"
          % (args.out, len(spec.graphs), spec.total_tasks))
    return 0


def _cmd_example(args) -> int:
    spec = build_example(args.name, scale=args.scale)
    save_spec_file(spec, args.out)
    print("wrote %s (%d graphs, %d tasks)"
          % (args.out, len(spec.graphs), spec.total_tasks))
    return 0


def _cmd_table1(args) -> int:
    from repro.bench.table1 import render_table1, run_table1

    print(render_table1(run_table1()))
    return 0


def _cmd_table2(args) -> int:
    from repro.bench.table2 import render_table2, run_table2_row

    names = args.examples or EXAMPLE_NAMES
    rows = []
    for name in names:
        print("synthesizing %s..." % name, file=sys.stderr)
        rows.append(run_table2_row(name, scale=args.scale))
    print(render_table2(rows))
    return 0


def _cmd_table3(args) -> int:
    from repro.bench.table3 import render_table3, run_table3_row

    names = args.examples or EXAMPLE_NAMES
    rows = []
    for name in names:
        print("synthesizing %s (FT)..." % name, file=sys.stderr)
        rows.append(run_table3_row(name, scale=args.scale))
    print(render_table3(rows))
    return 0


def _cmd_experiments(args) -> int:
    from repro.bench.experiments_doc import refresh_experiments

    status = refresh_experiments(args.doc, args.results)
    for heading, refreshed in sorted(status.items()):
        print("%-30s %s" % (heading, "refreshed" if refreshed else "skipped"))
    return 0


def _cmd_figure2(args) -> int:
    from repro.bench.figure2 import run_figure2

    outcome = run_figure2()
    print(render_architecture(outcome.with_reconfig))
    print()
    print("baseline cost: $%.0f" % outcome.without.cost)
    print("savings: %.1f%%" % outcome.savings_pct)
    return 0


def _campaign_policy(args, base):
    """``base`` policy with any --retries/--timeout/--backoff overrides."""
    from repro.campaign.grid import RetryPolicy

    return RetryPolicy(
        retries=base.retries if args.retries is None else args.retries,
        backoff_s=base.backoff_s if args.backoff is None else args.backoff,
        backoff_cap_s=base.backoff_cap_s,
        timeout_s=base.timeout_s if args.timeout is None else args.timeout,
    )


def _export_cache_dir(args) -> None:
    """Hand ``--cache-dir`` to campaign workers via the environment.

    Injecting the store into job configs would change the stored
    campaign spec (and so the manifest) byte-for-byte; the
    ``REPRO_CACHE_DIR`` fallback consulted by
    :func:`repro.perf.store.resolve_store` keeps checkpoints and
    manifests identical with or without a shared store.  Worker
    processes inherit the parent environment at spawn.
    """
    if getattr(args, "cache_dir", None):
        from repro.perf.store import ENV_CACHE_DIR

        os.environ[ENV_CACHE_DIR] = os.path.abspath(args.cache_dir)


def _campaign_exit(outcome) -> int:
    """0 = complete and clean, 1 = complete with failed jobs,
    3 = interrupted/incomplete.

    Failed jobs are judged from the final manifest, not this
    invocation's counters, so a resume that merely *skips* previously
    failed jobs still exits 1.
    """
    if not outcome.complete:
        return 3
    failed = outcome.failed
    if outcome.manifest is not None:
        failed = outcome.manifest["summary"]["failed"]
    return 0 if failed == 0 else 1


def _report_outcome(outcome) -> None:
    print(
        "campaign %s: %d done, %d failed, %d skipped, %d retried"
        % (
            "complete" if outcome.complete else "INTERRUPTED",
            outcome.done, outcome.failed, outcome.skipped, outcome.retried,
        )
    )
    if outcome.complete:
        print("manifest written to %s" % (outcome.directory / "manifest.json"))


def _cmd_campaign_run(args) -> int:
    import os.path

    from repro.campaign.grid import CampaignSpec, RetryPolicy, spec_from_flags
    from repro.campaign.runner import run_campaign
    from repro.io.campaign_json import load_json

    if args.spec is not None:
        spec = CampaignSpec.from_dict(load_json(args.spec))
        spec = CampaignSpec(
            name=spec.name, kind=spec.kind, examples=spec.examples,
            scales=spec.scales, variants=spec.variants,
            policy=_campaign_policy(args, spec.policy), params=spec.params,
        )
    else:
        if not args.examples:
            print("campaign run: need a spec file or --examples",
                  file=sys.stderr)
            return 2
        from repro.bench.table2 import bench_scale

        scales = args.scales if args.scales else [bench_scale()]
        spec = spec_from_flags(
            name=args.name or os.path.basename(os.path.abspath(args.dir)),
            kind=args.kind,
            examples=args.examples,
            scales=scales,
            variant_names=args.variants,
            policy=_campaign_policy(args, RetryPolicy()),
        )
    _export_cache_dir(args)
    outcome = run_campaign(
        args.dir, spec=spec, workers=args.workers,
        stop_after=args.stop_after,
    )
    _report_outcome(outcome)
    return _campaign_exit(outcome)


def _cmd_campaign_resume(args) -> int:
    from repro.campaign.checkpoint import CampaignDir
    from repro.campaign.runner import run_campaign

    stored = CampaignDir(args.dir).load_spec()
    policy = _campaign_policy(args, stored.policy)
    _export_cache_dir(args)
    outcome = run_campaign(
        args.dir, workers=args.workers, resume=True,
        retry_failed=not args.keep_failed, stop_after=args.stop_after,
        # Overrides apply to this invocation only; the stored spec
        # (and so the manifest) keeps the original campaign.
        policy_override=policy if policy != stored.policy else None,
    )
    _report_outcome(outcome)
    return _campaign_exit(outcome)


def _cmd_campaign_status(args) -> int:
    from repro.campaign.runner import campaign_status

    status = campaign_status(args.dir)
    print("campaign %s (%s): %d jobs, %d done, %d failed, %d pending%s"
          % (status["name"], status["kind"], status["jobs"], status["done"],
             len(status["failed"]), len(status["pending"]),
             " [complete]" if status["complete"] else ""))
    for job_id in sorted(status["failed"]):
        print("  FAILED %s: %s" % (job_id, status["failed"][job_id]))
    for job_id in status["pending"][:10]:
        print("  pending %s" % (job_id,))
    if len(status["pending"]) > 10:
        print("  ... and %d more pending" % (len(status["pending"]) - 10))
    # Mirror _campaign_exit: a complete campaign with failed jobs is
    # exit 1 from run/resume *and* status, so pollers agree with the
    # run that produced the manifest.
    if status["complete"]:
        return 1 if status["failed"] else 0
    return 3


_CAMPAIGN_HANDLERS = {
    "run": _cmd_campaign_run,
    "resume": _cmd_campaign_resume,
    "status": _cmd_campaign_status,
}


def _cmd_campaign(args) -> int:
    return _CAMPAIGN_HANDLERS[args.campaign_command](args)


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service.server import SynthesisServer

    tracer = None
    if args.trace:
        from repro.obs import JsonlSink, Tracer

        tracer = Tracer(sinks=[JsonlSink(args.trace)])

    async def _run() -> None:
        server = SynthesisServer(
            host=args.host, port=args.port, workers=args.workers,
            cache_dir=args.cache_dir, retries=args.retries,
            timeout_s=args.timeout, tracer=tracer,
            transport=args.exec_transport, worker_port=args.worker_port,
        )
        await server.start()
        print("serving on http://%s:%d  (workers=%d, cache=%s)"
              % (server.host, server.port, args.workers,
                 args.cache_dir or "off"), flush=True)
        listen_port = getattr(server.pool, "listen_port", None)
        if listen_port is not None:
            print("accepting dial-in workers on port %d" % listen_port,
                  flush=True)
        loop = asyncio.get_running_loop()
        stop = loop.create_future()

        def _request_stop() -> None:
            if not stop.done():
                stop.set_result(None)

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, _request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without loop signal handlers
        try:
            await stop
            print("draining...", flush=True)
        finally:
            await server.close()
        print("drained; bye", flush=True)

    asyncio.run(_run())
    return 0


def _cmd_worker(args) -> int:
    from repro.exec import connect_and_serve

    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        print("--connect expects HOST:PORT, got %r" % (args.connect,),
              file=sys.stderr)
        return 2
    return connect_and_serve(host or "127.0.0.1", int(port))


def _cmd_submit(args) -> int:
    import json

    from repro.io.service_json import request_from_spec_payload
    from repro.service.client import ServiceUnreachable, submit

    with open(args.spec, "r", encoding="utf-8") as handle:
        spec_payload = json.load(handle)
    config = {}
    for item in args.overrides:
        key, sep, raw = item.partition("=")
        if not sep:
            print("--set expects KEY=JSON, got %r" % (item,), file=sys.stderr)
            return 2
        try:
            config[key] = json.loads(raw)
        except ValueError:
            config[key] = raw  # bare strings pass through, e.g. policy names
    request = request_from_spec_payload(spec_payload, config)
    try:
        status, document = submit(
            args.host, args.port, request, timeout_s=args.timeout
        )
    except ServiceUnreachable as exc:
        print("service unreachable: %s" % exc, file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if status != 200:
        print("HTTP %d %s: %s" % (status, document.get("error", "?"),
                                  document.get("detail", "")), file=sys.stderr)
        for error in document.get("errors", []):
            print("  - %s" % error, file=sys.stderr)
        return 1
    if document.get("status") == "failed":
        error = document.get("error", {})
        print("job failed (%s): %s"
              % (error.get("kind", "?"), error.get("detail", "")),
              file=sys.stderr)
        return 1
    result = document.get("result", {})
    print("status=done feasible=%s cost=%s cache_hit=%s coalesced=%s"
          % (result.get("feasible"), result.get("cost"),
             document.get("cache_hit"), document.get("coalesced")))
    return 0


_HANDLERS = {
    "synthesize": _cmd_synthesize,
    "generate": _cmd_generate,
    "example": _cmd_example,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure2": _cmd_figure2,
    "experiments": _cmd_experiments,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "worker": _cmd_worker,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
