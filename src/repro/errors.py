"""Exception hierarchy for the CRUSADE co-synthesis library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  More specific
subclasses distinguish specification problems (the user's input is
malformed) from synthesis failures (the input is well formed but no
architecture meeting the constraints was found).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecificationError(ReproError):
    """The embedded-system specification is malformed.

    Raised during validation, e.g. for cyclic task graphs, edges that
    reference unknown tasks, non-positive periods, or execution-time
    vectors that name PE types absent from the resource library.
    """


class ResourceLibraryError(ReproError):
    """The resource library is malformed or internally inconsistent."""


class AllocationError(ReproError):
    """No feasible allocation exists for a cluster.

    Raised when every entry of the allocation array has been exhausted
    without finding a placement that satisfies capacity constraints.
    """


class SchedulingError(ReproError):
    """The scheduler could not produce a schedule.

    This indicates an internal inconsistency (e.g. an unallocated task
    reached the scheduler), not merely a missed deadline; missed
    deadlines are reported through finish-time estimation results.
    """


class SynthesisError(ReproError):
    """Co-synthesis completed without finding a deadline-feasible
    architecture.

    Carries the best (least infeasible) architecture found so that
    callers can inspect how close synthesis came.
    """

    def __init__(self, message: str, best_result=None):
        super().__init__(message)
        self.best_result = best_result


class RoutingError(ReproError):
    """The place-and-route simulator could not route a circuit.

    Corresponds to the "Not routable" entries of Table 1 in the paper.
    """


class DependabilityError(ReproError):
    """Availability requirements cannot be met with the allowed spares."""
