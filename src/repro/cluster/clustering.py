"""Critical-path task clustering (COSYN method, Section 5).

A *cluster* is a group of tasks always allocated to the same PE.
Clustering zeroes intra-cluster communication, shortening the longest
path, and shrinks the allocation search space.  The procedure:

1. Assign deadline-based priority levels to tasks.
2. Pick the highest-priority unclustered task; grow a cluster along
   the current longest path by repeatedly absorbing the eligible
   successor with the highest priority.
3. Recompute priority levels (intra-cluster edges now cost zero) and
   repeat until every task is clustered.

Eligibility respects the paper's constraints: tasks in a cluster must
share at least one allowed PE type, must not violate exclusion
vectors, and the cluster must stay small enough to fit on at least one
library PE (gate area within the ERUF cap for hardware, memory within
the largest DRAM bank for software).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SpecificationError
from repro.cluster.priority import (
    NO_DEADLINE_PRIORITY,
    PriorityContext,
    compute_task_priorities,
)
from repro.delay.model import DelayPolicy
from repro.graph.spec import SystemSpec
from repro.graph.task import MemoryRequirement, Task
from repro.graph.taskgraph import TaskGraph
from repro.resources.library import ResourceLibrary
from repro.units import GATES_PER_PFU


@dataclass
class Cluster:
    """A group of tasks always allocated to the same PE.

    Characterized, per Section 2.2, by the preference and exclusion
    vectors of its constituent tasks; we additionally aggregate the
    resource demands capacity checks need.
    """

    name: str
    graph: str
    task_names: List[str] = field(default_factory=list)
    priority: float = NO_DEADLINE_PRIORITY

    #: Intersection of member tasks' allowed PE types.
    allowed_pe_types: Set[str] = field(default_factory=set)
    #: Union of member exclusion vectors (task names).
    exclusions: Set[str] = field(default_factory=set)
    area_gates: int = 0
    pins: int = 0
    memory: MemoryRequirement = field(default_factory=MemoryRequirement)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self.task_names

    @property
    def size(self) -> int:
        """Number of member tasks."""
        return len(self.task_names)

    def preference_weight(self, pe_type: str, spec_graph: TaskGraph) -> float:
        """Aggregate preference of the cluster for a PE type: the
        product of member preferences (any 0 forbids)."""
        weight = 1.0
        for task_name in self.task_names:
            weight *= spec_graph.task(task_name).preference.get(pe_type, 1.0)
        return weight


@dataclass
class ClusteringResult:
    """Output of :func:`cluster_spec`."""

    clusters: Dict[str, Cluster]
    task_to_cluster: Dict[Tuple[str, str], str]

    def cluster_of(self, graph_name: str, task_name: str) -> Cluster:
        """Cluster holding a task (keyed by graph + task name)."""
        try:
            return self.clusters[self.task_to_cluster[(graph_name, task_name)]]
        except KeyError:
            raise SpecificationError(
                "task %r of graph %r is not clustered" % (task_name, graph_name)
            ) from None

    def ordered_by_priority(self) -> List[Cluster]:
        """Clusters in decreasing priority order (allocation order).

        Ties break on name for determinism.
        """
        return sorted(
            self.clusters.values(), key=lambda c: (-c.priority, c.name)
        )

    def clusters_of_graph(self, graph_name: str) -> List[Cluster]:
        """Clusters belonging to one task graph, sorted by name."""
        return sorted(
            (c for c in self.clusters.values() if c.graph == graph_name),
            key=lambda c: c.name,
        )

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


def _allowed_types(task: Task, library: ResourceLibrary) -> Set[str]:
    return {
        pe_name
        for pe_name in task.exec_times
        if task.can_run_on(pe_name) and library.has_pe_type(pe_name)
    }


def _capacity_caps(
    library: ResourceLibrary, delay_policy: DelayPolicy
) -> Tuple[int, int]:
    """(max hardware gates per cluster, max software memory bytes).

    A cluster must fit on at least one library part: hardware clusters
    within the largest device's ERUF-capped gates, software clusters
    within the largest processor DRAM bank.
    """
    hw_gates = 0
    for pe_type in library.asics():
        hw_gates = max(hw_gates, pe_type.gates)
    for pe_type in library.ppes():
        capped = int(pe_type.pfus * delay_policy.eruf) * GATES_PER_PFU
        hw_gates = max(hw_gates, capped)
    sw_memory = 0
    for processor in library.processors():
        sw_memory = max(sw_memory, processor.max_memory_bytes)
    return hw_gates, sw_memory


def _can_absorb(
    cluster: Cluster,
    task: Task,
    library: ResourceLibrary,
    hw_gate_cap: int,
    sw_memory_cap: int,
    max_cluster_size: int,
) -> bool:
    """Check whether ``task`` may join ``cluster``."""
    if cluster.size >= max_cluster_size:
        return False
    if task.name in cluster.exclusions:
        return False
    if cluster.task_names and any(
        member in task.exclusions for member in cluster.task_names
    ):
        return False
    shared = cluster.allowed_pe_types & _allowed_types(task, library)
    if not shared:
        return False
    # The grown cluster must still fit somewhere.
    hardware_types = {
        t for t in shared if library.pe_type(t).is_hardware
    }
    software_types = shared - hardware_types
    fits_hw = bool(hardware_types) and (
        cluster.area_gates + task.area_gates <= hw_gate_cap
    )
    fits_sw = bool(software_types) and (
        cluster.memory.total + task.memory.total <= sw_memory_cap
    )
    return fits_hw or fits_sw


def _absorb(cluster: Cluster, task: Task, library: ResourceLibrary) -> None:
    cluster.task_names.append(task.name)
    if len(cluster.task_names) == 1:
        cluster.allowed_pe_types = _allowed_types(task, library)
    else:
        cluster.allowed_pe_types &= _allowed_types(task, library)
    cluster.exclusions |= set(task.exclusions)
    cluster.area_gates += task.area_gates
    cluster.pins += task.pins
    cluster.memory = cluster.memory + task.memory


def cluster_graph(
    graph: TaskGraph,
    library: ResourceLibrary,
    context: PriorityContext,
    delay_policy: Optional[DelayPolicy] = None,
    max_cluster_size: int = 8,
    cluster_prefix: Optional[str] = None,
    growth_scores: Optional[Dict[str, float]] = None,
) -> List[Cluster]:
    """Cluster one task graph along successive critical paths.

    Returns clusters in creation order; each carries the priority of
    its most urgent member at creation time.  ``growth_scores``
    overrides the metric used to pick which eligible successor joins
    the cluster -- CRUSADE-FT passes fault-tolerance levels here while
    seeds are still picked by priority level (Section 6).
    """
    if delay_policy is None:
        delay_policy = DelayPolicy()
    if cluster_prefix is None:
        cluster_prefix = graph.name
    hw_cap, sw_cap = _capacity_caps(library, delay_policy)
    clustered: Dict[str, str] = {}
    clusters: List[Cluster] = []
    # Intra-cluster edges cost zero when recomputing priorities.
    base_comm = context.comm_time

    def comm_time(g: TaskGraph, edge) -> float:
        src_cluster = clustered.get(edge.src)
        if src_cluster is not None and src_cluster == clustered.get(edge.dst):
            return 0.0
        return base_comm(g, edge)

    working_context = PriorityContext(
        exec_time=context.exec_time, comm_time=comm_time
    )

    while len(clustered) < len(graph):
        priorities = compute_task_priorities(graph, working_context)
        unclustered = [t for t in graph.topological_order() if t not in clustered]
        # Highest priority first; lexicographic tiebreak.
        seed_name = max(unclustered, key=lambda t: (priorities[t], t))
        cluster = Cluster(
            name="%s/c%03d" % (cluster_prefix, len(clusters)),
            graph=graph.name,
            priority=priorities[seed_name],
        )
        _absorb(cluster, graph.task(seed_name), library)
        clustered[seed_name] = cluster.name
        current = seed_name
        while True:
            candidates = [
                s
                for s in graph.successors(current)
                if s not in clustered
                and _can_absorb(
                    cluster, graph.task(s), library, hw_cap, sw_cap, max_cluster_size
                )
            ]
            if not candidates:
                break
            scores = growth_scores if growth_scores is not None else priorities
            nxt = max(candidates, key=lambda t: (scores.get(t, priorities[t]), t))
            _absorb(cluster, graph.task(nxt), library)
            clustered[nxt] = cluster.name
            current = nxt
        clusters.append(cluster)
    return clusters


def cluster_spec(
    spec: SystemSpec,
    library: ResourceLibrary,
    context: Optional[PriorityContext] = None,
    delay_policy: Optional[DelayPolicy] = None,
    max_cluster_size: int = 8,
    growth_scores: Optional[Dict[Tuple[str, str], float]] = None,
) -> ClusteringResult:
    """Cluster every task graph of a system specification.

    ``growth_scores`` maps (graph name, task name) to the metric used
    for cluster growth (CRUSADE-FT's fault-tolerance levels).
    """
    if context is None:
        context = PriorityContext.pessimistic(library)
    clusters: Dict[str, Cluster] = {}
    task_to_cluster: Dict[Tuple[str, str], str] = {}
    for graph_name in spec.graph_names():
        graph = spec.graph(graph_name)
        per_graph_scores = None
        if growth_scores is not None:
            per_graph_scores = {
                task: score
                for (g, task), score in growth_scores.items()
                if g == graph_name
            }
        for cluster in cluster_graph(
            graph,
            library,
            context,
            delay_policy=delay_policy,
            max_cluster_size=max_cluster_size,
            growth_scores=per_graph_scores,
        ):
            clusters[cluster.name] = cluster
            for task_name in cluster.task_names:
                task_to_cluster[(graph_name, task_name)] = cluster.name
    return ClusteringResult(clusters=clusters, task_to_cluster=task_to_cluster)


def trivial_clustering(
    spec: SystemSpec, library: ResourceLibrary
) -> ClusteringResult:
    """One cluster per task: clustering disabled.

    Used by the clustering ablation benchmark to quantify COSYN's
    claim that clustering trades under 1 % cost for a large CPU-time
    saving.
    """
    clusters: Dict[str, Cluster] = {}
    task_to_cluster: Dict[Tuple[str, str], str] = {}
    context = PriorityContext.pessimistic(library)
    for graph_name in spec.graph_names():
        graph = spec.graph(graph_name)
        priorities = compute_task_priorities(graph, context)
        for index, task_name in enumerate(graph.topological_order()):
            task = graph.task(task_name)
            cluster = Cluster(
                name="%s/s%04d" % (graph_name, index),
                graph=graph_name,
                priority=priorities[task_name],
            )
            _absorb(cluster, task, library)
            clusters[cluster.name] = cluster
            task_to_cluster[(graph_name, task_name)] = cluster.name
    return ClusteringResult(clusters=clusters, task_to_cluster=task_to_cluster)
