"""Task clustering: priority levels and critical-path cluster formation.

CRUSADE inherits COSYN's clustering step (Section 5): deadline-based
priority levels identify the current longest path through each task
graph, a cluster is formed along it (zeroing its communication costs),
priorities are recomputed, and the process repeats on the remaining
unclustered tasks.  Clustering shrinks the allocation search space --
the paper reports up to three-fold CPU-time reduction for under 1 %
cost increase.
"""

from repro.cluster.priority import (
    PriorityContext,
    compute_edge_priorities,
    compute_task_priorities,
)
from repro.cluster.clustering import Cluster, ClusteringResult, cluster_spec

__all__ = [
    "PriorityContext",
    "compute_edge_priorities",
    "compute_task_priorities",
    "Cluster",
    "ClusteringResult",
    "cluster_spec",
]
