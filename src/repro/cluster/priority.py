"""Deadline-based priority levels for tasks and edges.

Section 5: "The priority level of a task is an indication of the
longest path from the task to a task with a specified deadline in terms
of computation and communication costs as well as the deadline."
Before allocation, maximum execution and communication times along the
longest path are summed and the deadline subtracted; after each
allocation (and after clustering) the levels are recomputed with the
actual times of allocated resources and zeroed intra-cluster
communication.

A larger priority level means the task is more urgent (less slack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.edge import Edge
from repro.graph.task import Task
from repro.graph.taskgraph import TaskGraph
from repro.resources.library import ResourceLibrary

#: Priority assigned to tasks from which no deadline is reachable.
#: They still need scheduling but never constrain feasibility.
NO_DEADLINE_PRIORITY = float("-inf")


@dataclass
class PriorityContext:
    """Time estimators used for priority computation.

    ``exec_time(graph, task)`` and ``comm_time(graph, edge)`` return the
    execution/communication durations priorities should assume.  The
    defaults implement the pre-allocation pessimistic estimate: a
    task's maximum execution time over allowed PE types and an edge's
    maximum communication time over library link types (with assumed
    port counts).  CRUSADE swaps in allocation-aware estimators as the
    architecture takes shape.
    """

    exec_time: Callable[[TaskGraph, Task], float]
    comm_time: Callable[[TaskGraph, Edge], float]

    @classmethod
    def pessimistic(cls, library: ResourceLibrary) -> "PriorityContext":
        """Pre-allocation estimators using library maxima."""
        link_types = library.links_by_cost()
        if not link_types:
            raise SpecificationError("library has no link types")

        def exec_time(graph: TaskGraph, task: Task) -> float:
            usable = [
                wcet
                for pe_name, wcet in task.exec_times.items()
                if wcet is not None
                and task.can_run_on(pe_name)
                and library.has_pe_type(pe_name)
            ]
            if not usable:
                raise SpecificationError(
                    "task %r has no usable PE type in library" % (task.name,)
                )
            return max(usable)

        def comm_time(graph: TaskGraph, edge: Edge) -> float:
            if edge.bytes_ == 0:
                return 0.0
            return max(l.comm_time(edge.bytes_) for l in link_types)

        return cls(exec_time=exec_time, comm_time=comm_time)

    @classmethod
    def optimistic(cls, library: ResourceLibrary) -> "PriorityContext":
        """Best-case estimators (minimum times); used by feasibility
        pre-checks, not by the main flow."""
        link_types = library.links_by_cost()

        def exec_time(graph: TaskGraph, task: Task) -> float:
            usable = [
                wcet
                for pe_name, wcet in task.exec_times.items()
                if wcet is not None
                and task.can_run_on(pe_name)
                and library.has_pe_type(pe_name)
            ]
            if not usable:
                raise SpecificationError(
                    "task %r has no usable PE type in library" % (task.name,)
                )
            return min(usable)

        def comm_time(graph: TaskGraph, edge: Edge) -> float:
            if edge.bytes_ == 0:
                return 0.0
            return min(l.comm_time(edge.bytes_) for l in link_types)

        return cls(exec_time=exec_time, comm_time=comm_time)


def compute_task_priorities(
    graph: TaskGraph, context: PriorityContext
) -> Dict[str, float]:
    """Priority level of every task in ``graph``.

    For a task ``t`` with effective deadline ``d``:
        ``prio(t) = exec(t) - d``
    and for every task with successors:
        ``prio(t) = max(prio(t), exec(t) + max_s(comm(t, s) + prio(s)))``
    evaluated in reverse topological order.  Tasks from which no
    deadline is reachable get :data:`NO_DEADLINE_PRIORITY`.
    """
    priorities: Dict[str, float] = {}
    for task_name in reversed(graph.topological_order()):
        task = graph.task(task_name)
        exec_time = context.exec_time(graph, task)
        best = NO_DEADLINE_PRIORITY
        deadline = graph.effective_deadline(task_name)
        if deadline is not None:
            best = exec_time - deadline
        for succ_name in graph.successors(task_name):
            succ_priority = priorities[succ_name]
            if succ_priority == NO_DEADLINE_PRIORITY:
                continue
            edge = graph.edge(task_name, succ_name)
            candidate = exec_time + context.comm_time(graph, edge) + succ_priority
            if candidate > best:
                best = candidate
        priorities[task_name] = best
    return priorities


def recompute_priorities(
    spec,
    context: PriorityContext,
    previous: Dict[str, Dict[str, float]],
    dirty,
    tracer=None,
) -> Dict[str, Dict[str, float]]:
    """Priority levels for every graph, recomputing only ``dirty`` ones.

    After a placement, a graph none of whose clusters sit on a touched
    PE sees identical estimator inputs (its placements, execution
    times and link choices are unchanged), so its levels from
    ``previous`` are reused verbatim.  The caller is responsible for
    the dirty set being conservative -- see
    :attr:`repro.perf.cow.AppliedOption.touched_pes`.
    """
    updated: Dict[str, Dict[str, float]] = {}
    for name in spec.graph_names():
        if name in dirty:
            if tracer is not None:
                tracer.incr("perf.priorities.recomputed")
            updated[name] = compute_task_priorities(spec.graph(name), context)
        else:
            if tracer is not None:
                tracer.incr("perf.priorities.reused")
            updated[name] = previous[name]
    return updated


def compute_edge_priorities(
    graph: TaskGraph,
    context: PriorityContext,
    task_priorities: Optional[Dict[str, float]] = None,
) -> Dict[Tuple[str, str], float]:
    """Priority level of every edge: ``comm(e) + prio(dst)``.

    Edges into no-deadline tasks inherit :data:`NO_DEADLINE_PRIORITY`.
    """
    if task_priorities is None:
        task_priorities = compute_task_priorities(graph, context)
    edge_priorities: Dict[Tuple[str, str], float] = {}
    for edge in graph.iter_edges():
        dst_priority = task_priorities[edge.dst]
        if dst_priority == NO_DEADLINE_PRIORITY:
            edge_priorities[edge.key] = NO_DEADLINE_PRIORITY
        else:
            edge_priorities[edge.key] = context.comm_time(graph, edge) + dst_priority
    return edge_priorities
