"""Dynamic reconfiguration: the paper's core contribution (Section 4).

Four pieces:

* :mod:`repro.reconfig.reboot` -- boot-time accounting: the implicit
  ``reboot_task`` charged whenever a programmable device switches
  configuration modes;
* :mod:`repro.reconfig.compatibility` -- identification of
  non-overlapping task graphs, from explicit compatibility vectors or
  automatically from the schedule (Figure 3's detection step);
* :mod:`repro.reconfig.interface` -- reconfiguration controller
  interface synthesis: the option array over serial/parallel x
  master/slave x clock rate x chaining, cheapest option meeting the
  boot-time requirement;
* :mod:`repro.reconfig.merge` -- the iterative PPE mode-merge
  procedure of Figure 3, driven by merge potential.
"""

from repro.reconfig.reboot import DEFAULT_PROGRAMMING_HZ, default_boot_time
from repro.reconfig.compatibility import (
    CompatibilityAnalysis,
    occupancy_windows,
    windows_overlap_periodic,
)
from repro.reconfig.interface import (
    InterfacePlan,
    ProgrammingOption,
    default_option_array,
    synthesize_interface,
)
from repro.reconfig.merge import MergeOutcome, merge_reconfigurable_pes

__all__ = [
    "DEFAULT_PROGRAMMING_HZ",
    "default_boot_time",
    "CompatibilityAnalysis",
    "occupancy_windows",
    "windows_overlap_periodic",
    "InterfacePlan",
    "ProgrammingOption",
    "default_option_array",
    "synthesize_interface",
    "MergeOutcome",
    "merge_reconfigurable_pes",
]
