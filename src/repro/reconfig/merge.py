"""The dynamic-reconfiguration merge procedure (Figure 3).

Once an architecture meets its deadlines, CRUSADE computes its *merge
potential* (number of PPEs plus links), builds a *merge array* of PPE
pairs that could collapse into one multi-mode device, and explores
each merge: the donor device's modes become new modes of the host,
the donor is removed, the system is rescheduled (now paying reboot
tasks at mode switches), and the merge is accepted only when every
deadline still holds and the cost went down.  The loop repeats while
cost or merge potential decreases.  A second pass tries combining
modes *within* each device when resources allow (Section 4.2's final
step), shrinking boot storage and reconfiguration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.errors import AllocationError
from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.delay.model import DelayPolicy
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.reconfig.compatibility import CompatibilityAnalysis
from repro.resources.pe import PpeType
from repro.alloc.evaluate import EvalResult, choose_link_type, _connect_cluster_edges


@dataclass
class MergeOutcome:
    """Result of the merge phase."""

    arch: Architecture
    result: EvalResult
    merges_accepted: int = 0
    merges_rejected: int = 0
    mode_combines: int = 0
    rounds: int = 0


def _graphs_on(pe: PEInstance, clustering: ClusteringResult) -> Set[str]:
    """Task graphs with clusters configured on a PE instance."""
    return {clustering.clusters[c].graph for c in pe.clusters()}


def _donor_fits_host(
    donor: PEInstance, host: PEInstance, policy: DelayPolicy
) -> bool:
    """Every donor mode must fit an empty mode of the host under the
    ERUF/EPUF caps."""
    host_type = host.pe_type
    if not isinstance(host_type, PpeType):
        return False
    for mode in donor.modes:
        if not policy.admits(host_type, mode.gates_used, mode.pins_used):
            return False
    return True


def _move_cluster(
    arch: Architecture,
    cluster_name: str,
    clustering: ClusteringResult,
    spec: SystemSpec,
    target_pe_id: str,
    target_mode: int,
    link_strategy: str = "cheapest",
) -> None:
    """Re-home one cluster onto (target pe, mode), reconnecting links."""
    cluster = clustering.clusters[cluster_name]
    arch.deallocate_cluster(
        cluster_name,
        gates=cluster.area_gates,
        pins=cluster.pins,
        memory=cluster.memory,
    )
    arch.allocate_cluster(
        cluster_name,
        target_pe_id,
        target_mode,
        gates=cluster.area_gates,
        pins=cluster.pins,
        memory=cluster.memory,
    )
    link_type = choose_link_type(arch, link_strategy)
    _connect_cluster_edges(
        arch, cluster, arch.pe(target_pe_id), clustering, spec, link_type
    )


def _apply_merge(
    arch: Architecture,
    host_id: str,
    donor_id: str,
    clustering: ClusteringResult,
    spec: SystemSpec,
) -> None:
    """Fold the donor's modes into fresh modes of the host and delete
    the donor."""
    donor = arch.pe(donor_id)
    host = arch.pe(host_id)
    for mode in list(donor.modes):
        if mode.empty:
            continue
        target_mode = host.new_mode().index
        for cluster_name in sorted(mode.clusters):
            _move_cluster(
                arch, cluster_name, clustering, spec, host_id, target_mode
            )
    arch.remove_pe(donor_id)
    arch.compact_pe_modes(host_id)


def _merge_array(
    arch: Architecture,
    clustering: ClusteringResult,
    compat: CompatibilityAnalysis,
    policy: DelayPolicy,
) -> List[Tuple[str, str]]:
    """Candidate (host, donor) pairs, biggest donor saving first.

    A pair qualifies when every donor mode fits the host under the
    caps and every donor graph is compatible with every host graph.
    """
    # Devices carrying replicated clusters are left as allocated: their
    # mode structure encodes cross-mode residency that whole-device
    # moves would break.
    ppes = [p for p in arch.programmable_pes() if not p.has_replicas]
    candidates: List[Tuple[float, str, str]] = []
    for host in ppes:
        host_graphs = _graphs_on(host, clustering)
        for donor in ppes:
            if donor.id == host.id:
                continue
            if not donor.clusters():
                continue
            if not _donor_fits_host(donor, host, policy):
                continue
            donor_graphs = _graphs_on(donor, clustering)
            if not compat.all_compatible(host_graphs, donor_graphs):
                continue
            saving = donor.pe_type.cost
            candidates.append((saving, host.id, donor.id))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    return [(host, donor) for _, host, donor in candidates]


def _try_combine_modes(
    clustering: ClusteringResult,
    spec: SystemSpec,
    policy: DelayPolicy,
    evaluate: Callable[[Architecture], EvalResult],
    best: EvalResult,
) -> Tuple[EvalResult, int]:
    """Combine mode pairs within each PPE when capacity allows and
    deadlines stay met (Section 4.2's post-allocation step)."""
    combines = 0
    current = best
    progress = True
    while progress:
        progress = False
        for pe in current.arch.programmable_pes():
            if pe.n_modes < 2 or pe.has_replicas:
                continue
            ppe_type = pe.pe_type
            assert isinstance(ppe_type, PpeType)
            done = False
            for a in range(pe.n_modes):
                for b in range(a + 1, pe.n_modes):
                    mode_a, mode_b = pe.mode(a), pe.mode(b)
                    if mode_a.empty or mode_b.empty:
                        continue
                    if not policy.admits(
                        ppe_type,
                        mode_a.gates_used + mode_b.gates_used,
                        mode_a.pins_used + mode_b.pins_used,
                    ):
                        continue
                    trial = current.arch.clone()
                    trial_pe = trial.pe(pe.id)
                    for cluster_name in sorted(trial_pe.mode(b).clusters):
                        _move_cluster(
                            trial, cluster_name, clustering, spec, pe.id, a
                        )
                    trial.compact_pe_modes(pe.id)
                    verdict = evaluate(trial)
                    if (
                        verdict is not None
                        and verdict.feasible
                        and verdict.cost <= current.cost
                    ):
                        current = verdict
                        combines += 1
                        progress = True
                        done = True
                        break
                if done:
                    break
            if progress:
                break
    return current, combines


def merge_reconfigurable_pes(
    spec: SystemSpec,
    clustering: ClusteringResult,
    compat: CompatibilityAnalysis,
    policy: DelayPolicy,
    initial: EvalResult,
    evaluate: Callable[[Architecture], EvalResult],
    combine_modes: bool = True,
    tracer: Tracer = NULL_TRACER,
    prune: bool = False,
    accept: Optional[Callable[[EvalResult, EvalResult], bool]] = None,
) -> MergeOutcome:
    """Run the Figure 3 merge loop from a deadline-feasible start.

    ``evaluate`` re-schedules a trial architecture and returns its
    verdict; the driver supplies it so merge stays agnostic of
    priorities/boot-time details.

    ``prune`` enables the admissible dollar-cost cut: acceptance
    demands a strict cost decrease, the evaluator's verdict cost is
    hardware plus a freshly synthesized (non-negative) interface
    surcharge, so a trial whose hardware-only cost already reaches the
    incumbent's total can be rejected without scheduling.  The
    accepted merge sequence is identical either way.

    ``accept`` overrides the acceptance rule: called as
    ``accept(verdict, incumbent)``, it replaces the paper's
    feasible-and-strictly-cheaper test (the policy hook behind
    ``SynthesisPolicy.accept_merge``).  Because the dollar-cost cut's
    admissibility argument assumes the default rule, a custom
    ``accept`` disables the ``prune`` cut.
    """
    if not initial.feasible:
        raise AllocationError(
            "merge phase requires a deadline-feasible starting architecture"
        )
    outcome = MergeOutcome(arch=initial.arch, result=initial)
    current = initial
    while True:
        outcome.rounds += 1
        tracer.incr("merge.rounds")
        cost_before = current.cost
        potential_before = current.arch.merge_potential()
        for host_id, donor_id in _merge_array(
            current.arch, clustering, compat, policy
        ):
            if (
                host_id not in current.arch.pes
                or donor_id not in current.arch.pes
            ):
                continue
            tracer.incr("merge.candidates")
            trial = current.arch.clone()
            try:
                _apply_merge(trial, host_id, donor_id, clustering, spec)
            except AllocationError:
                outcome.merges_rejected += 1
                tracer.incr("merge.rejects.apply_error")
                tracer.event(
                    "merge.reject", host=host_id, donor=donor_id,
                    reason="apply_error",
                )
                continue
            if (
                prune
                and accept is None
                and trial.cost - trial.interface_cost >= current.cost
            ):
                outcome.merges_rejected += 1
                tracer.incr("merge.rejects.cost")
                tracer.incr("prune.cut")
                tracer.incr("prune.cut.merge")
                tracer.event(
                    "merge.reject", host=host_id, donor=donor_id,
                    reason="cost",
                )
                continue
            verdict = evaluate(trial)
            if verdict is not None and (
                accept(verdict, current)
                if accept is not None
                else verdict.feasible and verdict.cost < current.cost
            ):
                current = verdict
                outcome.merges_accepted += 1
                tracer.incr("merge.accepts")
                tracer.event(
                    "merge.accept", host=host_id, donor=donor_id,
                    cost=verdict.cost,
                )
            else:
                outcome.merges_rejected += 1
                if verdict is None:
                    reason = "interface"
                elif not verdict.feasible:
                    reason = "deadline"
                elif accept is not None:
                    reason = "policy"
                else:
                    reason = "cost"
                tracer.incr("merge.rejects.%s" % reason)
                tracer.event(
                    "merge.reject", host=host_id, donor=donor_id, reason=reason
                )
        improved = (
            current.cost < cost_before
            or current.arch.merge_potential() < potential_before
        )
        if not improved:
            break
    if combine_modes:
        current, combines = _try_combine_modes(
            clustering, spec, policy, evaluate, current
        )
        outcome.mode_combines = combines
        tracer.incr("merge.mode_combines", combines)
    outcome.arch = current.arch
    outcome.result = current
    return outcome
