"""Reconfiguration controller interface synthesis (Section 4.4).

FPGAs are programmed through a serial or 8-bit-parallel interface in
master mode (from a stand-alone PROM) or slave mode (from a CPU);
CPLDs program through their boundary-scan test port, which behaves
like a slave serial interface here.  Clock rates span 1-10 MHz.
Devices may be *chained* to share one PROM and one programming port,
reducing cost -- but a chain streams every member's image in one pass,
so chaining is only offered to devices that never reconfigure at run
time (single-mode devices booting at power-up).

For each architecture the synthesizer builds a *reconfiguration option
array* per device -- every (interface kind x clock) option annotated
with boot time and dollar cost, ordered by increasing cost -- and
selects the cheapest option whose boot time meets the system's
a-priori boot-time requirement (multi-mode devices) or the power-up
budget (single-mode devices and chains).  Boot time is recomputed from
the resources (PFUs) that actually require reconfiguration, as the
paper prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AllocationError, SynthesisError
from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.resources.pe import PpeType
from repro.units import KB


class InterfaceKind(enum.Enum):
    """How a device's configuration stream is delivered.

    FPGAs program through serial or 8-bit-parallel interfaces in
    master (stand-alone PROM) or slave (CPU-driven) mode; CPLDs
    program through their standard boundary-scan test port (JTAG),
    which behaves like a slow CPU-driven serial interface but costs
    almost nothing -- the test port exists anyway (Section 4.4).
    """

    SERIAL_MASTER = "serial-master"
    PARALLEL_MASTER = "parallel-master"
    SERIAL_SLAVE = "serial-slave"
    PARALLEL_SLAVE = "parallel-slave"
    JTAG = "jtag"

    @property
    def width_bits(self) -> int:
        """Bits delivered per programming clock."""
        if self in (InterfaceKind.PARALLEL_MASTER, InterfaceKind.PARALLEL_SLAVE):
            return 8
        return 1

    @property
    def is_master(self) -> bool:
        """Master interfaces boot from a stand-alone PROM."""
        return self in (InterfaceKind.SERIAL_MASTER, InterfaceKind.PARALLEL_MASTER)

    @property
    def is_jtag(self) -> bool:
        """The boundary-scan test port (CPLDs only)."""
        return self is InterfaceKind.JTAG


#: Clock rates the paper cites for current (1997) technology.
PROGRAMMING_CLOCKS_HZ = (1e6, 2e6, 4e6, 8e6, 10e6)

#: PROM pricing: base part plus per-128KB increments; faster and wider
#: PROMs cost more (multipliers).
_PROM_BASE_COST = 2.0
_PROM_PER_128KB = 3.0
_PROM_SPEED_SURCHARGE_PER_MHZ = 0.35
_PARALLEL_WIDTH_MULTIPLIER = 1.8
#: Slave interfaces need a processor port plus image storage in DRAM
#: (priced at the catalog's top-bank $/byte).
_SLAVE_PORT_COST = 4.0
_SLAVE_DRAM_COST_PER_BYTE = 125.0 / (64 * 1024 * KB)
#: Wiring cost per device added to a shared chain.
_CHAIN_WIRING_COST = 0.5
#: Tapping the existing boundary-scan chain (CPLD programming).
_JTAG_TAP_COST = 0.8
#: JTAG TCK rates are modest; cap at 5 MHz.
_JTAG_MAX_HZ = 5e6


@dataclass(frozen=True)
class ProgrammingOption:
    """One entry of a device's reconfiguration option array."""

    kind: InterfaceKind
    clock_hz: float

    @property
    def name(self) -> str:
        return "%s@%.0fMHz" % (self.kind.value, self.clock_hz / 1e6)

    def boot_time(self, config_bits: int) -> float:
        """Time to stream ``config_bits`` through this interface."""
        if config_bits < 0:
            raise AllocationError("config_bits must be non-negative")
        return config_bits / (self.clock_hz * self.kind.width_bits)

    def cost(self, storage_bytes: int) -> float:
        """Dollar cost of the interface incl. image storage."""
        if storage_bytes < 0:
            raise AllocationError("storage must be non-negative")
        if self.kind.is_master:
            prom = _PROM_BASE_COST + _PROM_PER_128KB * (
                -(-storage_bytes // (128 * KB))
            )
            prom += _PROM_SPEED_SURCHARGE_PER_MHZ * (self.clock_hz / 1e6)
            if self.kind.width_bits == 8:
                prom *= _PARALLEL_WIDTH_MULTIPLIER
            return prom
        if self.kind.is_jtag:
            # The boundary-scan chain exists for testing anyway; only
            # image storage in DRAM is charged.
            return _JTAG_TAP_COST + storage_bytes * _SLAVE_DRAM_COST_PER_BYTE
        cost = _SLAVE_PORT_COST + storage_bytes * _SLAVE_DRAM_COST_PER_BYTE
        if self.kind.width_bits == 8:
            cost *= 1.4  # wider CPU port wiring
        return cost


def default_option_array() -> List[ProgrammingOption]:
    """Every (kind x clock) option, ordered by the *typical* cost of a
    256 KB image, cheapest first -- the paper's ordering rule.  JTAG
    entries are capped at realistic TCK rates."""
    options = []
    for kind in InterfaceKind:
        for clock in PROGRAMMING_CLOCKS_HZ:
            if kind.is_jtag and clock > _JTAG_MAX_HZ:
                continue
            options.append(ProgrammingOption(kind=kind, clock_hz=clock))
    options.sort(key=lambda o: (o.cost(256 * KB), o.name))
    return options


def _usable_by(option: ProgrammingOption, pe: PEInstance, has_processor: bool) -> bool:
    """Whether a device may use a programming option.

    JTAG is the CPLD path (their standard test port); FPGAs use the
    serial/parallel master/slave interfaces.  Slave and JTAG modes
    need a CPU in the architecture to drive the stream.
    """
    from repro.resources.pe import PEKind

    is_cpld = pe.pe_type.kind is PEKind.CPLD
    if option.kind.is_jtag:
        return is_cpld and has_processor
    if is_cpld:
        return False
    if not option.kind.is_master and not has_processor:
        return False
    return True


@dataclass
class DeviceInterface:
    """The chosen programming arrangement for one PPE instance."""

    pe_id: str
    option: ProgrammingOption
    storage_bytes: int
    chained_with: Tuple[str, ...] = ()
    cost_share: float = 0.0
    runtime_boot_times: Dict[int, float] = field(default_factory=dict)


@dataclass
class InterfacePlan:
    """The synthesized reconfiguration controller interface."""

    devices: Dict[str, DeviceInterface] = field(default_factory=dict)
    total_cost: float = 0.0

    def boot_time_fn(self) -> Callable[[PEInstance, int], float]:
        """A (PE instance, mode) -> boot-time callable for the
        scheduler, reflecting the chosen interfaces."""

        def boot_time(pe: PEInstance, mode_index: int) -> float:
            device = self.devices.get(pe.id)
            if device is None:
                return 0.0
            return device.runtime_boot_times.get(mode_index, 0.0)

        return boot_time


def _mode_config_bits(pe: PEInstance) -> List[int]:
    """Configuration-stream bits per mode of a programmable instance."""
    assert isinstance(pe.pe_type, PpeType)
    return [
        pe.pe_type.config_bits_for(pe.pfus_used(mode.index)) for mode in pe.modes
    ]


def _storage_bytes(pe: PEInstance) -> int:
    """PROM/DRAM bytes needed to hold every mode's image.

    Full-reconfiguration devices store one full image per mode;
    partially reconfigurable devices store per-mode partial images.
    """
    assert isinstance(pe.pe_type, PpeType)
    if pe.pe_type.partial_reconfig:
        bits = sum(_mode_config_bits(pe))
    else:
        bits = pe.pe_type.config_bits * pe.n_modes
    return (bits + 7) // 8


def synthesize_interface(
    arch: Architecture,
    boot_time_requirement: float,
    has_processor: Optional[bool] = None,
    options: Optional[List[ProgrammingOption]] = None,
) -> InterfacePlan:
    """Choose the cheapest programming interfaces for every PPE.

    Parameters
    ----------
    arch:
        The architecture after cluster allocation.
    boot_time_requirement:
        The system's a-priori bound on run-time reconfiguration time
        (Section 4.4); applies to every mode switch of every
        multi-mode device.
    has_processor:
        Whether a CPU exists to drive slave-mode interfaces; derived
        from the architecture when None.
    options:
        Option array override (ablation hook); default
        :func:`default_option_array`.

    Returns the plan and stores its total cost on
    ``arch.interface_cost``.  Raises :class:`SynthesisError` when some
    multi-mode device cannot meet the boot-time requirement with any
    option (the caller should then reject the merge/allocation that
    created the offending mode).
    """
    if boot_time_requirement <= 0:
        raise AllocationError("boot-time requirement must be positive")
    if options is None:
        options = default_option_array()
    if has_processor is None:
        has_processor = any(p.is_processor for p in arch.pes.values())

    from repro.resources.pe import PEKind

    plan = InterfacePlan()
    single_mode_fpgas: List[PEInstance] = []
    for pe in arch.programmable_pes():
        if pe.n_modes <= 1:
            if pe.pe_type.kind is PEKind.CPLD:
                # Flash-based CPLDs keep their configuration across
                # power cycles; a single-mode part is programmed once
                # in the factory through its test port and needs no
                # run-time interface at all.
                plan.devices[pe.id] = DeviceInterface(
                    pe_id=pe.id,
                    option=ProgrammingOption(InterfaceKind.JTAG, 1e6),
                    storage_bytes=0,
                    cost_share=0.0,
                    runtime_boot_times={0: 0.0},
                )
            else:
                single_mode_fpgas.append(pe)
            continue
        device = _choose_for_multimode(
            pe, boot_time_requirement, has_processor, options
        )
        plan.devices[pe.id] = device
        plan.total_cost += device.cost_share

    if single_mode_fpgas:
        _plan_powerup_chain(plan, single_mode_fpgas, has_processor, options)

    arch.interface_cost = plan.total_cost
    return plan


def _choose_for_multimode(
    pe: PEInstance,
    boot_time_requirement: float,
    has_processor: bool,
    options: List[ProgrammingOption],
) -> DeviceInterface:
    """Cheapest option whose worst-mode boot time meets the bound."""
    mode_bits = _mode_config_bits(pe)
    storage = _storage_bytes(pe)
    for option in options:
        if not _usable_by(option, pe, has_processor):
            continue
        boots = {i: option.boot_time(bits) for i, bits in enumerate(mode_bits)}
        if max(boots.values()) <= boot_time_requirement:
            return DeviceInterface(
                pe_id=pe.id,
                option=option,
                storage_bytes=storage,
                cost_share=option.cost(storage),
                runtime_boot_times=boots,
            )
    raise SynthesisError(
        "no programming interface gets %r (%d modes, %d bits worst mode) "
        "under the %.3fs boot-time requirement"
        % (pe.id, pe.n_modes, max(mode_bits), boot_time_requirement)
    )


def _plan_powerup_chain(
    plan: InterfacePlan,
    devices: List[PEInstance],
    has_processor: bool,
    options: List[ProgrammingOption],
) -> None:
    """Share one power-up interface across all single-mode devices.

    Chained devices stream their images back-to-back from one PROM at
    power-up; there is no run-time boot-time constraint, so the
    cheapest master option wins (slave needs the CPU alive before the
    chain loads, which boards avoid for power-up logic).
    """
    masters = [o for o in options if o.kind.is_master]
    if not masters:  # pragma: no cover - default array always has masters
        masters = options
    option = masters[0]
    storage = sum(_storage_bytes(pe) for pe in devices)
    chain_ids = tuple(sorted(pe.id for pe in devices))
    chain_cost = option.cost(storage) + _CHAIN_WIRING_COST * len(devices)
    share = chain_cost / len(devices)
    for pe in devices:
        plan.devices[pe.id] = DeviceInterface(
            pe_id=pe.id,
            option=option,
            storage_bytes=_storage_bytes(pe),
            chained_with=chain_ids,
            cost_share=share,
            runtime_boot_times={0: 0.0},
        )
    plan.total_cost += chain_cost
