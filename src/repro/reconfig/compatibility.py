"""Identification of non-overlapping task graphs (Section 4.1).

Two task graphs are *compatible* when their execution windows never
overlap in time, so they may time-share a programmable device through
dynamic reconfiguration.  Compatibility may be declared a priori via
the specification's compatibility vectors; when it is not, the
co-synthesis system detects non-overlap automatically from task/edge
start and stop times after scheduling (the detection step of the
Figure 3 procedure).

Periodic correctness: graph A repeats every ``Pa`` and graph B every
``Pb``.  Their copies' windows overlap somewhere in the hyperperiod iff
their windows overlap modulo ``gcd(Pa, Pb)`` -- the classic residue
argument -- so we reduce both window sets onto the gcd ring (quantized
to microsecond ticks) and test circular interval intersection.  That
is exact for the representative copies and inherits the association
array's approximation for the rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.spec import SystemSpec
from repro.units import US, quantize

#: A half-open time interval in seconds.
Window = Tuple[float, float]


def occupancy_windows(schedule, graph_name: str) -> List[Window]:
    """Execution windows of one graph's representative (copy 0)
    instances: merged [start, finish) intervals of its tasks and
    outgoing edge transfers.

    Windows are expressed relative to the copy's arrival so they can
    be replicated across periods.
    """
    from repro.sched.scheduler import Schedule  # local: avoid cycle

    assert isinstance(schedule, Schedule)
    raw: List[Window] = []
    arrival: Optional[float] = None
    for key, placed in schedule.tasks.items():
        g, copy, _ = key
        if g != graph_name or copy != 0:
            continue
        raw.append((placed.start, placed.finish))
    for key, placed in schedule.edges.items():
        g, copy, _, _ = key
        if g != graph_name or copy != 0:
            continue
        if placed.finish > placed.start:
            raw.append((placed.start, placed.finish))
    if not raw:
        return []
    return _merge_windows(raw)


def _merge_windows(windows: List[Window]) -> List[Window]:
    """Union of intervals, sorted and coalesced."""
    merged: List[Window] = []
    for start, end in sorted(windows):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def windows_overlap_periodic(
    windows_a: List[Window],
    period_a: float,
    windows_b: List[Window],
    period_b: float,
    tick: float = US,
) -> bool:
    """True when any periodic repetition of the two window sets
    overlaps.

    Windows are absolute (include the first copy's phase); repetitions
    are at multiples of each period.  Empty window sets never overlap.
    """
    if not windows_a or not windows_b:
        return False
    pa = quantize(period_a, tick)
    pb = quantize(period_b, tick)
    ring = math.gcd(pa, pb)

    def reduce(windows: List[Window]) -> List[Tuple[int, int]]:
        reduced: List[Tuple[int, int]] = []
        for start, end in windows:
            s = int(round(start / tick))
            e = int(round(end / tick))
            if e <= s:
                continue
            if e - s >= ring:
                # Window covers the whole ring: always overlaps.
                reduced.append((0, ring))
                continue
            s_mod = s % ring
            e_mod = s_mod + (e - s)
            if e_mod <= ring:
                reduced.append((s_mod, e_mod))
            else:
                reduced.append((s_mod, ring))
                reduced.append((0, e_mod - ring))
        return reduced

    ra = reduce(windows_a)
    rb = reduce(windows_b)
    for sa, ea in ra:
        for sb, eb in rb:
            if sa < eb and sb < ea:
                return True
    return False


@dataclass
class CompatibilityAnalysis:
    """Resolved pairwise compatibility of a system's task graphs.

    Built either from the specification's explicit vectors or detected
    from a schedule.  ``compatible(a, b)`` answers the Section 4.1
    question: may graphs ``a`` and ``b`` share a PPE through dynamic
    reconfiguration?
    """

    spec: SystemSpec
    pairs: FrozenSet[FrozenSet[str]] = frozenset()
    source: str = "explicit"

    @classmethod
    def from_spec(cls, spec: SystemSpec) -> "CompatibilityAnalysis":
        """Use the specification's explicit compatibility vectors.

        Raises when the spec has none (callers should then schedule
        first and use :meth:`from_schedule`).
        """
        if not spec.has_explicit_compatibility:
            raise SpecificationError(
                "system %r has no explicit compatibility vectors; "
                "detect from a schedule instead" % (spec.name,)
            )
        pairs = set()
        names = spec.graph_names()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if spec.compatible(a, b):
                    pairs.add(frozenset((a, b)))
        return cls(spec=spec, pairs=frozenset(pairs), source="explicit")

    @classmethod
    def from_schedule(
        cls, spec: SystemSpec, schedule, tick: float = US
    ) -> "CompatibilityAnalysis":
        """Detect non-overlapping graph pairs from start/stop times
        following scheduling (Figure 3's automatic path)."""
        windows = {
            name: occupancy_windows(schedule, name) for name in spec.graph_names()
        }
        pairs = set()
        names = spec.graph_names()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if not windows_overlap_periodic(
                    windows[a],
                    spec.graph(a).period,
                    windows[b],
                    spec.graph(b).period,
                    tick=tick,
                ):
                    pairs.add(frozenset((a, b)))
        return cls(spec=spec, pairs=frozenset(pairs), source="schedule")

    @classmethod
    def resolve(
        cls, spec: SystemSpec, schedule=None, tick: float = US
    ) -> "CompatibilityAnalysis":
        """Explicit vectors when present, else detection from the
        schedule (which must then be provided)."""
        if spec.has_explicit_compatibility:
            return cls.from_spec(spec)
        if schedule is None:
            raise SpecificationError(
                "no explicit compatibility and no schedule to detect from"
            )
        return cls.from_schedule(spec, schedule, tick=tick)

    # ------------------------------------------------------------------
    def compatible(self, a: str, b: str) -> bool:
        """May graphs ``a`` and ``b`` time-share a PPE?"""
        if a == b:
            return False
        return frozenset((a, b)) in self.pairs

    def all_compatible(self, group_a, group_b) -> bool:
        """Every cross pair between two graph groups is compatible.

        Graphs appearing in both groups make the groups incompatible
        (a graph always overlaps itself).
        """
        for a in group_a:
            for b in group_b:
                if not self.compatible(a, b):
                    return False
        return True

    def compatibility_vector(self, name: str) -> Dict[str, int]:
        """The paper's Delta vector: 0 = compatible, 1 = not."""
        return {
            other: 0 if self.compatible(name, other) else 1
            for other in self.spec.graph_names()
            if other != name
        }
