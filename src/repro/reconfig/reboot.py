"""Reconfiguration (boot) time accounting -- the ``reboot_task``.

Section 4.3: each programmable device is characterized by a
``reboot_task`` added at the beginning of each mode; its duration is
determined by the type (serial or parallel) and speed of the
programming interface, and the boot time is included in finish-time
estimation so deadlines account for reconfiguration.

Before the reconfiguration controller interface has been synthesized,
the scheduler uses :func:`default_boot_time`: a mid-range serial
interface at :data:`DEFAULT_PROGRAMMING_HZ`.  Interface synthesis later
replaces this with the chosen option's boot time and the schedule is
re-verified.
"""

from __future__ import annotations

from repro.arch.pe_instance import PEInstance
from repro.resources.pe import PpeType

#: Default programming clock used before interface synthesis: 4 MHz
#: serial (the paper quotes 1-10 MHz for current technology).
DEFAULT_PROGRAMMING_HZ = 4_000_000.0

#: Default interface width in bits (serial).
DEFAULT_PROGRAMMING_WIDTH = 1


def boot_time_for_bits(
    config_bits: int,
    clock_hz: float = DEFAULT_PROGRAMMING_HZ,
    width_bits: int = DEFAULT_PROGRAMMING_WIDTH,
) -> float:
    """Time to stream ``config_bits`` through a programming interface."""
    if config_bits < 0:
        raise ValueError("config_bits must be non-negative")
    if clock_hz <= 0 or width_bits <= 0:
        raise ValueError("clock and width must be positive")
    return config_bits / (clock_hz * width_bits)


def default_boot_time(pe: PEInstance, mode_index: int) -> float:
    """Boot time for switching ``pe`` into ``mode_index`` under the
    default (pre-interface-synthesis) assumptions.

    Non-programmable PEs never reboot.  Partially reconfigurable
    devices stream only the PFUs the target mode uses; full-
    reconfiguration devices stream the whole image.  A device with a
    single mode never reconfigures at run time (it boots once at
    power-up), so its boot time is charged as zero here.
    """
    if not isinstance(pe.pe_type, PpeType):
        return 0.0
    if pe.n_modes <= 1:
        return 0.0
    pfus = pe.pfus_used(mode_index)
    bits = pe.pe_type.config_bits_for(pfus)
    return boot_time_for_bits(bits)
