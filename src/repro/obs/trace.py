"""The tracer: the one object instrumentation sites talk to.

Design constraints, in priority order:

1. **Disabled is free and inert.**  The default tracer is a null
   object whose methods do nothing and allocate nothing, so every
   instrumentation site may call it unconditionally and synthesis
   results are byte-identical with tracing on or off (the tracer only
   *observes* -- it never feeds a value back into a decision).
2. **One call per site.**  Sites say what happened
   (``tracer.incr``/``tracer.event``) or wrap a region
   (``with tracer.phase("allocation")``); aggregation and routing
   live here.
3. **Sinks are pluggable.**  :class:`MemorySink` for assertions,
   :class:`JsonlSink` for files; aggregates (counters/timers) are
   collected regardless of sinks so ``--stats`` needs no sink at all.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.obs.counters import Counters
from repro.obs.events import Event
from repro.obs.report import SynthesisStats
from repro.obs.timers import PhaseTimers


class MemorySink:
    """Buffers events in memory; the test suite's sink."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def named(self, name: str) -> List[Event]:
        """All buffered events with a given name."""
        return [e for e in self.events if e.name == name]


class JsonlSink:
    """Streams events to a JSON-lines file (one envelope per line)."""

    def __init__(self, path: Union[str, pathlib.Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(path, "w")
            self._owns = True

    def emit(self, event: Event) -> None:
        # to_dict() yields keys in ENVELOPE_KEYS order; keep that order
        # on the wire rather than alphabetizing.
        self._fh.write(json.dumps(event.to_dict()))
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class Tracer:
    """Collects events, counters and phase timers for one synthesis run."""

    enabled = True

    def __init__(self, sinks: Iterable = (), clock=time.perf_counter) -> None:
        self._sinks = list(sinks)
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self.counters = Counters()
        self.timers = PhaseTimers(clock=clock)

    # -- emission ------------------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Emit a structured event to every sink."""
        evt = Event(
            name=name, seq=self._seq, t=self._clock() - self._t0, fields=fields
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(evt)

    def incr(self, name: str, n: int = 1) -> None:
        """Increment a named counter."""
        self.counters.incr(name, n)

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a pipeline phase (exclusive accounting, see
        :mod:`repro.obs.timers`); emits ``phase.start``/``phase.end``."""
        self.event("phase.start", phase=name)
        self.timers.start(name)
        try:
            yield
        finally:
            _, elapsed = self.timers.stop()
            self.event("phase.end", phase=name, seconds=elapsed)

    # -- aggregation ---------------------------------------------------
    @property
    def n_events(self) -> int:
        """Events emitted so far."""
        return self._seq

    def stats(self, total_seconds: Optional[float] = None) -> SynthesisStats:
        """Snapshot the aggregates as a stats block."""
        return SynthesisStats(
            phase_seconds=self.timers.as_dict(),
            counters=self.counters.as_dict(),
            n_events=self._seq,
            total_seconds=total_seconds,
        )

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self._sinks:
            sink.close()


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer(Tracer):
    """The disabled tracer: every site call is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sinks=(), clock=lambda: 0.0)

    def event(self, name: str, **fields) -> None:
        pass

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def phase(self, name: str):
        return _NULL_CONTEXT

    def stats(self, total_seconds: Optional[float] = None) -> SynthesisStats:
        raise RuntimeError("the null tracer collects nothing")

    def close(self) -> None:
        pass


#: Shared disabled tracer; safe to reuse because it holds no state.
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` itself, or the shared null tracer for ``None``."""
    return NULL_TRACER if tracer is None else tracer
