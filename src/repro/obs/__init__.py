"""Synthesis observability: structured events, counters and timers.

The co-synthesis inner loops (allocation evaluation, scheduling, the
Figure 3 merge procedure, the repair pass) are where CRUSADE spends
its time; this package makes them measurable without perturbing them.
A :class:`~repro.obs.trace.Tracer` is threaded through the pipeline
and every instrumentation site is a single method call on it; the
default :data:`~repro.obs.trace.NULL_TRACER` turns each site into a
no-op so traced and untraced runs produce identical results.

Sinks decide where events go: :class:`~repro.obs.trace.MemorySink`
keeps them for tests, :class:`~repro.obs.trace.JsonlSink` streams
JSON-lines to a file (the CLI's ``--trace FILE``).  Aggregates --
per-phase wall-clock and named counters -- are collected by the
tracer itself and surface as
:class:`~repro.obs.report.SynthesisStats` on
:class:`~repro.core.report.CoSynthesisResult`.
"""

from repro.obs.counters import Counters
from repro.obs.events import (
    CAMPAIGN_EVENT_NAMES,
    SCHEMA_VERSION,
    SERVICE_EVENT_NAMES,
    Event,
)
from repro.obs.report import SynthesisStats, render_stats, stats_from_dict
from repro.obs.timers import PhaseTimers
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "CAMPAIGN_EVENT_NAMES",
    "SERVICE_EVENT_NAMES",
    "SCHEMA_VERSION",
    "Event",
    "Counters",
    "PhaseTimers",
    "SynthesisStats",
    "render_stats",
    "stats_from_dict",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MemorySink",
    "JsonlSink",
    "resolve_tracer",
]
