"""Named monotonic counters.

Counter names are dotted paths (``"merge.rejects.cost"``) so related
counters group under a prefix; :meth:`Counters.total` sums a prefix,
which is how the consistency oracles are phrased (e.g. merge accepts
plus all rejects equals merge candidates).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counters:
    """A registry of named monotonic integer counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` (default 1) to counter ``name``, creating it at 0."""
        if n < 0:
            raise ValueError("counters are monotonic; got incr(%r, %d)" % (name, n))
        self._values[name] = self._values.get(name, 0) + n

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 when never incremented)."""
        return self._values.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def as_dict(self) -> Dict[str, int]:
        """Name-sorted snapshot of all counters."""
        return {k: self._values[k] for k in sorted(self._values)}

    def merge(self, other: "Counters") -> None:
        """Fold another registry's values into this one."""
        for name, value in other._values.items():
            self._values[name] = self._values.get(name, 0) + value

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return "Counters(%d names)" % len(self._values)
