"""Structured trace events and their wire schema.

Every event serializes to one JSON object with a fixed envelope:

``v``
    Schema version (:data:`SCHEMA_VERSION`); bumped only when an
    envelope key changes meaning.
``event``
    Dotted event name, e.g. ``"phase.end"`` or ``"merge.accept"``.
``seq``
    Monotonically increasing per-tracer sequence number.
``t``
    Seconds since the tracer was created (wall clock, informational
    only -- never fed back into synthesis).
``fields``
    Event-specific payload (JSON-serializable scalars).

Downstream consumers key on ``event`` + ``fields`` and must tolerate
new event names appearing; the envelope keys themselves are stable.

Well-known event families: ``phase.start``/``phase.end`` from
:meth:`repro.obs.trace.Tracer.phase`; ``merge.*`` from the Figure 3
merge procedure; and the campaign runner's lifecycle events
(:data:`CAMPAIGN_EVENT_NAMES`), which stream per-job progress --
start, completion with wall seconds, retries with their reason and
backoff, and terminal failures -- to the campaign directory's
``events.jsonl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Version of the event envelope written by :class:`repro.obs.trace.JsonlSink`.
SCHEMA_VERSION = 1

#: Envelope keys every serialized event carries, in order.
ENVELOPE_KEYS = ("v", "event", "seq", "t", "fields")

#: Lifecycle events emitted by :mod:`repro.campaign.runner`, in the
#: order a job can traverse them.  ``campaign.job.retry`` carries
#: ``reason`` (``crash`` | ``timeout`` | ``error``) and ``backoff_s``;
#: ``campaign.job.done`` carries per-job ``wall_s``.
CAMPAIGN_EVENT_NAMES = (
    "campaign.start",
    "campaign.job.start",
    "campaign.job.done",
    "campaign.job.retry",
    "campaign.job.failed",
    "campaign.end",
)

#: Lifecycle events emitted by the synthesis service
#: (:mod:`repro.service`).  ``service.request`` carries the
#: per-request trace -- ``outcome`` (``cache_hit`` | ``coalesced`` |
#: ``computed``) plus, for computed requests, ``queue_wait_s``,
#: ``worker_wall_s``, ``attempts`` and the winning ``shard``; the
#: ``service.job.*`` events mirror the campaign runner's supervision
#: vocabulary (retry reasons ``crash`` | ``timeout`` | ``error``).
SERVICE_EVENT_NAMES = (
    "service.start",
    "service.request",
    "service.job.start",
    "service.job.retry",
    "service.job.failed",
    "service.worker.join",
    "service.worker.left",
    "service.drain",
    "service.end",
)


@dataclass(frozen=True)
class Event:
    """One structured observation emitted during synthesis."""

    name: str
    seq: int
    t: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready envelope (see module docstring for the schema)."""
        return {
            "v": SCHEMA_VERSION,
            "event": self.name,
            "seq": self.seq,
            "t": self.t,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        """Rebuild an event from its envelope (inverse of ``to_dict``)."""
        return cls(
            name=payload["event"],
            seq=payload["seq"],
            t=payload["t"],
            fields=dict(payload.get("fields", {})),
        )
