"""Per-phase wall-clock accounting.

Phase time is *exclusive*: when a phase starts inside another (the
reconfiguration driver synthesizes a baseline architecture mid-run,
re-entering the full pipeline), the outer phase's clock pauses until
the inner one ends.  Exclusive accounting keeps the oracle simple --
the sum of all phase totals can never exceed total wall time -- and
matches how the paper reports CPU time (each second attributed to
exactly one activity).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple


class PhaseTimers:
    """Accumulates exclusive wall-clock seconds per named phase."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._totals: Dict[str, float] = {}
        # (name, running-segment start); outer entries are paused, so
        # only the top of the stack has a live segment.
        self._stack: List[Tuple[str, float]] = []

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to phase ``name`` directly."""
        self._totals[name] = self._totals.get(name, 0.0) + max(0.0, seconds)

    def start(self, name: str) -> None:
        """Begin a phase, pausing the enclosing phase if any."""
        now = self._clock()
        if self._stack:
            outer_name, outer_start = self._stack[-1]
            self.add(outer_name, now - outer_start)
            self._stack[-1] = (outer_name, now)  # placeholder; resumed on stop
        self._stack.append((name, now))

    def stop(self) -> Tuple[str, float]:
        """End the innermost phase; returns (name, seconds credited)."""
        if not self._stack:
            raise RuntimeError("PhaseTimers.stop() without a running phase")
        now = self._clock()
        name, start = self._stack.pop()
        elapsed = max(0.0, now - start)
        self.add(name, elapsed)
        if self._stack:
            outer_name, _ = self._stack[-1]
            self._stack[-1] = (outer_name, now)  # resume the outer clock
        return name, elapsed

    @property
    def depth(self) -> int:
        """How many phases are currently open."""
        return len(self._stack)

    def as_dict(self) -> Dict[str, float]:
        """Name-sorted snapshot of accumulated totals (open phases
        contribute only their already-credited segments)."""
        return {k: self._totals[k] for k in sorted(self._totals)}

    def grand_total(self) -> float:
        """Sum of every phase's accumulated seconds."""
        return sum(self._totals.values())
