"""Aggregated synthesis statistics and their renderings.

:class:`SynthesisStats` is the JSON-stable summary a tracer produces
at the end of a run: exclusive per-phase wall-clock seconds and every
counter the instrumented loops incremented.  It round-trips through
plain dicts (``to_dict``/:func:`stats_from_dict`) so
:mod:`repro.io.result_json` can embed it in result exports, and
renders to the text block the CLI's ``--stats`` flag prints.

Counter name prefixes and what they measure:

``alloc.*``
    Allocation-array construction and candidate evaluation (entries
    built, rejected per capacity check, scheduler evaluations).
``sched.*``
    List-scheduler decisions (real vs. virtual placements, preemption
    splits taken/declined).
``merge.*``
    Figure 3 merge loop (candidates, accepts, rejects by reason,
    mode combines) -- ``merge.accepts`` plus all ``merge.rejects.*``
    equals ``merge.candidates``.
``repair.*``
    Post-allocation repair pass (rounds, re-homings tried/kept).
``perf.*``
    Incremental evaluation engine (:mod:`repro.perf`):
    ``perf.schedule.hits`` / ``.misses`` / ``.evictions`` for the
    per-component schedule-fragment cache, ``perf.cow.applies`` /
    ``.commits`` / ``.reverts`` for copy-on-write candidate
    application, ``perf.priorities.recomputed`` / ``.reused`` for
    incremental priority recomputation, and ``perf.plan.hits`` /
    ``.misses`` for the fast scheduler's per-spec plan cache
    (:mod:`repro.perf.fastsched`).  ``sched.runs`` equals
    ``perf.schedule.misses`` when the engine is active (every
    scheduler run builds exactly one cached fragment).
``scope.*``
    The fast-inner-loop sub-specification cache
    (``scope.hits`` / ``.misses`` / ``.evictions``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SynthesisStats:
    """Aggregates from one traced synthesis run."""

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    n_events: int = 0
    total_seconds: Optional[float] = None

    def phase_total(self) -> float:
        """Sum of all per-phase seconds (<= total wall time)."""
        return sum(self.phase_seconds.values())

    def counter(self, name: str) -> int:
        """One counter's value (0 when absent)."""
        return self.counters.get(name, 0)

    def counter_total(self, prefix: str) -> int:
        """Sum of counters under a dotted prefix."""
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (sorted, version-tagged)."""
        return {
            "version": 1,
            "phase_seconds": {
                k: self.phase_seconds[k] for k in sorted(self.phase_seconds)
            },
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "n_events": self.n_events,
            "total_seconds": self.total_seconds,
        }


def stats_from_dict(payload: Dict[str, Any]) -> SynthesisStats:
    """Rebuild a stats block from its JSON form (inverse of
    :meth:`SynthesisStats.to_dict`)."""
    return SynthesisStats(
        phase_seconds=dict(payload.get("phase_seconds", {})),
        counters=dict(payload.get("counters", {})),
        n_events=payload.get("n_events", 0),
        total_seconds=payload.get("total_seconds"),
    )


def render_stats(stats: SynthesisStats) -> str:
    """Human-readable stats block (the CLI's ``--stats`` output)."""
    lines: List[str] = ["Synthesis statistics:"]
    lines.append("  phases (exclusive wall-clock):")
    if not stats.phase_seconds:
        lines.append("    (none recorded)")
    for name in sorted(stats.phase_seconds):
        lines.append("    %-22s %10.4fs" % (name, stats.phase_seconds[name]))
    if stats.total_seconds is not None:
        lines.append("    %-22s %10.4fs" % ("total (wall)", stats.total_seconds))
    lines.append("  counters:")
    if not stats.counters:
        lines.append("    (none recorded)")
    for name in sorted(stats.counters):
        lines.append("    %-38s %10d" % (name, stats.counters[name]))
    lines.append("  events emitted: %d" % stats.n_events)
    return "\n".join(lines)
