"""Aggregated synthesis statistics and their renderings.

:class:`SynthesisStats` is the JSON-stable summary a tracer produces
at the end of a run: exclusive per-phase wall-clock seconds and every
counter the instrumented loops incremented.  It round-trips through
plain dicts (``to_dict``/:func:`stats_from_dict`) so
:mod:`repro.io.result_json` can embed it in result exports, and
renders to the text block the CLI's ``--stats`` flag prints.

Counter name prefixes and what they measure:

``alloc.*``
    Allocation-array construction and candidate evaluation (entries
    built, rejected per capacity check, scheduler evaluations).
``sched.*``
    List-scheduler decisions (real vs. virtual placements, preemption
    splits taken/declined).
``merge.*``
    Figure 3 merge loop (candidates, accepts, rejects by reason,
    mode combines) -- ``merge.accepts`` plus all ``merge.rejects.*``
    equals ``merge.candidates``.
``repair.*``
    Post-allocation repair pass (rounds, re-homings tried/kept).
``perf.*``
    Incremental evaluation engine (:mod:`repro.perf`):
    ``perf.schedule.hits`` / ``.misses`` / ``.evictions`` for the
    per-component schedule-fragment cache, ``perf.cow.applies`` /
    ``.commits`` / ``.reverts`` for copy-on-write candidate
    application, ``perf.priorities.recomputed`` / ``.reused`` for
    incremental priority recomputation, and ``perf.plan.hits`` /
    ``.misses`` for the fast scheduler's per-spec plan cache
    (:mod:`repro.perf.fastsched`).  ``sched.runs`` equals
    ``perf.schedule.misses`` when the engine is active (every
    scheduler run builds exactly one cached fragment).
``perf.store.*``
    The persistent content-addressed synthesis store
    (:mod:`repro.perf.store`): ``perf.store.hit`` / ``.miss`` for the
    full-result tier, ``perf.store.fragments_preloaded`` /
    ``.fragments_saved`` for the cross-run fragment tier,
    ``perf.store.corrupt`` for dropped unusable entries, and
    ``perf.store.graphs_changed`` / ``.graphs_unchanged`` from the
    warm-start spec diff (:mod:`repro.perf.warmstart`).
``perf.cache.*``
    End-of-run gauges snapshotted from
    :meth:`repro.perf.engine.IncrementalEngine.cache_info` (entries,
    capacity, lifetime hits/misses and disk hits) -- set once by the
    finalize stage, not incremented.
``scope.*``
    The fast-inner-loop sub-specification cache
    (``scope.hits`` / ``.misses`` / ``.evictions``).
``stage.*``
    The stage runner (:mod:`repro.core.stages.base`):
    ``stage.<name>.runs`` / ``stage.<name>.skipped`` per pipeline
    stage, feeding the ``--stats`` per-stage table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Canonical pipeline order for the ``--stats`` stage table, matching
#: :func:`repro.core.stages.pipeline.default_stages` (kept as data here
#: so the observability layer stays import-independent of the core).
PIPELINE_STAGE_ORDER = (
    "preprocess",
    "clustering",
    "allocation",
    "full_check",
    "repair",
    "merge",
    "interface",
    "finalize",
)


@dataclass
class SynthesisStats:
    """Aggregates from one traced synthesis run."""

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    n_events: int = 0
    total_seconds: Optional[float] = None

    def phase_total(self) -> float:
        """Sum of all per-phase seconds (<= total wall time)."""
        return sum(self.phase_seconds.values())

    def counter(self, name: str) -> int:
        """One counter's value (0 when absent)."""
        return self.counters.get(name, 0)

    def counter_total(self, prefix: str) -> int:
        """Sum of counters under a dotted prefix."""
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (sorted, version-tagged)."""
        return {
            "version": 1,
            "phase_seconds": {
                k: self.phase_seconds[k] for k in sorted(self.phase_seconds)
            },
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "n_events": self.n_events,
            "total_seconds": self.total_seconds,
        }


def stats_from_dict(payload: Dict[str, Any]) -> SynthesisStats:
    """Rebuild a stats block from its JSON form (inverse of
    :meth:`SynthesisStats.to_dict`)."""
    return SynthesisStats(
        phase_seconds=dict(payload.get("phase_seconds", {})),
        counters=dict(payload.get("counters", {})),
        n_events=payload.get("n_events", 0),
        total_seconds=payload.get("total_seconds"),
    )


def render_stage_table(stats: SynthesisStats) -> List[str]:
    """The pipeline-stage rows of the ``--stats`` block.

    One row per stage the runner saw, in canonical pipeline order:
    run/skip counts, exclusive seconds, and the share of all phased
    time.  Stages the run never reached are omitted; unphased stages
    (finalize) and skipped stages show ``-`` for time.  A nested
    baseline synthesis re-enters the pipeline, so run counts above 1
    are expected for reconfiguration runs.
    """
    lines: List[str] = []
    phase_total = stats.phase_total()
    for name in PIPELINE_STAGE_ORDER:
        runs = stats.counter("stage.%s.runs" % name)
        skipped = stats.counter("stage.%s.skipped" % name)
        seconds = stats.phase_seconds.get(name)
        if not runs and not skipped and seconds is None:
            continue
        if seconds is None:
            timing = "%10s  %5s" % ("-", "-")
        else:
            share = (seconds / phase_total * 100.0) if phase_total else 0.0
            timing = "%9.4fs  %4.1f%%" % (seconds, share)
        lines.append(
            "    %-12s %4d run%s %4d skip  %s"
            % (name, runs, "s" if runs != 1 else " ", skipped, timing)
        )
    return lines


def render_stats(stats: SynthesisStats) -> str:
    """Human-readable stats block (the CLI's ``--stats`` output)."""
    lines: List[str] = ["Synthesis statistics:"]
    stage_lines = render_stage_table(stats)
    if stage_lines:
        lines.append("  pipeline stages (runs/skips, exclusive time):")
        lines.extend(stage_lines)
    lines.append("  phases (exclusive wall-clock):")
    if not stats.phase_seconds:
        lines.append("    (none recorded)")
    for name in sorted(stats.phase_seconds):
        lines.append("    %-22s %10.4fs" % (name, stats.phase_seconds[name]))
    if stats.total_seconds is not None:
        lines.append("    %-22s %10.4fs" % ("total (wall)", stats.total_seconds))
    lines.append("  counters:")
    if not stats.counters:
        lines.append("    (none recorded)")
    for name in sorted(stats.counters):
        lines.append("    %-38s %10d" % (name, stats.counters[name]))
    lines.append("  events emitted: %d" % stats.n_events)
    return "\n".join(lines)
