"""Text Gantt charts for schedules.

Renders one hyperperiod of a schedule as fixed-width timelines, one row
per resource -- task executions on processors/PPEs, mode windows and
reboots on programmable devices, transfers on links.  Useful for
eyeballing what the scheduler actually did (the examples print these).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sched.scheduler import Schedule

#: Glyphs: execution, reboot, idle.
_EXEC = "#"
_BOOT = "!"
_IDLE = "."


def _scale(width: int, span: Tuple[float, float]):
    lo, hi = span
    extent = max(hi - lo, 1e-12)

    def to_col(t: float) -> int:
        col = int((t - lo) / extent * width)
        return max(0, min(width, col))

    return to_col


def _paint(row: List[str], to_col, start: float, end: float, glyph: str) -> None:
    a, b = to_col(start), to_col(end)
    if b <= a:
        b = a + 1
    for i in range(a, min(b, len(row))):
        row[i] = glyph


def render_gantt(
    schedule: Schedule,
    width: int = 72,
    span: Optional[Tuple[float, float]] = None,
    copy: Optional[int] = 0,
) -> str:
    """Render a schedule as a text Gantt chart.

    Parameters
    ----------
    width:
        Chart width in characters.
    span:
        (start, end) time window; defaults to the full schedule span.
    copy:
        Restrict to one copy index (None = all copies).
    """
    if width < 10:
        raise ValueError("gantt width must be at least 10 columns")
    placements = [
        p
        for p in schedule.tasks.values()
        if p.pe_id is not None and (copy is None or p.key[1] == copy)
    ]
    transfers = [
        e
        for e in schedule.edges.values()
        if e.link_id is not None and (copy is None or e.key[1] == copy)
    ]
    if span is None:
        times = [p.start for p in placements] + [p.finish for p in placements]
        times += [e.start for e in transfers] + [e.finish for e in transfers]
        if not times:
            return "(empty schedule)"
        span = (min(times), max(times))
    to_col = _scale(width, span)

    rows: Dict[str, List[str]] = {}

    def row_for(resource: str) -> List[str]:
        return rows.setdefault(resource, [_IDLE] * width)

    for placed in placements:
        _paint(row_for(placed.pe_id), to_col, placed.start, placed.finish, _EXEC)
    for pe_id, timeline in schedule.ppe_timelines.items():
        row = row_for(pe_id)
        previous = None
        for window in timeline.windows:
            if previous is not None and previous.mode != window.mode:
                _paint(row, to_col, window.start - window.boot_time,
                       window.start, _BOOT)
            # Mark windows with their mode digit where idle.
            a, b = to_col(window.start), max(to_col(window.end), to_col(window.start) + 1)
            glyph = str(window.mode % 10)
            for i in range(a, min(b, width)):
                if row[i] == _IDLE:
                    row[i] = glyph
            previous = window
    for edge in transfers:
        _paint(row_for(edge.link_id), to_col, edge.start, edge.finish, _EXEC)

    label_width = max((len(r) for r in rows), default=0)
    lines = [
        "time [%.6fs .. %.6fs], '%s'=busy '%s'=reboot digits=mode window"
        % (span[0], span[1], _EXEC, _BOOT)
    ]
    for resource in sorted(rows):
        lines.append("%s |%s|" % (resource.ljust(label_width), "".join(rows[resource])))
    return "\n".join(lines)


def utilization_summary(schedule: Schedule, hyperperiod: float) -> str:
    """Per-resource busy-time utilization over the scheduled span."""
    lines = ["resource utilization (busy / hyperperiod %.6fs):" % hyperperiod]
    seen = []
    for pe_id, timeline in sorted(schedule.proc_timelines.items()):
        seen.append((pe_id, timeline.busy_time()))
    for pe_id, timeline in sorted(schedule.ppe_timelines.items()):
        seen.append((pe_id, timeline.busy_time()))
    for link_id, timeline in sorted(schedule.link_timelines.items()):
        seen.append((link_id, timeline.busy_time()))
    for resource, busy in seen:
        lines.append(
            "  %-16s %6.1f%%" % (resource, 100.0 * busy / max(hyperperiod, 1e-12))
        )
    return "\n".join(lines)
