"""Finish-time estimation and deadline verification (Section 5).

After scheduling, the finish times of each task and edge are compared
against the task graphs' deadlines.  The association array extends the
verdict to the copies that were not materialized: an associated copy's
schedule is its representative's shifted by whole periods, so its
relative finish times are identical; what the shift argument cannot
see is *resource contention between copies*, which we guard with a
utilization (overload) check per serially-used resource -- demand
extrapolated over every copy in the hyperperiod must not exceed the
hyperperiod itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.sched.scheduler import Schedule, TaskKey
from repro.units import TIME_EPS

#: Relative slack allowed in the overload check before flagging.
_OVERLOAD_TOLERANCE = 1.0 + 1e-9


@dataclass
class DeadlineReport:
    """Outcome of finish-time verification.

    Attributes
    ----------
    lateness:
        Per deadline-carrying task instance: ``finish - deadline``
        (positive means missed).
    overloaded:
        Serial resources whose extrapolated hyperperiod demand exceeds
        capacity, with their utilization.
    """

    lateness: Dict[TaskKey, float] = field(default_factory=dict)
    overloaded: Dict[str, float] = field(default_factory=dict)

    @property
    def deadlines_met(self) -> bool:
        """Every checked deadline holds."""
        return all(v <= TIME_EPS for v in self.lateness.values())

    @property
    def all_met(self) -> bool:
        """Deadlines hold and no resource is oversubscribed."""
        return self.deadlines_met and not self.overloaded

    @property
    def n_missed(self) -> int:
        """Count of missed deadline instances."""
        return sum(1 for v in self.lateness.values() if v > TIME_EPS)

    @property
    def max_lateness(self) -> float:
        """Worst lateness (0 when everything is on time)."""
        if not self.lateness:
            return 0.0
        return max(0.0, max(self.lateness.values()))

    @property
    def total_lateness(self) -> float:
        """Sum of positive lateness over missed instances."""
        return sum(v for v in self.lateness.values() if v > TIME_EPS)

    def badness(self) -> Tuple[int, float]:
        """Ordering key for 'least infeasible' comparisons.

        Counts violations first, then their *magnitude* -- total
        lateness plus the oversubscription excess -- so incremental
        load-shedding registers as progress even while a resource
        stays overloaded.
        """
        excess = sum(max(0.0, u - 1.0) for u in self.overloaded.values())
        return (
            self.n_missed + len(self.overloaded),
            self.total_lateness + excess,
        )


def deadline_lateness(
    schedule: Schedule,
    spec: SystemSpec,
    assoc: AssociationArray,
    names: List[str],
) -> Dict[TaskKey, float]:
    """Lateness of every deadline-carrying explicit copy of ``names``.

    Insertion order (graph -> explicit copy -> deadline task) is part
    of the contract: downstream tie-breaks iterate the dict.
    """
    lateness: Dict[TaskKey, float] = {}
    for name in names:
        graph = spec.graph(name)
        deadline_tasks = {
            t: graph.effective_deadline(t) for t in graph.deadline_tasks()
        }
        for instance in assoc.explicit_copies(name):
            for task_name, rel_deadline in deadline_tasks.items():
                key = (name, instance.copy, task_name)
                placed = schedule.tasks.get(key)
                if placed is None:
                    continue
                absolute = instance.arrival + rel_deadline
                lateness[key] = placed.finish - absolute
    return lateness


def resource_demand(
    schedule: Schedule, assoc: AssociationArray, wanted: set
) -> Dict[str, float]:
    """Per-serial-resource busy time of copy 0, extrapolated over
    every copy in the hyperperiod, restricted to graphs in ``wanted``.

    Accumulation follows the schedule's insertion order so float sums
    are reproducible run-to-run (and fragment-merge-identical).
    """
    demand: Dict[str, float] = {}
    for key, placed in schedule.tasks.items():
        graph_name, copy, _ = key
        if copy != 0 or graph_name not in wanted:
            continue
        pe_kind_serial = placed.pe_id in schedule.proc_timelines
        ppe_serial = placed.pe_id in schedule.ppe_timelines
        if pe_kind_serial or ppe_serial:
            demand[placed.pe_id] = demand.get(placed.pe_id, 0.0) + (
                placed.finish - placed.start
            ) * assoc.n_copies(graph_name)
    for key, placed in schedule.edges.items():
        graph_name, copy, _, _ = key
        if copy != 0 or graph_name not in wanted or placed.link_id is None:
            continue
        demand[placed.link_id] = demand.get(placed.link_id, 0.0) + (
            placed.finish - placed.start
        ) * assoc.n_copies(graph_name)
    return demand


def evaluate_deadlines(
    schedule: Schedule,
    spec: SystemSpec,
    assoc: AssociationArray,
    graphs: Optional[List[str]] = None,
) -> DeadlineReport:
    """Verify deadlines and resource loading for a schedule.

    ``graphs`` restricts the verdict to a subset (the fast inner-loop
    path); default is every graph of the specification.
    """
    report = DeadlineReport()
    names = graphs if graphs is not None else spec.graph_names()

    # 1. Deadlines of explicit copies.
    report.lateness = deadline_lateness(schedule, spec, assoc, names)

    # 2. Overload check: per-copy demand of copy 0, extrapolated over
    #    every copy in the hyperperiod.
    demand = resource_demand(schedule, assoc, set(names))
    capacity = assoc.hyperperiod
    for resource, load in sorted(demand.items()):
        utilization = load / capacity
        if utilization > _OVERLOAD_TOLERANCE:
            report.overloaded[resource] = utilization

    return report
