"""Admissible lower bounds on schedule finish times and resource demand.

These are the scheduler-side primitives of the candidate pruning layer
(:mod:`repro.perf.prune`): *best-case execution vectors* and a
critical-path finish-time floor that provably never exceeds what
:func:`repro.sched.scheduler.build_schedule` would produce for the
same architecture, so a candidate whose floor already misses a
deadline can be discarded without scheduling at all.

Admissibility argument
----------------------

Every inequality below mirrors an identical-or-looser constraint the
scheduler enforces:

* A task placed on a **processor** occupies its timeline for
  ``wcet + context_switch_time`` (more when the restricted-preemption
  path splits it), so its finish is at least ``start`` plus that
  duration.  **ASIC** tasks run contention-free for exactly ``wcet``;
  **PPE** tasks occupy a mode window for exactly ``wcet``; tasks of
  unallocated clusters run *virtually* for ``task.min_exec_time``.
* A task starts no earlier than its copy's arrival, and no earlier
  than any predecessor's finish (inter-task communication only adds
  non-negative link time, so the floor prices it at zero).
* When an edge connects two clusters placed on the *same* programmable
  device whose permitted mode sets are **disjoint**, the successor's
  mode window cannot be its predecessor's window.  By induction over
  the device's time-ordered windows, the first permitted-mode window
  after the predecessor's pays its full reboot (its time-predecessor
  has a different mode -- window 0 never applies because the
  predecessor's window precedes it), and every later permitted window
  starts later still; so the successor start is delayed by at least
  ``min(boot(mode) for mode in its permitted set)``.  The bound is
  skipped for near-zero durations, where the window-ordering argument
  degenerates.

Floating-point safety: IEEE-754 rounding is monotone, and the floor
is accumulated with the same operation shapes (``max`` over
predecessors, then one addition) the scheduler uses, so the copy-0
floor is dominated by the real schedule *bit-for-bit*, not merely up
to an epsilon.  Demand floors are summed in a different order than
:func:`repro.sched.finish_time.resource_demand`, so their consumers
apply a small relative margin (see :mod:`repro.perf.prune`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.graph.taskgraph import TaskGraph
from repro.reconfig.reboot import default_boot_time
from repro.resources.pe import PEKind
from repro.units import TIME_EPS

try:  # numpy accelerates the DP sweeps; everything falls back cleanly
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Environment kill switch: force the pure-python floor sweeps even
#: when numpy is importable (mirrors REPRO_NO_PRUNE / _NO_INCREMENTAL).
NUMPY_KILL_SWITCH_ENV = "REPRO_NO_NUMPY"

#: Below this many tasks the per-level numpy calls cost more than the
#: python loop they replace; both paths return bit-identical stats, so
#: mixing by size is safe.
NUMPY_MIN_TASKS = 32

#: Durations at or below this are excluded from the reboot bound: the
#: window-ordering argument needs the successor's occupancy to be
#: strictly positive even after rounding.
BOOT_BOUND_MIN_DURATION = 1e-6


def numpy_disabled_by_env() -> bool:
    """True when the numpy kill switch is set (non-empty, not 0)."""
    value = os.environ.get(NUMPY_KILL_SWITCH_ENV, "")
    return value not in ("", "0")


def _numpy():
    """The numpy module when importable and not killed, else None.

    Checked per call (not import time) so tests and operators can flip
    ``REPRO_NO_NUMPY`` without re-importing the package.
    """
    if _np is None or numpy_disabled_by_env():
        return None
    return _np


def best_case_exec_time(task, pe: Optional[PEInstance]) -> float:
    """The exact duration floor the scheduler charges for ``task``.

    ``pe`` is the instance hosting the task's cluster, or None for a
    virtual (not-yet-allocated) placement.
    """
    if pe is None:
        return task.min_exec_time
    wcet = task.wcet_on(pe.pe_type.name)
    if pe.pe_type.kind is PEKind.PROCESSOR:
        return wcet + pe.pe_type.context_switch_time
    return wcet


def best_case_exec_vector(
    graph: TaskGraph, arch: Architecture, clustering: ClusteringResult
) -> Dict[str, float]:
    """Per-task duration floors for ``graph`` under a (partial)
    allocation: the best-case execution vector of the pruning layer."""
    vector: Dict[str, float] = {}
    for name in graph.topological_order():
        cluster_name = clustering.task_to_cluster.get((graph.name, name))
        pe = None
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe = arch.pe(arch.placement_of(cluster_name)[0])
        vector[name] = best_case_exec_time(graph.task(name), pe)
    return vector


def finish_time_floor(
    graph: TaskGraph,
    arch: Architecture,
    clustering: ClusteringResult,
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None,
) -> Dict[str, float]:
    """Copy-0 absolute finish-time floors for every task of ``graph``.

    A longest-path pass over the DAG using the best-case execution
    vector, zero communication time, and the mode-switch reboot bound
    for same-PPE edges between clusters with disjoint mode sets.  The
    value for each task is a true lower bound on the finish time of
    its copy-0 instance in any schedule the scheduler can emit for
    ``arch`` (see the module docstring for the argument).
    """
    boot_fn = boot_time_fn or default_boot_time
    placements: Dict[str, tuple] = {}
    for name in graph.topological_order():
        cluster_name = clustering.task_to_cluster.get((graph.name, name))
        pe = None
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe = arch.pe(arch.placement_of(cluster_name)[0])
        placements[name] = (pe, cluster_name)

    est = graph.est
    floor: Dict[str, float] = {}
    for name in graph.topological_order():
        pe, cluster_name = placements[name]
        exec_floor = best_case_exec_time(graph.task(name), pe)
        base = est
        for pred in graph.predecessors(name):
            ready = floor[pred]
            pred_pe, pred_cluster = placements[pred]
            if (
                pe is not None
                and pred_pe is pe
                and pred_cluster != cluster_name
                and pe.pe_type.kind not in (PEKind.PROCESSOR, PEKind.ASIC)
                and exec_floor > BOOT_BOUND_MIN_DURATION
            ):
                own = pe.modes_of_cluster(cluster_name)
                theirs = pe.modes_of_cluster(pred_cluster)
                if own and theirs and not set(own) & set(theirs):
                    reboot = min(boot_fn(pe, m) for m in own)
                    if reboot > 0.0:
                        ready = ready + reboot
            if ready > base:
                base = ready
        floor[name] = base + exec_floor
    return floor


class _GraphFloorKernel:
    """Vectorized deadline-floor DP for one (graph, clustering) pair.

    The DAG structure -- topological order, per-level edge groups,
    cluster membership, deadline rows -- never changes during a
    synthesis, so it is frozen into index arrays once; each call only
    rebuilds what the (partial) allocation changes: the per-task
    duration floor vector and the same-PPE reboot extras.

    Bit-parity with :func:`finish_time_floor` is by construction, not
    tolerance: ``max`` over floats is exact regardless of grouping
    (``np.maximum.reduceat`` included), and every addition the python
    loop performs (``wcet + context_switch``, ``ready + reboot``,
    ``base + exec``, ``est + deadline``) is mirrored as an elementwise
    float64 addition of the same operands -- so the resulting stats
    are identical to the pure-python pass, and mixing the two paths by
    graph size or kill switch cannot change synthesis decisions.
    """

    def __init__(self, np_, graph: TaskGraph, clustering: ClusteringResult):
        """Freeze the DAG's index arrays for repeated floor sweeps."""
        self._np = np_
        self.graph = graph
        self.clustering = clustering
        names = graph.topological_order()
        index = {name: i for i, name in enumerate(names)}
        tasks = [graph.task(name) for name in names]
        self._est = graph.est
        self._min_exec = np_.array(
            [task.min_exec_time for task in tasks], dtype=float
        )

        # Cluster membership: node index arrays per distinct cluster.
        cluster_index: Dict[str, int] = {}
        cluster_names: list = []
        cluster_nodes: list = []
        node_cluster = [-1] * len(names)
        for i, name in enumerate(names):
            cname = clustering.task_to_cluster.get((graph.name, name))
            if cname is None:
                continue
            ci = cluster_index.get(cname)
            if ci is None:
                ci = cluster_index[cname] = len(cluster_names)
                cluster_names.append(cname)
                cluster_nodes.append([])
            cluster_nodes[ci].append(i)
            node_cluster[i] = ci
        self._cluster_names = cluster_names
        self._cluster_nodes = [
            np_.array(nodes, dtype=np_.intp) for nodes in cluster_nodes
        ]
        self._cluster_tasks = [
            [tasks[i] for i in nodes] for nodes in cluster_nodes
        ]
        #: (cluster index, PE type name) -> wcet vector, built lazily so
        #: a type a cluster never lands on costs nothing (and cannot
        #: fault on tasks that do not support it).
        self._wcet: Dict[tuple, object] = {}

        # Longest-path levels and per-level edge groups for reduceat.
        levels = [0] * len(names)
        edges = []  # (level of succ, succ index, pred index)
        for name in names:
            i = index[name]
            level = 0
            for pred in graph.predecessors(name):
                p = index[pred]
                if levels[p] + 1 > level:
                    level = levels[p] + 1
                edges.append((p, i))
            levels[i] = level
        edges.sort(key=lambda e: (levels[e[1]], e[1]))
        self._edge_pred = np_.array([e[0] for e in edges], dtype=np_.intp)
        self._edge_succ = np_.array([e[1] for e in edges], dtype=np_.intp)
        self._n_edges = len(edges)
        self._roots = np_.array(
            [i for i in range(len(names)) if levels[i] == 0], dtype=np_.intp
        )
        #: per level >= 1: (edge slice lo, hi, reduceat offsets within
        #: the slice, succ node array in slice group order).
        level_groups: list = []
        pos = 0
        while pos < len(edges):
            level = levels[edges[pos][1]]
            lo = pos
            offsets = []
            succs = []
            last_succ = -1
            while pos < len(edges) and levels[edges[pos][1]] == level:
                succ = edges[pos][1]
                if succ != last_succ:
                    offsets.append(pos - lo)
                    succs.append(succ)
                    last_succ = succ
                pos += 1
            level_groups.append((
                lo, pos,
                np_.array(offsets, dtype=np_.intp),
                np_.array(succs, dtype=np_.intp),
            ))
        self._levels = level_groups

        #: (pred cluster, succ cluster) -> global edge positions, the
        #: candidates for the same-PPE reboot extra.
        pair_edges: Dict[tuple, list] = {}
        for pos, (p, i) in enumerate(edges):
            cp, ci = node_cluster[p], node_cluster[i]
            if cp >= 0 and ci >= 0 and cp != ci:
                pair_edges.setdefault((cp, ci), []).append(pos)
        self._pair_edges = {
            key: np_.array(positions, dtype=np_.intp)
            for key, positions in pair_edges.items()
        }

        # Deadline rows in deadline_tasks() order; the absolute
        # deadline is the same ``est + relative`` float the python
        # stats loop computes.
        dl_names = graph.deadline_tasks()
        self._dl_idx = np_.array(
            [index[name] for name in dl_names], dtype=np_.intp
        )
        self._dl_abs = np_.array(
            [self._est + graph.effective_deadline(name) for name in dl_names],
            dtype=float,
        )

    def _cluster_wcet(self, ci: int, type_name: str):
        key = (ci, type_name)
        arr = self._wcet.get(key)
        if arr is None:
            arr = self._wcet[key] = self._np.array(
                [t.wcet_on(type_name) for t in self._cluster_tasks[ci]],
                dtype=float,
            )
        return arr

    def stats(self, arch: Architecture, boot_fn) -> Tuple[int, float]:
        """(missed deadline count, total lateness) of the floor sweep
        under ``arch``'s current placements -- bit-identical to the
        pure-python :func:`finish_time_floor` consumption loop."""
        np_ = self._np
        exec_vec = self._min_exec.copy()
        placed: list = []
        for ci, cname in enumerate(self._cluster_names):
            if not arch.is_allocated(cname):
                placed.append(None)
                continue
            pe = arch.pe(arch.placement_of(cname)[0])
            placed.append(pe)
            pe_type = pe.pe_type
            wcet = self._cluster_wcet(ci, pe_type.name)
            idx = self._cluster_nodes[ci]
            if pe_type.kind is PEKind.PROCESSOR:
                exec_vec[idx] = wcet + pe_type.context_switch_time
            else:
                exec_vec[idx] = wcet

        # Same-PPE cross-cluster reboot extras (see the module
        # docstring's window-ordering argument) as a per-edge vector.
        reboot_vec = None
        by_pe: Dict[int, tuple] = {}
        for ci, pe in enumerate(placed):
            if pe is not None and pe.pe_type.kind not in (
                PEKind.PROCESSOR, PEKind.ASIC,
            ):
                by_pe.setdefault(id(pe), (pe, []))[1].append(ci)
        for pe, cis in by_pe.values():
            if len(cis) < 2:
                continue
            mode_sets = {
                ci: pe.modes_of_cluster(self._cluster_names[ci]) for ci in cis
            }
            for succ_ci in cis:
                own = mode_sets[succ_ci]
                if not own:
                    continue
                own_set = set(own)
                reboot = None
                for pred_ci in cis:
                    if pred_ci == succ_ci:
                        continue
                    positions = self._pair_edges.get((pred_ci, succ_ci))
                    if positions is None:
                        continue
                    theirs = mode_sets[pred_ci]
                    if not theirs or own_set & set(theirs):
                        continue
                    if reboot is None:
                        reboot = min(boot_fn(pe, m) for m in own)
                    if reboot <= 0.0:
                        break
                    hot = positions[
                        exec_vec[self._edge_succ[positions]]
                        > BOOT_BOUND_MIN_DURATION
                    ]
                    if hot.size:
                        if reboot_vec is None:
                            reboot_vec = np_.zeros(self._n_edges)
                        reboot_vec[hot] = reboot

        floor = np_.empty(len(exec_vec))
        roots = self._roots
        floor[roots] = self._est + exec_vec[roots]
        edge_pred = self._edge_pred
        for lo, hi, offsets, succs in self._levels:
            ready = floor[edge_pred[lo:hi]]
            if reboot_vec is not None:
                ready = ready + reboot_vec[lo:hi]
            base = np_.maximum(np_.maximum.reduceat(ready, offsets), self._est)
            floor[succs] = base + exec_vec[succs]

        misses = 0
        lateness = 0.0
        if self._dl_idx.size:
            for late in (floor[self._dl_idx] - self._dl_abs).tolist():
                if late > TIME_EPS:
                    misses += 1
                    lateness += late
        return misses, lateness


#: (id(graph), id(clustering)) -> kernel; the kernel holds strong refs
#: to both inputs, so id reuse cannot alias a live entry.
_KERNEL_CACHE_MAX = 64
_kernel_cache: "OrderedDict[tuple, _GraphFloorKernel]" = OrderedDict()
_kernel_lock = threading.Lock()


def _kernel_for(np_, graph: TaskGraph, clustering: ClusteringResult):
    key = (id(graph), id(clustering))
    with _kernel_lock:
        kernel = _kernel_cache.get(key)
        if kernel is not None and (
            kernel.graph is graph and kernel.clustering is clustering
        ):
            _kernel_cache.move_to_end(key)
            return kernel
    kernel = _GraphFloorKernel(np_, graph, clustering)
    with _kernel_lock:
        _kernel_cache[key] = kernel
        while len(_kernel_cache) > _KERNEL_CACHE_MAX:
            _kernel_cache.popitem(last=False)
    return kernel


def deadline_floor_stats(
    graph: TaskGraph,
    arch: Architecture,
    clustering: ClusteringResult,
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None,
) -> Tuple[int, float]:
    """(missed deadline count, total lateness) of the copy-0 floor.

    The admissible deadline statistic every pruning bound consumes:
    for each deadline-carrying task, ``finish_time_floor - (est +
    deadline)``, counted/summed when above ``TIME_EPS``.  Runs the
    vectorized kernel for graphs of :data:`NUMPY_MIN_TASKS` tasks or
    more when numpy is importable and ``REPRO_NO_NUMPY`` is unset;
    both paths produce bit-identical results (see
    :class:`_GraphFloorKernel`), so the fallback is a pure kill
    switch, never a behavior change.
    """
    np_ = _numpy()
    if np_ is not None and len(graph) >= NUMPY_MIN_TASKS:
        kernel = _kernel_for(np_, graph, clustering)
        return kernel.stats(arch, boot_time_fn or default_boot_time)
    floor = finish_time_floor(graph, arch, clustering, boot_time_fn)
    est = graph.est
    misses = 0
    lateness = 0.0
    for task_name in graph.deadline_tasks():
        late = floor[task_name] - (est + graph.effective_deadline(task_name))
        if late > TIME_EPS:
            misses += 1
            lateness += late
    return misses, lateness


#: id(ClusteringResult) -> (clustering, {(cluster, PE type, copies) ->
#: busy-time total}).  Cluster contents, WCETs and copy counts are
#: fixed for a synthesis, so each cluster's per-type total is computed
#: once -- by the exact sequential loop below, so memoized and fresh
#: values are the same floats.  ClusteringResult is unhashable, hence
#: the identity key with the held-object double-check (the same LRU
#: shape as :data:`_kernel_cache`).
_DEMAND_CACHE_MAX = 16
_demand_totals: "OrderedDict[int, tuple]" = OrderedDict()
_demand_lock = threading.Lock()


def demand_floor(
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
    assoc: AssociationArray,
    graph_names: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """Per-serial-resource busy-time floors over the hyperperiod.

    For every allocated cluster (optionally restricted to
    ``graph_names``), each task must occupy its processor for at least
    ``wcet + context_switch_time`` (exactly ``wcet`` on a PPE) per
    copy; ASICs have no serial timeline and are skipped, as are link
    demands (communication floors are zero).  The result is summed in
    deterministic cluster order, which differs from the schedule
    insertion order :func:`~repro.sched.finish_time.resource_demand`
    uses -- consumers must leave a small relative margin.

    Per-cluster totals are memoized per clustering keyed by (cluster,
    PE type, copy count): the inner loop's inputs never change during
    a synthesis, only which clusters are allocated where.  ``copies``
    is part of the key because scoped associations multiply each term
    before summing, so totals differ per copy count bit-for-bit.
    """
    wanted = None if graph_names is None else set(graph_names)
    ckey = id(clustering)
    with _demand_lock:
        entry = _demand_totals.get(ckey)
        if entry is None or entry[0] is not clustering:
            entry = (clustering, {})
            _demand_totals[ckey] = entry
            while len(_demand_totals) > _DEMAND_CACHE_MAX:
                _demand_totals.popitem(last=False)
        else:
            _demand_totals.move_to_end(ckey)
        totals = entry[1]
    demand: Dict[str, float] = {}
    for cluster_name in sorted(arch.cluster_alloc):
        pe_id, _ = arch.cluster_alloc[cluster_name]
        cluster = clustering.clusters[cluster_name]
        if wanted is not None and cluster.graph not in wanted:
            continue
        pe = arch.pe(pe_id)
        kind = pe.pe_type.kind
        if kind is PEKind.ASIC:
            continue
        pe_type_name = pe.pe_type.name
        copies = assoc.n_copies(cluster.graph)
        mkey = (cluster_name, pe_type_name, copies)
        total = totals.get(mkey)
        if total is None:
            ctx = (
                pe.pe_type.context_switch_time
                if kind is PEKind.PROCESSOR else 0.0
            )
            graph = spec.graph(cluster.graph)
            total = 0.0
            for task_name in cluster.task_names:
                total += (
                    graph.task(task_name).wcet_on(pe_type_name) + ctx
                ) * copies
            totals[mkey] = total
        demand[pe_id] = demand.get(pe_id, 0.0) + total
    return demand
