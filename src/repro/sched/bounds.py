"""Admissible lower bounds on schedule finish times and resource demand.

These are the scheduler-side primitives of the candidate pruning layer
(:mod:`repro.perf.prune`): *best-case execution vectors* and a
critical-path finish-time floor that provably never exceeds what
:func:`repro.sched.scheduler.build_schedule` would produce for the
same architecture, so a candidate whose floor already misses a
deadline can be discarded without scheduling at all.

Admissibility argument
----------------------

Every inequality below mirrors an identical-or-looser constraint the
scheduler enforces:

* A task placed on a **processor** occupies its timeline for
  ``wcet + context_switch_time`` (more when the restricted-preemption
  path splits it), so its finish is at least ``start`` plus that
  duration.  **ASIC** tasks run contention-free for exactly ``wcet``;
  **PPE** tasks occupy a mode window for exactly ``wcet``; tasks of
  unallocated clusters run *virtually* for ``task.min_exec_time``.
* A task starts no earlier than its copy's arrival, and no earlier
  than any predecessor's finish (inter-task communication only adds
  non-negative link time, so the floor prices it at zero).
* When an edge connects two clusters placed on the *same* programmable
  device whose permitted mode sets are **disjoint**, the successor's
  mode window cannot be its predecessor's window.  By induction over
  the device's time-ordered windows, the first permitted-mode window
  after the predecessor's pays its full reboot (its time-predecessor
  has a different mode -- window 0 never applies because the
  predecessor's window precedes it), and every later permitted window
  starts later still; so the successor start is delayed by at least
  ``min(boot(mode) for mode in its permitted set)``.  The bound is
  skipped for near-zero durations, where the window-ordering argument
  degenerates.

Floating-point safety: IEEE-754 rounding is monotone, and the floor
is accumulated with the same operation shapes (``max`` over
predecessors, then one addition) the scheduler uses, so the copy-0
floor is dominated by the real schedule *bit-for-bit*, not merely up
to an epsilon.  Demand floors are summed in a different order than
:func:`repro.sched.finish_time.resource_demand`, so their consumers
apply a small relative margin (see :mod:`repro.perf.prune`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.graph.taskgraph import TaskGraph
from repro.reconfig.reboot import default_boot_time
from repro.resources.pe import PEKind

#: Durations at or below this are excluded from the reboot bound: the
#: window-ordering argument needs the successor's occupancy to be
#: strictly positive even after rounding.
BOOT_BOUND_MIN_DURATION = 1e-6


def best_case_exec_time(task, pe: Optional[PEInstance]) -> float:
    """The exact duration floor the scheduler charges for ``task``.

    ``pe`` is the instance hosting the task's cluster, or None for a
    virtual (not-yet-allocated) placement.
    """
    if pe is None:
        return task.min_exec_time
    wcet = task.wcet_on(pe.pe_type.name)
    if pe.pe_type.kind is PEKind.PROCESSOR:
        return wcet + pe.pe_type.context_switch_time
    return wcet


def best_case_exec_vector(
    graph: TaskGraph, arch: Architecture, clustering: ClusteringResult
) -> Dict[str, float]:
    """Per-task duration floors for ``graph`` under a (partial)
    allocation: the best-case execution vector of the pruning layer."""
    vector: Dict[str, float] = {}
    for name in graph.topological_order():
        cluster_name = clustering.task_to_cluster.get((graph.name, name))
        pe = None
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe = arch.pe(arch.placement_of(cluster_name)[0])
        vector[name] = best_case_exec_time(graph.task(name), pe)
    return vector


def finish_time_floor(
    graph: TaskGraph,
    arch: Architecture,
    clustering: ClusteringResult,
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None,
) -> Dict[str, float]:
    """Copy-0 absolute finish-time floors for every task of ``graph``.

    A longest-path pass over the DAG using the best-case execution
    vector, zero communication time, and the mode-switch reboot bound
    for same-PPE edges between clusters with disjoint mode sets.  The
    value for each task is a true lower bound on the finish time of
    its copy-0 instance in any schedule the scheduler can emit for
    ``arch`` (see the module docstring for the argument).
    """
    boot_fn = boot_time_fn or default_boot_time
    placements: Dict[str, tuple] = {}
    for name in graph.topological_order():
        cluster_name = clustering.task_to_cluster.get((graph.name, name))
        pe = None
        if cluster_name is not None and arch.is_allocated(cluster_name):
            pe = arch.pe(arch.placement_of(cluster_name)[0])
        placements[name] = (pe, cluster_name)

    est = graph.est
    floor: Dict[str, float] = {}
    for name in graph.topological_order():
        pe, cluster_name = placements[name]
        exec_floor = best_case_exec_time(graph.task(name), pe)
        base = est
        for pred in graph.predecessors(name):
            ready = floor[pred]
            pred_pe, pred_cluster = placements[pred]
            if (
                pe is not None
                and pred_pe is pe
                and pred_cluster != cluster_name
                and pe.pe_type.kind not in (PEKind.PROCESSOR, PEKind.ASIC)
                and exec_floor > BOOT_BOUND_MIN_DURATION
            ):
                own = pe.modes_of_cluster(cluster_name)
                theirs = pe.modes_of_cluster(pred_cluster)
                if own and theirs and not set(own) & set(theirs):
                    reboot = min(boot_fn(pe, m) for m in own)
                    if reboot > 0.0:
                        ready = ready + reboot
            if ready > base:
                base = ready
        floor[name] = base + exec_floor
    return floor


def demand_floor(
    arch: Architecture,
    clustering: ClusteringResult,
    spec: SystemSpec,
    assoc: AssociationArray,
    graph_names: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """Per-serial-resource busy-time floors over the hyperperiod.

    For every allocated cluster (optionally restricted to
    ``graph_names``), each task must occupy its processor for at least
    ``wcet + context_switch_time`` (exactly ``wcet`` on a PPE) per
    copy; ASICs have no serial timeline and are skipped, as are link
    demands (communication floors are zero).  The result is summed in
    deterministic cluster order, which differs from the schedule
    insertion order :func:`~repro.sched.finish_time.resource_demand`
    uses -- consumers must leave a small relative margin.
    """
    wanted = None if graph_names is None else set(graph_names)
    demand: Dict[str, float] = {}
    for cluster_name in sorted(arch.cluster_alloc):
        pe_id, _ = arch.cluster_alloc[cluster_name]
        cluster = clustering.clusters[cluster_name]
        if wanted is not None and cluster.graph not in wanted:
            continue
        pe = arch.pe(pe_id)
        kind = pe.pe_type.kind
        if kind is PEKind.ASIC:
            continue
        ctx = pe.pe_type.context_switch_time if kind is PEKind.PROCESSOR else 0.0
        copies = assoc.n_copies(cluster.graph)
        graph = spec.graph(cluster.graph)
        pe_type_name = pe.pe_type.name
        total = 0.0
        for task_name in cluster.task_names:
            total += (graph.task(task_name).wcet_on(pe_type_name) + ctx) * copies
        demand[pe_id] = demand.get(pe_id, 0.0) + total
    return demand
