"""Priority-driven static list scheduler (Section 5).

Tasks and edges are scheduled in deadline-priority order.  The
scheduler is the inner-loop workhorse of co-synthesis: every candidate
allocation is scheduled and its finish times estimated before the
allocation is accepted.

Semantics per resource kind:

* general-purpose processors serialize their tasks (busy-interval
  timeline, first-fit gap placement); a per-task dispatch overhead of
  one context switch is charged, and *restricted preemption* lets a
  delayed task split across the free gaps between already-reserved
  higher-priority work -- it starts, is preempted by each reservation,
  resumes afterwards, and pays the processor's preemption overhead per
  resumption (the paper's "preemptive scheduling is used in restricted
  scenarios"); the split is taken only when it strictly improves the
  task's finish time;
* ASICs run each mapped task as an independent circuit block, so tasks
  never contend;
* programmable PEs run same-mode tasks concurrently but serialize
  across modes with a reboot of the device boot time between mode
  windows (the implicit ``reboot_task`` of Section 4.3);
* links serialize transfers (busy-interval timeline); transfers
  between tasks on the same PE instance are free.

Copies beyond the association array's explicit set are not
materialized; their timing is the representative copy's shifted by
whole periods (see :mod:`repro.graph.association`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AllocationError, SchedulingError
from repro.arch.architecture import Architecture
from repro.arch.pe_instance import PEInstance
from repro.cluster.clustering import ClusteringResult
from repro.graph.association import AssociationArray
from repro.graph.spec import SystemSpec
from repro.obs.trace import NULL_TRACER, Tracer
from repro.reconfig.reboot import default_boot_time
from repro.resources.pe import PEKind, ProcessorType
from repro.sched.timeline import IntervalTimeline, PpeModeTimeline
from repro.units import TIME_EPS

#: (graph name, copy index, task name)
TaskKey = Tuple[str, int, str]
#: (graph name, copy index, src task, dst task)
EdgeKey = Tuple[str, int, str, str]


class ScheduleAbort(Exception):
    """Bounded-search abort: the partial schedule already loses.

    Raised (only when :attr:`ScheduleRequest.bound` is set) the moment
    the number of *proven* violations -- deadline instances already
    placed late, plus serial resources whose copy-0 demand already
    crossed the overload tolerance, plus ``bound_base`` violations
    carried from earlier schedule fragments -- exceeds the bound's
    first badness component.  Violation counts only grow as scheduling
    proceeds, so an aborted candidate's final badness would necessarily
    compare greater than the bound: aborting is pure dominance, and
    the caller may drop the candidate without changing the synthesized
    result (see :mod:`repro.perf.prune` for the switch plumbing).

    ``reason`` is ``"deadline"`` or ``"overload"`` for in-schedule
    triggers, ``"carried"`` when the incremental engine's cross-
    fragment accumulation tips the count between fragments.
    """

    def __init__(self, reason: str) -> None:
        """Record which violation kind tipped the count."""
        super().__init__(reason)
        self.reason = reason


@dataclass
class ScheduledTask:
    """Placement of one task instance in the schedule.

    ``pe_id`` is None for *virtual* placements: tasks whose cluster is
    not yet allocated are estimated at their best-case execution time
    on no resource, so partial architectures can still be finish-time
    checked (the COSYN estimation convention).
    """

    key: TaskKey
    pe_id: Optional[str]
    mode: int
    start: float
    finish: float
    preempted: bool = False


@dataclass
class ScheduledEdge:
    """Placement of one edge instance (None link = same-PE transfer)."""

    key: EdgeKey
    link_id: Optional[str]
    start: float
    finish: float


@dataclass
class ScheduleRequest:
    """Everything the scheduler needs for one run.

    Attributes
    ----------
    priorities:
        graph name -> task name -> priority level (larger = more
        urgent); recomputed by CRUSADE after each allocation.
    boot_time_fn:
        (PE instance, mode index) -> reconfiguration time in seconds.
        Defaults to :func:`repro.reconfig.reboot.default_boot_time`.
    preemption:
        Enable the restricted-preemption path on processors.
    tracer:
        Observability sink for scheduler-decision counters; the null
        tracer by default (no overhead, no behavior change).
    graphs:
        Optional graph-name filter: only copies of these graphs are
        scheduled.  Unlike the scoped sub-spec path this keeps the
        *full* association array, so arrivals and copy counts match
        the unfiltered run exactly -- the incremental engine uses it
        to schedule one resource-coupled component at a time.
    context:
        Optional :class:`repro.perf.fastsched.SchedulerContext`.  When
        set, scheduling runs over the context's cached plan and its
        timeline factory pair -- any
        :class:`~repro.sched.timeline.Timeline` /
        :class:`~repro.sched.timeline.ModeTimeline` implementation
        pair selected by ``CrusadeConfig.timeline`` (byte-identical
        results, enforced by the differential oracle in
        ``tests/sched``); None keeps the legacy from-scratch path
        below on the linear reference timelines.
    bound:
        Optional incumbent badness tuple (as returned by
        ``DeadlineReport.badness()`` or ``EvalResult.badness()``;
        only element 0, the violation count, is consulted).  When set,
        scheduling raises :class:`ScheduleAbort` as soon as the number
        of proven violations in the partial schedule *exceeds*
        ``bound[0]`` -- the candidate then provably loses to the
        incumbent and the caller may discard it.  None (the default)
        disables the check entirely.
    bound_base:
        Violations already proven before this run starts; the
        incremental engine carries deadline misses and overloads from
        earlier schedule fragments here so the abort trigger matches
        a monolithic run.
    """

    spec: SystemSpec
    assoc: AssociationArray
    clustering: ClusteringResult
    arch: Architecture
    priorities: Dict[str, Dict[str, float]]
    boot_time_fn: Optional[Callable[[PEInstance, int], float]] = None
    preemption: bool = True
    tracer: Tracer = NULL_TRACER
    graphs: Optional[frozenset] = None
    context: Optional[object] = None
    bound: Optional[tuple] = None
    bound_base: int = 0


@dataclass
class Schedule:
    """Complete output of one scheduling run."""

    tasks: Dict[TaskKey, ScheduledTask] = field(default_factory=dict)
    edges: Dict[EdgeKey, ScheduledEdge] = field(default_factory=dict)
    proc_timelines: Dict[str, IntervalTimeline] = field(default_factory=dict)
    ppe_timelines: Dict[str, PpeModeTimeline] = field(default_factory=dict)
    link_timelines: Dict[str, IntervalTimeline] = field(default_factory=dict)
    preemptions: int = 0

    @property
    def reconfigurations(self) -> int:
        """Total mode switches across all programmable PEs."""
        return sum(t.reconfigurations for t in self.ppe_timelines.values())

    def finish_of(self, key: TaskKey) -> float:
        """Finish time of a scheduled task instance."""
        try:
            return self.tasks[key].finish
        except KeyError:
            raise SchedulingError("task %r not scheduled" % (key,)) from None

    def makespan(self) -> float:
        """Latest finish across all scheduled task instances."""
        if not self.tasks:
            return 0.0
        return max(t.finish for t in self.tasks.values())


def _placement_of_task(
    request: ScheduleRequest, graph_name: str, task_name: str
) -> Tuple[Optional[PEInstance], int]:
    """(PE instance, mode) a task is allocated to via its cluster, or
    (None, -1) when the cluster has no placement yet."""
    cluster = request.clustering.cluster_of(graph_name, task_name)
    if not request.arch.is_allocated(cluster.name):
        return None, -1
    pe_id, mode = request.arch.placement_of(cluster.name)
    return request.arch.pe(pe_id), mode


def _best_case_comm(request: ScheduleRequest) -> "Callable[[int], float]":
    """Best-case transfer-time estimator over the link library, used
    for edges touching virtually placed tasks."""
    links = request.arch.library.links_by_cost()

    def comm(bytes_: int) -> float:
        if bytes_ == 0 or not links:
            return 0.0
        return min(l.comm_time(bytes_) for l in links)

    return comm


def build_schedule(request: ScheduleRequest) -> Schedule:
    """Run the list scheduler over all explicit copy instances.

    Raises :class:`SchedulingError` on internal inconsistencies (e.g.
    an unallocated task) and :class:`AllocationError` when two
    communicating tasks sit on unconnected PEs.  Missed deadlines do
    *not* raise; they are reported by finish-time evaluation.
    """
    if request.context is not None:
        from repro.perf.fastsched import build_schedule_planned

        return build_schedule_planned(request, request.context)
    schedule = Schedule()
    spec = request.spec
    boot_time_fn = request.boot_time_fn or default_boot_time
    tracer = request.tracer
    tracer.incr("sched.runs")

    # Bounded-search bookkeeping (only when a bound is supplied): the
    # copy-0 demand per serial resource and the absolute deadline per
    # deadline-task instance are tracked inline, mirroring exactly what
    # finish-time evaluation would recompute afterwards, so the abort
    # trigger (violations > bound[0]) is a pure-dominance test.
    bound = request.bound
    if bound is not None:
        from repro.sched.finish_time import _OVERLOAD_TOLERANCE

        bound_limit = bound[0]
        violations = request.bound_base
        capacity = request.assoc.hyperperiod
        crossed: set = set()
        bound_demand: Dict[str, float] = {}
        bound_ncopies: Dict[str, int] = {}
        deadline_by_key: Dict[TaskKey, float] = {}

    # Build instance-level precedence bookkeeping.
    indegree: Dict[TaskKey, int] = {}
    arrival: Dict[TaskKey, float] = {}
    heap: List[Tuple[float, float, TaskKey]] = []
    for instance in request.assoc.iter_explicit():
        if request.graphs is not None and instance.graph not in request.graphs:
            continue
        graph = spec.graph(instance.graph)
        if bound is not None:
            bound_ncopies[instance.graph] = request.assoc.n_copies(
                instance.graph
            )
            for task_name in graph.deadline_tasks():
                deadline_by_key[(instance.graph, instance.copy, task_name)] = (
                    instance.arrival + graph.effective_deadline(task_name)
                )
        for task_name in graph.topological_order():
            key = (instance.graph, instance.copy, task_name)
            indegree[key] = len(graph.predecessors(task_name))
            arrival[key] = instance.arrival
            if indegree[key] == 0:
                priority = request.priorities[instance.graph][task_name]
                heapq.heappush(heap, (-priority, instance.arrival, key))

    scheduled_count = 0
    total_instances = len(indegree)
    best_comm = _best_case_comm(request)
    while heap:
        _, _, key = heapq.heappop(heap)
        graph_name, copy_index, task_name = key
        graph = spec.graph(graph_name)
        task = graph.task(task_name)
        pe, mode = _placement_of_task(request, graph_name, task_name)

        # 1. Schedule incoming edges; compute data-ready time.
        ready = arrival[key]
        for pred_name in graph.predecessors(task_name):
            pred_key = (graph_name, copy_index, pred_name)
            pred_finish = schedule.finish_of(pred_key)
            pred_pe_id = schedule.tasks[pred_key].pe_id
            edge = graph.edge(pred_name, task_name)
            edge_key = (graph_name, copy_index, pred_name, task_name)
            if pe is None or pred_pe_id is None:
                # Virtual endpoint: best-case communication estimate,
                # no link occupied.
                finish = pred_finish + best_comm(edge.bytes_)
                schedule.edges[edge_key] = ScheduledEdge(
                    key=edge_key, link_id=None, start=pred_finish, finish=finish
                )
                ready = max(ready, finish)
                continue
            if pred_pe_id == pe.id or edge.bytes_ == 0:
                schedule.edges[edge_key] = ScheduledEdge(
                    key=edge_key, link_id=None, start=pred_finish, finish=pred_finish
                )
                ready = max(ready, pred_finish)
                continue
            link = request.arch.find_link_between(pred_pe_id, pe.id)
            if link is None:
                raise AllocationError(
                    "no link connects %r and %r for edge %s->%s"
                    % (pred_pe_id, pe.id, pred_name, task_name)
                )
            timeline = schedule.link_timelines.setdefault(
                link.id, IntervalTimeline()
            )
            duration = link.comm_time(edge.bytes_)
            start = timeline.earliest_fit(pred_finish, duration)
            start, finish = timeline.occupy(start, duration, edge_key)
            schedule.edges[edge_key] = ScheduledEdge(
                key=edge_key, link_id=link.id, start=start, finish=finish
            )
            ready = max(ready, finish)
            if bound is not None and copy_index == 0:
                load = bound_demand.get(link.id, 0.0) + (
                    finish - start
                ) * bound_ncopies[graph_name]
                bound_demand[link.id] = load
                if (
                    link.id not in crossed
                    and load / capacity > _OVERLOAD_TOLERANCE
                ):
                    crossed.add(link.id)
                    violations += 1
                    if violations > bound_limit:
                        raise ScheduleAbort("overload")

        # 2. Place the task on its resource.
        was_split = False
        if pe is None:
            # Virtual placement: best-case execution, no contention.
            tracer.incr("sched.tasks.virtual")
            start, finish = ready, ready + task.min_exec_time
        else:
            tracer.incr("sched.tasks.real")
            wcet = task.wcet_on(pe.pe_type.name)
            if pe.pe_type.kind is PEKind.PROCESSOR:
                start, finish, was_split = _place_on_processor(
                    schedule, request, pe, key, ready, wcet
                )
            elif pe.pe_type.kind is PEKind.ASIC:
                # Independent circuit block: no contention.
                start, finish = ready, ready + wcet
            else:
                timeline = schedule.ppe_timelines.setdefault(
                    pe.id, PpeModeTimeline()
                )
                cluster = request.clustering.cluster_of(graph_name, task_name)
                allowed = {
                    m: boot_time_fn(pe, m)
                    for m in pe.modes_of_cluster(cluster.name)
                }
                start, finish = timeline.place(
                    mode, ready, wcet, boot_time_fn(pe, mode), allowed=allowed
                )
            if (
                bound is not None
                and copy_index == 0
                and pe.pe_type.kind is not PEKind.ASIC
            ):
                # Serial resource (processor or PPE): accumulate the
                # same per-PE demand finish-time evaluation sums.
                load = bound_demand.get(pe.id, 0.0) + (
                    finish - start
                ) * bound_ncopies[graph_name]
                bound_demand[pe.id] = load
                if (
                    pe.id not in crossed
                    and load / capacity > _OVERLOAD_TOLERANCE
                ):
                    crossed.add(pe.id)
                    violations += 1
                    if violations > bound_limit:
                        raise ScheduleAbort("overload")
        schedule.tasks[key] = ScheduledTask(
            key=key,
            pe_id=pe.id if pe is not None else None,
            mode=mode,
            start=start,
            finish=finish,
            preempted=was_split,
        )
        scheduled_count += 1
        if bound is not None:
            absolute = deadline_by_key.get(key)
            if absolute is not None and finish - absolute > TIME_EPS:
                violations += 1
                if violations > bound_limit:
                    raise ScheduleAbort("deadline")

        # 3. Release successors.
        priority_table = request.priorities[graph_name]
        for succ_name in graph.successors(task_name):
            succ_key = (graph_name, copy_index, succ_name)
            indegree[succ_key] -= 1
            if indegree[succ_key] == 0:
                heapq.heappush(
                    heap,
                    (-priority_table[succ_name], arrival[succ_key], succ_key),
                )

    if scheduled_count != total_instances:
        raise SchedulingError(
            "scheduled %d of %d task instances; precedence graph is inconsistent"
            % (scheduled_count, total_instances)
        )
    return schedule


def _priority_of_key(request: ScheduleRequest, key: TaskKey) -> float:
    graph_name, _, task_name = key
    return request.priorities[graph_name][task_name]


def _place_on_processor(
    schedule: Schedule,
    request: ScheduleRequest,
    pe: PEInstance,
    key: TaskKey,
    ready: float,
    wcet: float,
    timeline_cls: type = IntervalTimeline,
    split_counts: Optional[list] = None,
) -> Tuple[float, float, bool]:
    """Place a task on a processor.

    Non-preemptive first-fit by default.  With preemption enabled, a
    task that would be delayed behind already-reserved (higher-
    priority) work may instead *split* across the free gaps -- it
    starts, is preempted by each reservation, and resumes afterwards,
    paying the processor's preemption overhead per resumption
    (Section 5's restricted preemptive scheduling).  The split is used
    only when it strictly improves the task's finish time.

    ``timeline_cls`` is any :class:`~repro.sched.timeline.Timeline`
    factory; the legacy path passes the linear reference, the planned
    fast path threads its context's configured implementation
    (flat-bisected or blocked -- all bit-for-bit interchangeable).

    ``split_counts`` (a ``[declined, taken]`` pair) batches the split
    decision counters for the planned fast path, which flushes them to
    the tracer once per run; without it each decision is traced
    directly.
    """
    processor = pe.pe_type
    assert isinstance(processor, ProcessorType)
    duration = wcet + processor.context_switch_time
    timeline = schedule.proc_timelines.get(pe.id)
    if timeline is None:
        timeline = schedule.proc_timelines[pe.id] = timeline_cls()
    start = timeline.earliest_fit(ready, duration)
    if start <= ready or not request.preemption:
        return timeline.occupy(start, duration, key) + (False,)

    segments = timeline.split_fit(
        ready, duration, processor.preemption_overhead
    )
    if segments is None or len(segments) < 2:
        if split_counts is None:
            request.tracer.incr("sched.preemption.splits_declined")
        else:
            split_counts[0] += 1
        return timeline.occupy(start, duration, key) + (False,)
    contiguous_finish = start + duration
    split_finish = segments[-1][1]
    if split_finish >= contiguous_finish:
        if split_counts is None:
            request.tracer.incr("sched.preemption.splits_declined")
        else:
            split_counts[0] += 1
        return timeline.occupy(start, duration, key) + (False,)
    for seg_start, seg_end in segments:
        timeline.occupy(seg_start, seg_end - seg_start, key)
    schedule.preemptions += 1
    if split_counts is None:
        request.tracer.incr("sched.preemption.splits_taken")
    else:
        split_counts[1] += 1
    return segments[0][0], split_finish, True
