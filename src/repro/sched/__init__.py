"""Static scheduling and finish-time estimation (Section 5).

CRUSADE schedules tasks and edges with deadline-based priority levels
using a combination of preemptive and non-preemptive static scheduling;
scheduling sits in the inner loop of co-synthesis so every candidate
allocation is evaluated with an accurate finish-time estimate.
Programmable PEs add mode windows: tasks of different configuration
modes cannot overlap and switching charges the device boot time through
an implicit ``reboot_task`` (Section 4.3).
"""

from repro.sched.timeline import (
    IntervalTimeline,
    ModeTimeline,
    ModeWindow,
    PpeModeTimeline,
    Timeline,
)
from repro.sched.scheduler import (
    ScheduledEdge,
    ScheduledTask,
    Schedule,
    ScheduleRequest,
    build_schedule,
)
from repro.sched.finish_time import DeadlineReport, evaluate_deadlines

__all__ = [
    "IntervalTimeline",
    "ModeTimeline",
    "ModeWindow",
    "PpeModeTimeline",
    "Timeline",
    "ScheduledEdge",
    "ScheduledTask",
    "Schedule",
    "ScheduleRequest",
    "build_schedule",
    "DeadlineReport",
    "evaluate_deadlines",
]
